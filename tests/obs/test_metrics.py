"""Metric instruments: counters, gauges, histograms, the registry, Prometheus text."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import MemorySink, MetricsRegistry, NullSink
from repro.obs.metrics import DEFAULT_NORMALIZED_BUCKETS


@pytest.fixture
def sink():
    return MemorySink()


@pytest.fixture
def registry(sink):
    return MetricsRegistry(sink)


class TestCounter:
    def test_inc_emits_running_total(self, registry, sink):
        c = registry.counter("q_total", "queries", ("group",))
        bound = c.labels(group="g1")
        bound.inc(1.0)
        bound.inc(2.0, 4.0)
        assert c.value(group="g1") == 5.0
        assert [(s.time, s.value) for s in sink.metric_samples("q_total")] == [
            (1.0, 1.0),
            (2.0, 5.0),
        ]

    def test_label_sets_are_independent(self, registry):
        c = registry.counter("q_total", "", ("group",))
        c.labels(group="a").inc(0.0)
        c.labels(group="b").inc(0.0)
        c.labels(group="b").inc(1.0)
        assert c.value(group="a") == 1.0
        assert c.value(group="b") == 2.0
        assert c.value(group="never") == 0.0

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("q_total")
        with pytest.raises(ObservabilityError):
            c.inc(0.0, -1.0)

    def test_label_mismatch_rejected(self, registry):
        c = registry.counter("q_total", "", ("group",))
        with pytest.raises(ObservabilityError):
            c.labels(tenant="t1")
        with pytest.raises(ObservabilityError):
            c.inc(0.0)  # missing the declared label

    def test_disabled_sink_skips_state_and_emission(self):
        registry = MetricsRegistry(NullSink())
        c = registry.counter("q_total", "", ("group",))
        c.labels(group="g").inc(0.0)
        assert c.value(group="g") == 0.0
        assert c.snapshot() == {}


class TestGauge:
    def test_set_is_last_write_wins(self, registry, sink):
        g = registry.gauge("ttp", "", ("group",))
        bound = g.labels(group="g1")
        bound.set(1.0, 0.999)
        bound.set(2.0, 0.95)
        assert g.value(group="g1") == 0.95
        assert [s.value for s in sink.metric_samples("ttp")] == [0.999, 0.95]

    def test_unset_is_none(self, registry):
        g = registry.gauge("ttp", "", ("group",))
        assert g.value(group="g1") is None

    def test_disabled_sink_skips(self):
        g = MetricsRegistry(NullSink()).gauge("ttp")
        g.set(0.0, 1.0)
        assert g.value() is None


class TestHistogram:
    def test_bucketing_boundaries_are_le(self, registry):
        h = registry.histogram("lat", "", (), buckets=(1.0, 5.0))
        for v in (0.5, 1.0, 1.5, 5.0, 9.0):
            h.observe(0.0, v)
        # le semantics: 1.0 lands in the first bucket, 5.0 in the second.
        assert h.counts() == {"1": 2, "5": 2, "+Inf": 1}

    def test_raw_observations_reach_the_sink(self, registry, sink):
        h = registry.histogram("lat", "", ("group",), buckets=(1.0,))
        h.labels(group="g").observe(3.0, 0.25)
        (sample,) = sink.metric_samples("lat")
        assert sample.value == 0.25
        assert sample.kind == "histogram"

    def test_bad_buckets_rejected(self, registry):
        for buckets in ((), (2.0, 1.0), (1.0, 1.0)):
            with pytest.raises(ObservabilityError):
                registry.histogram(f"h{len(buckets)}x", buckets=buckets)

    def test_empty_counts_before_first_observation(self, registry):
        h = registry.histogram("lat", "", ("group",))
        assert h.counts(group="g") == {}


class TestRegistry:
    def test_same_name_same_family_memoized(self, registry):
        a = registry.counter("n", "", ("g",))
        b = registry.counter("n", "", ("g",))
        assert a is b

    def test_conflicting_redeclaration_rejected(self, registry):
        registry.counter("n", "", ("g",))
        with pytest.raises(ObservabilityError):
            registry.gauge("n", "", ("g",))
        with pytest.raises(ObservabilityError):
            registry.counter("n", "", ("other",))

    def test_iteration_is_name_ordered(self, registry):
        registry.counter("b")
        registry.gauge("a")
        assert [f.name for f in registry] == ["a", "b"]


class TestPrometheusText:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("thrifty_q_total", "queries", ("group",)).labels(group="g1").inc(0.0)
        registry.gauge("thrifty_ttp", "ttp", ("group",)).labels(group="g1").set(0.0, 0.999)
        text = registry.to_prometheus_text()
        assert "# HELP thrifty_q_total queries" in text
        assert "# TYPE thrifty_q_total counter" in text
        assert 'thrifty_q_total{group="g1"} 1' in text
        assert "# TYPE thrifty_ttp gauge" in text
        assert 'thrifty_ttp{group="g1"} 0.999' in text

    def test_histogram_buckets_are_cumulative_with_inf_sum_count(self, registry):
        h = registry.histogram("lat", "latency", ("g",), buckets=(1.0, 5.0))
        bound = h.labels(g="x")
        for v in (0.5, 2.0, 9.0):
            bound.observe(0.0, v)
        text = registry.to_prometheus_text()
        assert 'lat_bucket{g="x",le="1"} 1' in text
        assert 'lat_bucket{g="x",le="5"} 2' in text
        assert 'lat_bucket{g="x",le="+Inf"} 3' in text
        assert 'lat_sum{g="x"} 11.5' in text
        assert 'lat_count{g="x"} 3' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry(MemorySink()).to_prometheus_text() == ""

    def test_normalized_buckets_include_the_sla_boundary(self):
        assert 1.0 in DEFAULT_NORMALIZED_BUCKETS
