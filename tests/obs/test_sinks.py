"""Sink behaviour: null short-circuit, memory collection, tee, the shim."""

import json

from repro.obs import (
    MemorySink,
    MetricSample,
    NULL_SINK,
    NullSink,
    ObsEvent,
    SpanEvent,
    SpanRecord,
    TeeSink,
    TraceRecorderSink,
)
from repro.obs.sink import attrs_tuple
from repro.simulation.trace import TraceRecorder


def _sample(t=1.0, name="m", value=2.0, labels=()):
    return MetricSample(time=t, name=name, kind="counter", value=value, labels=labels)


def _span(span_id=1, kind="query", status="complete", attrs=(), events=()):
    return SpanRecord(
        span_id=span_id,
        parent_id=None,
        name="query",
        kind=kind,
        start=0.0,
        end=3.0,
        status=status,
        attrs=attrs,
        events=events,
    )


class TestNullSink:
    def test_disabled_and_shared(self):
        assert NullSink.enabled is False
        assert NULL_SINK.enabled is False

    def test_drops_everything_silently(self):
        sink = NullSink()
        sink.on_metric(_sample())
        sink.on_span(_span())
        sink.on_event(ObsEvent(time=0.0, kind="x"))


class TestMemorySink:
    def test_collects_in_arrival_order(self):
        sink = MemorySink()
        sink.on_metric(_sample(t=1.0))
        sink.on_metric(_sample(t=2.0))
        sink.on_span(_span())
        sink.on_event(ObsEvent(time=3.0, kind="k"))
        assert [s.time for s in sink.metrics] == [1.0, 2.0]
        assert len(sink.spans) == 1
        assert len(sink.events) == 1

    def test_metric_samples_filters_by_name_and_labels(self):
        sink = MemorySink()
        sink.on_metric(_sample(name="a", labels=(("group", "g1"),)))
        sink.on_metric(_sample(name="a", labels=(("group", "g2"),)))
        sink.on_metric(_sample(name="b", labels=(("group", "g1"),)))
        assert len(sink.metric_samples("a")) == 2
        assert len(sink.metric_samples("a", group="g1")) == 1
        assert sink.metric_samples("a", group="zzz") == []

    def test_spans_of(self):
        sink = MemorySink()
        sink.on_span(_span(span_id=1, kind="query"))
        sink.on_span(_span(span_id=2, kind="scaling"))
        assert [s.span_id for s in sink.spans_of("query")] == [1]

    def test_jsonl_export_round_trips(self, tmp_path):
        sink = MemorySink()
        sink.on_metric(_sample(labels=(("group", "g1"),)))
        sink.on_span(
            _span(
                attrs=(("tenant", 7), ("ids", (1, 2))),
                events=(SpanEvent(time=1.0, name="submit"),),
            )
        )
        metrics_path = sink.write_metrics_jsonl(tmp_path / "metrics.jsonl")
        spans_path = sink.write_spans_jsonl(tmp_path / "spans.jsonl")
        metric_row = json.loads(metrics_path.read_text().splitlines()[0])
        assert metric_row == {
            "t": 1.0,
            "metric": "m",
            "type": "counter",
            "value": 2.0,
            "labels": {"group": "g1"},
        }
        span_row = json.loads(spans_path.read_text().splitlines()[0])
        assert span_row["status"] == "complete"
        assert span_row["attrs"] == {"tenant": 7, "ids": [1, 2]}
        assert span_row["events"][0]["name"] == "submit"


class TestTraceRecorderSink:
    def test_events_become_trace_entries(self):
        recorder = TraceRecorder()
        sink = TraceRecorderSink(recorder)
        sink.on_event(ObsEvent(time=5.0, kind="elastic-scaling", attrs=(("policy", "lw"),)))
        (entry,) = list(recorder)
        assert entry.time == 5.0
        assert entry.kind == "elastic-scaling"
        assert entry.details["policy"] == "lw"

    def test_spans_become_span_kind_entries(self):
        sink = TraceRecorderSink()
        sink.on_span(_span(kind="query", status="violate"))
        (entry,) = list(sink.recorder)
        assert entry.kind == "span/query"
        assert entry.time == 3.0  # span end time
        assert entry.details["status"] == "violate"
        assert entry.details["start"] == 0.0

    def test_metrics_dropped(self):
        sink = TraceRecorderSink()
        sink.on_metric(_sample())
        assert len(sink.recorder) == 0


class TestTeeSink:
    def test_fans_out_to_enabled_children_only(self):
        a, b = MemorySink(), MemorySink()
        null = NullSink()
        tee = TeeSink([a, null, b])
        tee.on_metric(_sample())
        tee.on_span(_span())
        tee.on_event(ObsEvent(time=0.0, kind="k"))
        for child in (a, b):
            assert len(child.metrics) == 1
            assert len(child.spans) == 1
            assert len(child.events) == 1

    def test_enabled_is_any_child(self):
        assert TeeSink([NullSink(), MemorySink()]).enabled
        assert not TeeSink([NullSink(), NullSink()]).enabled
        assert not TeeSink([]).enabled


class TestAttrsTuple:
    def test_scalars_pass_through(self):
        assert attrs_tuple({"a": 1, "b": "x"}) == (("a", 1), ("b", "x"))

    def test_lists_become_tuples_and_sets_sort(self):
        out = dict(attrs_tuple({"lst": [3, 1], "st": {2, 1}}))
        assert out["lst"] == (3, 1)
        assert out["st"] == (1, 2)
