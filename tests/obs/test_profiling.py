"""Wall-clock profiling hooks (the only repro.obs piece off the sim clock)."""

from repro.obs import PROFILER, ProfileRegistry, profiled


class TestProfileRegistry:
    def test_disabled_records_nothing(self):
        registry = ProfileRegistry()
        registry.record("site", 1.0)
        assert registry.snapshot() == {}

    def test_enabled_accumulates_calls_and_seconds(self):
        registry = ProfileRegistry(enabled=True)
        registry.record("site", 1.0)
        registry.record("site", 0.5, calls=2)
        entry = registry.snapshot()["site"]
        assert entry.calls == 3
        assert entry.wall_s == 1.5
        assert entry.as_dict() == {"calls": 3.0, "wall_s": 1.5}

    def test_capture_restores_previous_state(self):
        registry = ProfileRegistry()
        with registry.capture():
            assert registry.enabled
            registry.record("a", 0.1)
        assert not registry.enabled
        assert "a" in registry.snapshot()

    def test_reset_drops_entries(self):
        registry = ProfileRegistry(enabled=True)
        registry.record("a", 0.1)
        registry.reset()
        assert registry.snapshot() == {}

    def test_time_block(self):
        registry = ProfileRegistry(enabled=True)
        with registry.time_block("blk"):
            pass
        entry = registry.snapshot()["blk"]
        assert entry.calls == 1
        assert entry.wall_s >= 0.0

    def test_snapshot_returns_copies(self):
        registry = ProfileRegistry(enabled=True)
        registry.record("a", 0.1)
        registry.snapshot()["a"].calls = 999
        assert registry.snapshot()["a"].calls == 1


class TestProfiledDecorator:
    def test_passthrough_while_global_profiler_disabled(self):
        @profiled("tests.site")
        def add(a, b):
            """Adds."""
            return a + b

        assert not PROFILER.enabled
        before = PROFILER.snapshot()
        assert add(1, 2) == 3
        assert PROFILER.snapshot().keys() == before.keys()

    def test_records_under_capture(self):
        @profiled("tests.captured_site")
        def mul(a, b):
            return a * b

        with PROFILER.capture():
            assert mul(3, 4) == 12
            assert mul(5, 6) == 30
        entry = PROFILER.snapshot()["tests.captured_site"]
        assert entry.calls == 2
        PROFILER.reset()

    def test_metadata_preserved(self):
        @profiled("tests.meta")
        def documented():
            """Doc string survives."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Doc string survives."
        assert documented.__wrapped__ is not None

    def test_exceptions_still_timed(self):
        @profiled("tests.raises")
        def boom():
            raise RuntimeError("boom")

        with PROFILER.capture():
            try:
                boom()
            except RuntimeError:
                pass
        assert PROFILER.snapshot()["tests.raises"].calls == 1
        PROFILER.reset()
