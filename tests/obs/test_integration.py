"""Observability end to end: a real replay leaves complete span chains.

The acceptance invariant of the obs subsystem: every query in a replay has
exactly one finished span whose event chain runs submit → terminal state,
and the metrics agree with the replay's own SLA accounting.
"""

import pytest

from repro.core.service import ThriftyService
from repro.obs import MemorySink, Observer, STATUS_INFLIGHT, write_run_report
from repro.units import HOUR
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator
from tests.conftest import tiny_config

_HORIZON = 6 * HOUR


@pytest.fixture(scope="module")
def replayed():
    config = tiny_config(num_tenants=24, seed=13)
    library = SessionLogGenerator(config, sessions_per_size=2).generate()
    workload = MultiTenantLogComposer(config, library).compose()
    observer = Observer(MemorySink())
    service = ThriftyService(config, scaling="disabled", observer=observer)
    service.deploy(workload)
    report = service.replay(until=_HORIZON)
    return observer, service, report


class TestSpanChains:
    def test_every_query_has_one_complete_span_chain(self, replayed):
        observer, service, report = replayed
        sink = observer.memory_sink()
        spans = sink.spans_of("query")
        submitted = observer.queries_submitted
        total_submitted = sum(submitted.snapshot().values())
        assert total_submitted > 0
        assert len(spans) == total_submitted

        for span in spans:
            names = [e.name for e in span.events]
            assert names[0] == "submit"
            assert span.status in ("complete", "violate", STATUS_INFLIGHT)
            if span.status == STATUS_INFLIGHT:
                # Interrupted at the horizon: the chain is a prefix.
                assert names[:2] == ["submit", "route"]
                continue
            assert names == ["submit", "route", "admit", "execute", span.status]
            attrs = dict(span.attrs)
            assert "observed_latency_s" in attrs
            assert "normalized" in attrs
            assert span.start <= span.end <= _HORIZON

    def test_no_spans_left_open(self, replayed):
        observer, _, __ = replayed
        assert observer.tracer.open_spans() == []

    def test_span_times_are_ordered_within_each_span(self, replayed):
        observer, _, __ = replayed
        for span in observer.memory_sink().spans_of("query"):
            times = [e.time for e in span.events]
            assert times == sorted(times)
            assert times[0] == span.start


class TestMetricsAgreeWithReplay:
    def test_completed_count_matches_sla_records(self, replayed):
        observer, _, report = replayed
        completed = sum(observer.queries_completed.snapshot().values())
        assert completed == len(report.sla.records)

    def test_violations_match_sla_report(self, replayed):
        observer, _, report = replayed
        violations = sum(observer.sla_violations.snapshot().values())
        assert violations == len(report.sla.violations())
        violate_spans = [
            s for s in observer.memory_sink().spans_of("query") if s.status == "violate"
        ]
        assert len(violate_spans) == violations

    def test_routing_outcomes_cover_every_submission(self, replayed):
        observer, _, __ = replayed
        decisions = sum(observer.routing_decisions.snapshot().values())
        submitted = sum(observer.queries_submitted.snapshot().values())
        assert decisions == submitted

    def test_rt_ttp_gauge_sampled(self, replayed):
        observer, _, __ = replayed
        assert observer.memory_sink().metric_samples("thrifty_rt_ttp")

    def test_engine_metrics_emitted_per_instance(self, replayed):
        observer, _, __ = replayed
        totals = observer.engine_queries.snapshot()
        assert totals, "instrumented engines must report admissions"
        # Labels carry the instance name, and no engine admits more than
        # the replay submitted overall.
        for key in totals:
            assert dict(key).keys() == {"instance"}
        submitted = sum(observer.queries_submitted.snapshot().values())
        assert 0 < sum(totals.values()) <= submitted


class TestDeterminism:
    def test_two_identical_replays_export_identically(self, tmp_path):
        def run(out):
            config = tiny_config(num_tenants=12, seed=3)
            library = SessionLogGenerator(config, sessions_per_size=2).generate()
            workload = MultiTenantLogComposer(config, library).compose()
            observer = Observer(MemorySink())
            service = ThriftyService(config, scaling="disabled", observer=observer)
            service.deploy(workload)
            service.replay(until=2 * HOUR)
            return write_run_report(tmp_path / out, observer, horizon=2 * HOUR)

        a, b = run("a"), run("b")
        assert a.metrics.read_text() == b.metrics.read_text()
        assert a.spans.read_text() == b.spans.read_text()
        assert a.summary.read_text() == b.summary.read_text()

    def test_null_observer_replay_unaffected(self):
        def run(observer):
            config = tiny_config(num_tenants=12, seed=3)
            library = SessionLogGenerator(config, sessions_per_size=2).generate()
            workload = MultiTenantLogComposer(config, library).compose()
            service = ThriftyService(config, scaling="disabled", observer=observer)
            service.deploy(workload)
            report = service.replay(until=2 * HOUR)
            return (len(report.sla.records), report.sla.fraction_met)

        assert run(None) == run(Observer(MemorySink()))
