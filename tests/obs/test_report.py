"""Run reports: summary digestion, disk round-trip, error paths."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MemorySink,
    NULL_OBSERVER,
    Observer,
    build_summary,
    load_run_report,
    write_run_report,
)


@pytest.fixture
def observer():
    return Observer(MemorySink())


def _simulate_small_run(observer):
    """Hand-drive the instruments the way a replay would."""
    submitted = observer.queries_submitted
    completed = observer.queries_completed
    for t, group in ((1.0, "tg0"), (2.0, "tg0"), (3.0, "tg1")):
        submitted.labels(group=group).inc(t)
        span = observer.tracer.start_span("query", t, kind="query", group=group)
        span.add_event(t, "submit")
        span.end(t + 0.5, status="complete")
        completed.labels(group=group).inc(t + 0.5)
    observer.sla_violations.labels(group="tg0").inc(2.5)
    observer.routing_decisions.labels(group="tg0", outcome="free").inc(1.0)
    observer.routing_decisions.labels(group="tg0", outcome="free").inc(2.0)
    observer.routing_decisions.labels(group="tg1", outcome="overflow").inc(3.0)
    observer.rt_ttp.labels(group="tg0").set(5.0, 0.999)
    observer.rt_ttp.labels(group="tg0").set(10.0, 0.95)
    gauge = observer.concurrent_active.labels(group="tg0")
    gauge.set(0.0, 0.0)
    gauge.set(4.0, 2.0)
    gauge.set(8.0, 0.0)
    scaling = observer.tracer.start_span("scaling", 6.0, kind="scaling", group="tg0")
    scaling.end(7.0)


class TestBuildSummary:
    def test_structure(self, observer):
        _simulate_small_run(observer)
        summary = build_summary(
            observer.memory_sink(),
            observer=observer,
            horizon=10.0,
            simulator_events={"query-submit": 3},
            meta={"command": "test"},
        )
        assert summary["queries"] == {
            "submitted": 3.0,
            "completed": 3.0,
            "overflow": 0.0,
            "sla_violations": 1.0,
        }
        assert summary["spans"]["total"] == 4
        assert summary["spans"]["query_spans"] == 3
        assert summary["spans"]["by_status"] == {"complete": 3, "ok": 1}
        assert summary["routing_decisions"] == {"free": 2.0, "overflow": 1.0}
        assert summary["simulator_events"] == {"query-submit": 3}
        assert summary["meta"] == {"command": "test"}
        assert len(summary["scaling_actions"]) == 1

    def test_group_sections(self, observer):
        _simulate_small_run(observer)
        summary = build_summary(observer.memory_sink(), horizon=10.0)
        tg0 = summary["groups"]["tg0"]
        assert tg0["queries_submitted"] == 2.0
        assert tg0["sla_violations"] == 1.0
        assert tg0["rt_ttp_trajectory"] == [[5.0, 0.999], [10.0, 0.95]]
        assert tg0["rt_ttp_min"] == 0.95
        # Concurrency 0 over [0,4), 2 over [4,8), 0 over [8,10): 6s at 0, 4s at 2.
        assert tg0["concurrency_histogram"] == {"0": 6.0, "2": 4.0}
        assert summary["groups"]["tg1"]["rt_ttp_min"] == 1.0

    def test_empty_sink_is_a_valid_summary(self):
        summary = build_summary(MemorySink())
        assert summary["queries"]["submitted"] == 0
        assert summary["groups"] == {}


class TestWriteAndLoad:
    def test_round_trip(self, observer, tmp_path):
        _simulate_small_run(observer)
        paths = write_run_report(
            tmp_path / "out", observer, horizon=10.0, meta={"k": "v"}
        )
        assert paths.metrics.name == "metrics.jsonl"
        assert paths.spans.name == "spans.jsonl"
        assert paths.summary.name == "summary.json"
        for path in (paths.metrics, paths.spans, paths.summary):
            assert path.exists()

        report = load_run_report(paths.directory)
        assert report.summary["meta"] == {"k": "v"}
        assert len(report.spans) == 4
        assert report.top_groups(5) == [("tg0", 2.0), ("tg1", 1.0)]
        assert report.rt_ttp_trajectory("tg0") == [(5.0, 0.999), (10.0, 0.95)]
        assert report.rt_ttp_trajectory("absent") == []
        assert len(report.metric_samples("thrifty_rt_ttp")) == 2

    def test_summary_is_deterministic_json(self, observer, tmp_path):
        _simulate_small_run(observer)
        a = write_run_report(tmp_path / "a", observer, horizon=10.0).summary.read_text()
        b = write_run_report(tmp_path / "b", observer, horizon=10.0).summary.read_text()
        assert a == b
        json.loads(a)  # valid JSON

    def test_null_observer_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            write_run_report(tmp_path, NULL_OBSERVER)

    def test_load_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            load_run_report(tmp_path / "nope")

    def test_profile_section_present_when_captured(self, observer, tmp_path):
        _simulate_small_run(observer)
        with observer.profiler.capture():
            observer.profiler.record("packing.two_step_grouping", 0.25)
        paths = write_run_report(tmp_path, observer)
        summary = json.loads(paths.summary.read_text())
        assert summary["profile"]["packing.two_step_grouping"]["calls"] == 1.0
        observer.profiler.reset()
