"""Span lifecycle and the tracer's open-set bookkeeping."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import MemorySink, NullSink, STATUS_INFLIGHT, Tracer


@pytest.fixture
def sink():
    return MemorySink()


@pytest.fixture
def tracer(sink):
    return Tracer(sink)


class TestSpanLifecycle:
    def test_end_emits_the_record(self, tracer, sink):
        span = tracer.start_span("query", 1.0, kind="query", group="g1", tenant=7)
        span.add_event(1.0, "submit")
        span.add_event(2.0, "route", instance="tg0-mppdb0", outcome="free")
        span.set_attr("normalized", 0.8)
        record = span.end(3.0, status="complete")
        assert span.ended
        assert sink.spans == [record]
        assert record.start == 1.0 and record.end == 3.0
        assert record.status == "complete"
        assert dict(record.attrs)["tenant"] == 7
        assert dict(record.attrs)["normalized"] == 0.8
        assert [e.name for e in record.events] == ["submit", "route"]
        assert dict(record.events[1].attrs)["outcome"] == "free"

    def test_double_end_rejected(self, tracer):
        span = tracer.start_span("query", 0.0)
        span.end(1.0)
        with pytest.raises(ObservabilityError):
            span.end(2.0)

    def test_event_after_end_rejected(self, tracer):
        span = tracer.start_span("query", 0.0)
        span.end(1.0)
        with pytest.raises(ObservabilityError):
            span.add_event(2.0, "late")

    def test_end_before_start_rejected(self, tracer):
        span = tracer.start_span("query", 5.0)
        with pytest.raises(ObservabilityError):
            span.end(4.0)

    def test_zero_duration_span_allowed(self, tracer, sink):
        tracer.start_span("query", 5.0).end(5.0)
        assert sink.spans[0].start == sink.spans[0].end == 5.0

    def test_parent_linkage(self, tracer, sink):
        parent = tracer.start_span("reconsolidation", 0.0)
        child = tracer.start_span("query", 1.0, parent=parent)
        child.end(2.0)
        parent.end(3.0)
        child_rec, parent_rec = sink.spans
        assert child_rec.parent_id == parent_rec.span_id


class TestTracer:
    def test_ids_are_deterministic(self):
        def run():
            tracer = Tracer(MemorySink())
            return [tracer.start_span("s", 0.0).span_id for _ in range(3)]

        assert run() == run() == [1, 2, 3]

    def test_open_spans_tracked_until_ended(self, tracer):
        a = tracer.start_span("a", 0.0)
        b = tracer.start_span("b", 1.0)
        assert tracer.open_spans() == [a, b]
        a.end(2.0)
        assert tracer.open_spans() == [b]
        assert tracer.finished_count == 1

    def test_end_open_force_closes_with_inflight(self, tracer, sink):
        tracer.start_span("query", 0.0, kind="query")
        tracer.start_span("query", 1.0, kind="query")
        closed = tracer.end_open(9.0)
        assert closed == 2
        assert tracer.open_spans() == []
        assert all(s.status == STATUS_INFLIGHT for s in sink.spans)
        assert tracer.end_open(9.0) == 0  # idempotent

    def test_end_open_kind_filter(self, tracer):
        tracer.start_span("query", 0.0, kind="query")
        scaling = tracer.start_span("scaling", 0.0, kind="scaling")
        assert tracer.end_open(5.0, kind="query") == 1
        assert tracer.open_spans() == [scaling]

    def test_disabled_sink_suppresses_emission_not_bookkeeping(self):
        tracer = Tracer(NullSink())
        span = tracer.start_span("query", 0.0)
        span.end(1.0)
        assert tracer.finished_count == 1
        assert not tracer.enabled

    def test_kind_defaults_to_name(self, tracer, sink):
        tracer.start_span("scaling", 0.0).end(1.0)
        assert sink.spans[0].kind == "scaling"
