"""The Observer façade: instrument contract, events, sink discovery."""

from repro.obs import MemorySink, NULL_OBSERVER, NullSink, Observer, TeeSink


class TestNullObserver:
    def test_disabled_by_default(self):
        assert not NULL_OBSERVER.enabled
        assert not Observer().enabled

    def test_instruments_are_safe_no_ops(self):
        NULL_OBSERVER.queries_submitted.labels(group="g").inc(0.0)
        NULL_OBSERVER.rt_ttp.labels(group="g").set(0.0, 1.0)
        NULL_OBSERVER.event(0.0, "anything", detail=1)
        assert NULL_OBSERVER.queries_submitted.value(group="g") == 0.0


class TestInstrumentContract:
    def test_standard_metric_names(self):
        observer = Observer(MemorySink())
        expected = {
            "thrifty_queries_submitted_total",
            "thrifty_queries_completed_total",
            "thrifty_queries_overflow_total",
            "thrifty_sla_violations_total",
            "thrifty_routing_decisions_total",
            "thrifty_scaling_actions_total",
            "thrifty_rt_ttp",
            "thrifty_concurrent_active_tenants",
            "thrifty_query_latency_seconds",
            "thrifty_normalized_latency",
            "thrifty_engine_queries_total",
            "thrifty_engine_concurrency",
            "thrifty_node_failures_total",
            "thrifty_query_retries_total",
            "thrifty_failovers_total",
            "thrifty_queries_failed_total",
            "thrifty_instance_degraded_seconds",
            "thrifty_node_replacement_seconds",
        }
        assert {family.name for family in observer.metrics} == expected

    def test_instrument_updates_reach_the_sink(self):
        sink = MemorySink()
        observer = Observer(sink)
        observer.queries_submitted.labels(group="g1").inc(1.0)
        observer.routing_decisions.labels(group="g1", outcome="free").inc(1.0)
        names = {s.name for s in sink.metrics}
        assert names == {
            "thrifty_queries_submitted_total",
            "thrifty_routing_decisions_total",
        }

    def test_tracer_shares_the_sink(self):
        sink = MemorySink()
        observer = Observer(sink)
        observer.tracer.start_span("query", 0.0, kind="query").end(1.0)
        assert len(sink.spans) == 1


class TestEvents:
    def test_event_emits_trace_record_shape(self):
        sink = MemorySink()
        Observer(sink).event(4.5, "reconsolidation", cycle=2)
        (event,) = sink.events
        assert event.time == 4.5
        assert event.kind == "reconsolidation"
        assert dict(event.attrs)["cycle"] == 2

    def test_event_skipped_when_disabled(self):
        observer = Observer(NullSink())
        observer.event(0.0, "never")  # must not raise nor allocate visibly


class TestMemorySinkDiscovery:
    def test_direct(self):
        sink = MemorySink()
        assert Observer(sink).memory_sink() is sink

    def test_through_tee(self):
        memory = MemorySink()
        observer = Observer(TeeSink([NullSink(), memory]))
        assert observer.memory_sink() is memory

    def test_absent(self):
        assert Observer(NullSink()).memory_sink() is None
        assert NULL_OBSERVER.memory_sink() is None
