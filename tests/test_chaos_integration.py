"""End-to-end fault-tolerance: chaos replay, failover, graceful degradation.

The deterministic scenarios pin the ISSUE acceptance criteria: with
replication factor >= 2 a node failure mid-replay degrades the instance,
in-flight queries fail over to a surviving replica, a replacement node is
provisioned, and the books balance; with a single replica the group
degrades gracefully into typed deadline failures instead of crashing.
"""

import pytest

from repro.cluster.failures import FailureInjector
from repro.core.fault import REASON_DEADLINE_EXCEEDED, RetryPolicy
from repro.core.service import ThriftyService
from repro.errors import DeploymentError
from repro.rng import RngFactory
from repro.units import DAY, HOUR
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator
from tests.conftest import tiny_config


def _build_service(config, **service_kwargs):
    library = SessionLogGenerator(config, sessions_per_size=3).generate()
    workload = MultiTenantLogComposer(config, library).compose()
    service = ThriftyService(config, **service_kwargs)
    service.deploy(workload)
    return workload, service


def _kill_first_busy_instance(service, injector, killed, probe_interval_s=60.0):
    """Schedule a probe that fails a node of the first busy instance seen.

    Random chaos rarely catches an in-flight query at test scale, so the
    abort -> retry -> failover path is exercised by timing the failure
    deterministically against a busy execution engine.
    """

    def _probe(time):
        for instance in service.provisioner.live_instances():
            if instance.is_ready and instance.engine.concurrency > 0 and instance.node_ids:
                killed["instance"] = instance.name
                killed["time"] = time
                injector.inject_now(instance.node_ids[0])
                return
        service.simulator.schedule(time + probe_interval_s, _probe, label="kill-probe")

    service.simulator.schedule(1 * HOUR, _probe, label="kill-probe")


def _books_balance(service, report):
    """submitted == completed + failed + still-parked + still-inflight."""
    for name, group_report in report.group_reports.items():
        runtime = service._runtimes[name]
        assert group_report.queries_submitted == (
            group_report.queries_completed
            + group_report.queries_failed
            + len(runtime._parked)
            + len(runtime._inflight)
        ), f"group {name} books do not balance"


@pytest.fixture(scope="module")
def failover_run():
    """Replicated deployment with a node failure injected mid-query."""
    config = tiny_config(num_tenants=24, seed=13)
    assert config.replication_factor >= 2
    __, service = _build_service(config)
    injector = FailureInjector(
        service.pool, service.simulator, 1e12, RngFactory(5).stream("chaos", "kill")
    )
    service.health.watch(injector)
    killed = {}
    _kill_first_busy_instance(service, injector, killed)
    report = service.replay(until=1 * DAY)
    return service, report, killed


class TestFailover:
    def test_failure_hit_a_busy_instance(self, failover_run):
        service, __, killed = failover_run
        assert "instance" in killed
        assert service.health.node_failures_handled >= 1

    def test_aborted_queries_retry_and_fail_over(self, failover_run):
        __, report, __ = failover_run
        assert sum(r.queries_retried for r in report.group_reports.values()) >= 1
        # The degraded instance is skipped by the router, so the retry
        # lands on a surviving replica of the same tenant group.
        assert sum(r.failovers for r in report.group_reports.values()) >= 1

    def test_replacement_provisioned_and_recovered(self, failover_run):
        service, __, killed = failover_run
        assert service.health.replacements_started >= 1
        assert service.health.replacements_completed >= 1
        instance = service.provisioner.get(killed["instance"])
        assert instance.is_ready
        assert instance.impaired_node_count == 0

    def test_every_query_is_accounted_for(self, failover_run):
        service, report, __ = failover_run
        _books_balance(service, report)
        # Nothing exhausted its retries: replication hid the failure.
        assert all(not r.fault_records for r in report.group_reports.values())

    def test_sla_survives_the_failure(self, failover_run):
        __, report, __ = failover_run
        assert report.sla.fraction_met > 0.9


@pytest.fixture(scope="module")
def degraded_run():
    """Single-replica deployment: failure parks queries until a deadline."""
    config = tiny_config(num_tenants=24, seed=13, replication_factor=1)
    __, service = _build_service(
        config, fault=RetryPolicy(queue_deadline_s=600.0)
    )
    injector = FailureInjector(
        service.pool, service.simulator, 1e12, RngFactory(5).stream("chaos", "kill")
    )
    service.health.watch(injector)
    killed = {}
    _kill_first_busy_instance(service, injector, killed)
    report = service.replay(until=1 * DAY)
    return service, report, killed


class TestGracefulDegradation:
    def test_queries_fail_typed_not_crash(self, degraded_run):
        __, report, killed = degraded_run
        assert "instance" in killed
        records = [
            record
            for r in report.group_reports.values()
            for record in r.fault_records
        ]
        # Node replacement takes hours; the 600 s queue deadline expires
        # first, so parked queries surface as typed deadline failures.
        assert records
        assert all(r.reason == REASON_DEADLINE_EXCEEDED for r in records)

    def test_books_balance_under_degradation(self, degraded_run):
        service, report, __ = degraded_run
        _books_balance(service, report)
        assert sum(r.queries_failed for r in report.group_reports.values()) == len(
            [rec for r in report.group_reports.values() for rec in r.fault_records]
        )


class TestChaosHarness:
    def _chaos_run(self, mtbf_s=6 * HOUR):
        config = tiny_config(num_tenants=12, seed=13)
        __, service = _build_service(config)
        scheduled = service.arm_chaos(mtbf_s, horizon=1 * DAY)
        report = service.replay(until=1 * DAY)
        return service, scheduled, report

    def test_chaos_replay_is_deterministic(self):
        first_service, first_scheduled, first_report = self._chaos_run()
        second_service, second_scheduled, second_report = self._chaos_run()
        assert first_scheduled == second_scheduled
        assert [
            (f.node_id, f.time) for f in first_service.chaos.failures
        ] == [(f.node_id, f.time) for f in second_service.chaos.failures]
        assert first_report.summary() == second_report.summary()

    def test_chaos_replay_completes_and_balances(self):
        service, scheduled, report = self._chaos_run()
        assert scheduled >= 1
        assert service.health.node_failures_handled >= 1
        _books_balance(service, report)

    def test_arm_twice_rejected(self):
        config = tiny_config(num_tenants=12, seed=13)
        __, service = _build_service(config)
        service.arm_chaos(6 * HOUR, horizon=1 * DAY)
        with pytest.raises(DeploymentError):
            service.arm_chaos(6 * HOUR, horizon=1 * DAY)
