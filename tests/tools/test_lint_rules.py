"""Fixture tests for the THR rule set: each rule fires on a bad snippet and
stays quiet on a good one."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import check_file


def _lint_snippet(tmp_path: Path, relpath: str, source: str, select=None):
    """Write ``source`` at ``relpath`` under ``tmp_path`` and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    violations = check_file(path)
    if select is not None:
        violations = [v for v in violations if v.code == select]
    return violations


class TestTHR001ReplayDeterminism:
    def test_fires_on_stdlib_random_import(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/simulation/bad.py",
            """
            import random

            def draw() -> float:
                return random.random()
            """,
            select="THR001",
        )
        assert bad and bad[0].line == 2

    def test_fires_on_wall_clock_and_adhoc_rng(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/core/bad.py",
            """
            import time
            import numpy as np

            def stamp() -> float:
                return time.time()

            def rng(seed: int):
                return np.random.default_rng(seed)
            """,
            select="THR001",
        )
        assert len(bad) == 2
        assert {v.line for v in bad} == {6, 9}

    def test_quiet_on_framework_randomness(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/workload/good.py",
            """
            import numpy as np

            from repro.rng import RngFactory

            def draw(rng: np.random.Generator) -> float:
                return float(rng.random())

            def make(seed: int) -> np.random.Generator:
                return RngFactory(seed).stream("workload")
            """,
            select="THR001",
        )
        assert good == []

    def test_quiet_outside_replay_layers(self, tmp_path):
        # packing/analysis may time their own solver runs with perf_counter.
        good = _lint_snippet(
            tmp_path,
            "src/repro/analysis/good.py",
            """
            import time

            def elapsed() -> float:
                return time.time()
            """,
            select="THR001",
        )
        assert good == []


class TestTHR002ReproErrors:
    def test_fires_on_builtin_raise(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/mppdb/bad.py",
            """
            def check(x: int) -> None:
                if x < 0:
                    raise ValueError("negative")
            """,
            select="THR002",
        )
        assert len(bad) == 1
        assert "ValueError" in bad[0].message

    def test_quiet_on_repro_error_bare_reraise_and_stubs(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/mppdb/good.py",
            """
            from repro.errors import MPPDBError

            def check(x: int) -> None:
                if x < 0:
                    raise MPPDBError("negative")

            def stub() -> None:
                raise NotImplementedError

            def passthrough() -> None:
                try:
                    check(-1)
                except MPPDBError:
                    raise
            """,
            select="THR002",
        )
        assert good == []

    def test_quiet_outside_repro(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "benchmarks/bench_bad.py",
            """
            def check(x: int) -> None:
                raise ValueError("benchmarks may use builtins")
            """,
            select="THR002",
        )
        assert good == []


class TestTHR003FloatEquality:
    def test_fires_on_float_literal_comparison(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/core/bad.py",
            """
            def met(fraction: float) -> bool:
                return fraction == 0.999
            """,
            select="THR003",
        )
        assert len(bad) == 1

    def test_fires_on_domain_named_operands(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "examples/bad.py",
            """
            def same(a, b) -> bool:
                return a.latency_s != b.latency_s
            """,
            select="THR003",
        )
        assert len(bad) == 1

    def test_quiet_on_isclose_ints_and_ordering(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/core/good.py",
            """
            import math

            def met(fraction: float, epoch: int) -> bool:
                return math.isclose(fraction, 0.999) and epoch == 3 and fraction >= 0.5
            """,
            select="THR003",
        )
        assert good == []


class TestTHR004MutableDefaults:
    def test_fires_on_list_and_dict_defaults(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "examples/bad.py",
            """
            def f(xs=[]):
                return xs

            def g(*, mapping=dict()):
                return mapping
            """,
            select="THR004",
        )
        assert len(bad) == 2

    def test_quiet_on_none_and_immutable_defaults(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "examples/good.py",
            """
            def f(xs=None, pair=(), name="x"):
                return xs, pair, name
            """,
            select="THR004",
        )
        assert good == []


class TestTHR005BroadExcept:
    def test_fires_on_swallowed_exception(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/cluster/bad.py",
            """
            def risky() -> int:
                try:
                    return 1
                except Exception:
                    return 0
            """,
            select="THR005",
        )
        assert len(bad) == 1

    def test_quiet_on_reraise_and_specific_catch(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/cluster/good.py",
            """
            from repro.errors import ClusterError

            def risky() -> int:
                try:
                    return 1
                except ClusterError:
                    return 0

            def logged() -> int:
                try:
                    return 1
                except Exception:
                    raise
            """,
            select="THR005",
        )
        assert good == []


class TestTHR006PublicAnnotations:
    def test_fires_on_unannotated_public_function(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/packing/bad.py",
            """
            def pack(items, capacity):
                return [items]

            class Solver:
                def solve(self, problem):
                    return problem
            """,
            select="THR006",
        )
        # pack: params + return; Solver.solve: params + return.
        assert len(bad) == 4

    def test_quiet_on_annotated_and_private(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/packing/good.py",
            """
            def pack(items: list[int], capacity: float) -> list[list[int]]:
                return [items]

            def _helper(x):
                return x

            class Solver:
                def solve(self, problem: int) -> int:
                    return problem

                def _internal(self, anything):
                    return anything
            """,
            select="THR006",
        )
        assert good == []

    def test_quiet_outside_typed_core(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/workload/loose.py",
            """
            def pack(items, capacity):
                return [items]
            """,
            select="THR006",
        )
        assert good == []


class TestTHR007NoBarePrint:
    def test_fires_on_library_print(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/core/bad.py",
            """
            def report(done: int) -> None:
                print(f"{done} queries done")
            """,
            select="THR007",
        )
        assert len(bad) == 1
        assert "print()" in bad[0].message

    def test_quiet_in_cli_and_main(self, tmp_path):
        for relpath in ("src/repro/cli.py", "src/repro/__main__.py", "src/repro/tools/lint/__main__.py"):
            good = _lint_snippet(
                tmp_path,
                relpath,
                """
                def main() -> int:
                    print("presentation layer")
                    return 0
                """,
                select="THR007",
            )
            assert good == [], relpath

    def test_quiet_outside_repro_and_on_shadowed_print(self, tmp_path):
        assert (
            _lint_snippet(
                tmp_path,
                "examples/demo.py",
                """
                print("examples are presentation code")
                """,
                select="THR007",
            )
            == []
        )
        # A method *named* print is not the builtin.
        assert (
            _lint_snippet(
                tmp_path,
                "src/repro/analysis/good.py",
                """
                class Report:
                    def render(self) -> str:
                        return "table"

                def show(report: Report, sink) -> None:
                    sink.print(report.render())
                """,
                select="THR007",
            )
            == []
        )


class TestTHR008EnumValueComparison:
    def test_fires_on_value_vs_string_literal(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/cluster/bad.py",
            """
            def is_failed(node) -> bool:
                return node.state.value == "failed"
            """,
            select="THR008",
        )
        assert len(bad) == 1
        assert "NodeState.FAILED" in bad[0].message

    def test_fires_on_not_equal_and_reversed_operands(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/mppdb/bad.py",
            """
            def check(instance) -> bool:
                return "ready" != instance.state.value
            """,
            select="THR008",
        )
        assert len(bad) == 1

    def test_quiet_on_member_identity_comparison(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/cluster/good.py",
            """
            from enum import Enum

            class NodeState(Enum):
                FAILED = "failed"

            def is_failed(node) -> bool:
                return node.state is NodeState.FAILED
            """,
            select="THR008",
        )
        assert good == []

    def test_quiet_on_non_string_and_non_value_comparisons(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/cluster/good.py",
            """
            def checks(node) -> bool:
                return node.state.value == 3 or node.name == "failed"
            """,
            select="THR008",
        )
        assert good == []

    def test_quiet_outside_repro(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "tools/helper.py",
            """
            def is_failed(node) -> bool:
                return node.state.value == "failed"
            """,
            select="THR008",
        )
        assert good == []


class TestSuppression:
    def test_coded_noqa_suppresses_matching_rule_only(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            "src/repro/core/suppressed.py",
            """
            def met(fraction: float) -> bool:
                return fraction == 0.999  # thrifty: noqa[THR003]
            """,
        )
        assert violations == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            "src/repro/core/suppressed.py",
            """
            def met(fraction: float) -> bool:
                return fraction == 0.999  # thrifty: noqa[THR001]
            """,
            select="THR003",
        )
        assert len(violations) == 1

    def test_blanket_noqa_suppresses_everything(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            "src/repro/core/suppressed.py",
            """
            def met(fraction: float) -> bool:
                return fraction == 0.999  # thrifty: noqa
            """,
        )
        assert violations == []


class TestTHR009ParallelImport:
    def test_fires_on_multiprocessing_import(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/core/bad_pool.py",
            """
            import multiprocessing

            def fan_out(n: int):
                return multiprocessing.Pool(n)
            """,
            select="THR009",
        )
        assert bad and bad[0].line == 2

    def test_fires_on_concurrent_futures_from_import(self, tmp_path):
        bad = _lint_snippet(
            tmp_path,
            "src/repro/analysis/bad_pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(n: int):
                return ProcessPoolExecutor(max_workers=n)
            """,
            select="THR009",
        )
        assert len(bad) == 1

    def test_quiet_inside_repro_parallel(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/parallel/runner.py",
            """
            import concurrent.futures
            import multiprocessing
            """,
            select="THR009",
        )
        assert good == []

    def test_quiet_on_fabric_usage(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "src/repro/analysis/good_pool.py",
            """
            from repro.parallel import ProcessPoolRunner

            def fan_out(n: int) -> ProcessPoolRunner:
                return ProcessPoolRunner(max_workers=n)
            """,
            select="THR009",
        )
        assert good == []

    def test_quiet_outside_repro(self, tmp_path):
        good = _lint_snippet(
            tmp_path,
            "benchmarks/bench_pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor
            """,
            select="THR009",
        )
        assert good == []


@pytest.mark.parametrize(
    "code",
    [
        "THR001",
        "THR002",
        "THR003",
        "THR004",
        "THR005",
        "THR006",
        "THR007",
        "THR008",
        "THR009",
    ],
)
def test_every_rule_is_registered(code):
    from repro.tools.lint import rule_codes

    assert code in rule_codes()
