"""Program-graph construction and call resolution for ``thrifty-analyze``."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.errors import AnalysisError, ReproError
from repro.tools.analyze import build_program, find_package_root
from repro.tools.analyze.graph import ProgramGraph


def make_package(tmp_path: Path, files: dict[str, str], name: str = "app") -> Path:
    """Write a synthetic package under ``tmp_path`` and return its directory."""
    pkg = tmp_path / name
    pkg.mkdir(parents=True, exist_ok=True)
    if "__init__.py" not in files:
        (pkg / "__init__.py").write_text("")
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return pkg


def build(tmp_path: Path, files: dict[str, str]) -> ProgramGraph:
    return build_program(make_package(tmp_path, files))


def resolutions_of(graph: ProgramGraph, qualname: str) -> list:
    return [resolution for _call, resolution in graph.calls_of(qualname)]


class TestPackageLoading:
    def test_modules_keyed_by_dotted_name(self, tmp_path):
        graph = build(tmp_path, {"a.py": "X = 1\n", "sub/__init__.py": "", "sub/b.py": "Y = 2\n"})
        assert graph.package == "app"
        assert {"app", "app.a", "app.sub", "app.sub.b"} <= set(graph.modules)
        assert graph.modules["app"].is_package
        assert graph.modules["app.sub"].is_package
        assert not graph.modules["app.a"].is_package

    def test_functions_and_classes_are_collected(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                def free():
                    return 1

                class Box:
                    def get(self):
                        return free()
                """
            },
        )
        assert "app.mod.free" in graph.functions
        assert "app.mod.Box.get" in graph.functions
        assert "app.mod.Box" in graph.classes
        assert graph.functions["app.mod.Box.get"].display == "Box.get"
        assert graph.functions["app.mod.free"].display == "mod.free"

    def test_exports_include_appends(self, tmp_path):
        graph = build(
            tmp_path,
            {"__init__.py": '__all__ = ["a"]\n__all__.append("b")\n__all__.extend(["c"])\n'},
        )
        names = {export for export, _line in graph.modules["app"].exports}
        assert names == {"a", "b", "c"}


class TestCallResolution:
    def test_bare_name_and_from_import(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "util.py": "def helper():\n    return 1\n",
                "mod.py": "from .util import helper\n\ndef run():\n    return helper()\n",
            },
        )
        (resolution,) = resolutions_of(graph, "app.mod.run")
        assert resolution.targets == ("app.util.helper",)

    def test_typed_self_attribute_method(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                class Engine:
                    def submit(self):
                        return 1

                class Service:
                    def __init__(self, engine: Engine) -> None:
                        self.engine = engine

                    def run(self):
                        return self.engine.submit()
                """
            },
        )
        (resolution,) = resolutions_of(graph, "app.mod.Service.run")
        assert resolution.targets == ("app.mod.Engine.submit",)

    def test_constructor_call_reaches_init(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                class Thing:
                    def __init__(self) -> None:
                        self.x = 1

                def make():
                    return Thing()
                """
            },
        )
        (resolution,) = resolutions_of(graph, "app.mod.make")
        assert resolution.targets == ("app.mod.Thing.__init__",)

    def test_classmethod_access_through_class_name(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                class Matrix:
                    @classmethod
                    def from_rows(cls, rows):
                        return cls()

                def load(rows):
                    return Matrix.from_rows(rows)
                """
            },
        )
        (resolution,) = resolutions_of(graph, "app.mod.load")
        assert resolution.targets == ("app.mod.Matrix.from_rows",)

    def test_dispatch_table_subscript_call(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                def fast():
                    return 1

                def slow():
                    return 2

                ALGOS = {"fast": fast, "slow": slow}

                def run(name):
                    return ALGOS[name]()
                """
            },
        )
        (resolution,) = resolutions_of(graph, "app.mod.run")
        assert set(resolution.targets) == {"app.mod.fast", "app.mod.slow"}

    def test_subclass_overrides_included_for_self_calls(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                class Base:
                    def hook(self):
                        return 0

                    def run(self):
                        return self.hook()

                class Child(Base):
                    def hook(self):
                        return 1
                """
            },
        )
        (resolution,) = resolutions_of(graph, "app.mod.Base.run")
        assert set(resolution.targets) == {"app.mod.Base.hook", "app.mod.Child.hook"}

    def test_unknown_self_attribute_is_opaque(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                class Box:
                    def run(self):
                        return self.mystery()
                """
            },
        )
        (resolution,) = resolutions_of(graph, "app.mod.Box.run")
        assert resolution.opaque
        assert not resolution.targets

    def test_stdlib_call_is_external(self, tmp_path):
        graph = build(tmp_path, {"mod.py": "import time\n\ndef now():\n    return time.time()\n"})
        (resolution,) = resolutions_of(graph, "app.mod.now")
        assert resolution.external == ("time", "time")


class TestReachability:
    def test_reachable_returns_shortest_chains(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": """
                def leaf():
                    return 1

                def mid():
                    return leaf()

                def root():
                    return mid()
                """
            },
        )
        paths = graph.reachable(["app.mod.root"])
        assert paths["app.mod.leaf"] == ("app.mod.root", "app.mod.mid", "app.mod.leaf")
        assert "app.mod.root" in paths

    def test_unreachable_function_is_absent(self, tmp_path):
        graph = build(
            tmp_path,
            {"mod.py": "def island():\n    return 1\n\ndef root():\n    return 2\n"},
        )
        paths = graph.reachable(["app.mod.root"])
        assert "app.mod.island" not in paths


class TestFindPackageRoot:
    def test_accepts_package_directory_itself(self, tmp_path):
        pkg = make_package(tmp_path, {})
        assert find_package_root([pkg]) == pkg

    def test_accepts_parent_with_single_package(self, tmp_path):
        pkg = make_package(tmp_path, {})
        assert find_package_root([tmp_path]) == pkg

    def test_multiple_packages_is_an_error(self, tmp_path):
        make_package(tmp_path, {}, name="one")
        make_package(tmp_path, {}, name="two")
        with pytest.raises(AnalysisError):
            find_package_root([tmp_path])

    def test_no_package_is_an_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            find_package_root([tmp_path])
        assert issubclass(AnalysisError, ReproError)
