"""Edge cases of the ``thrifty: noqa`` machinery and the unused-noqa audit."""

from __future__ import annotations

from pathlib import Path

from repro.tools.lint import check_paths, main
from repro.tools.lint.registry import Violation
from repro.tools.lint.runner import find_unused_noqa
from repro.tools.lint.suppress import (
    ALL_CODES,
    NoqaComment,
    filter_suppressed,
    line_suppressions,
    noqa_comments,
    suppressed_codes,
)


def _violation(line: int, code: str = "THR003") -> Violation:
    return Violation(code=code, message="m", path="f.py", line=line, col=1)


class TestParsing:
    def test_codes_are_case_insensitive(self):
        assert suppressed_codes("x = 1  # THRIFTY: NOQA[thr003]") == {"THR003"}
        assert suppressed_codes("x = 1  # Thrifty: NoQa[Thr001,thr003]") == {
            "THR001",
            "THR003",
        }

    def test_whitespace_inside_brackets(self):
        assert suppressed_codes("x  # thrifty: noqa[ THR001 ,  THR003 ]") == {
            "THR001",
            "THR003",
        }

    def test_blanket_form_yields_sentinel(self):
        assert suppressed_codes("x  # thrifty: noqa") == {ALL_CODES}
        comment = noqa_comments("x = 1  # thrifty: noqa\n")[0]
        assert comment.is_blanket

    def test_unknown_codes_parse_but_do_not_match_others(self):
        codes = suppressed_codes("x  # thrifty: noqa[THR999]")
        assert codes == {"THR999"}
        kept = filter_suppressed([_violation(1)], "x == 0.5  # thrifty: noqa[THR999]\n")
        assert len(kept) == 1

    def test_plain_comment_is_not_a_noqa(self):
        assert suppressed_codes("x = 1  # regular comment") == frozenset()


class TestTokenizerAccuracy:
    def test_noqa_inside_string_literal_does_not_suppress(self):
        source = 'MARKER = "use # thrifty: noqa[THR003] to silence"\n'
        assert noqa_comments(source) == []
        assert line_suppressions(source) == {}
        kept = filter_suppressed([_violation(1)], source)
        assert len(kept) == 1

    def test_noqa_in_docstring_does_not_suppress(self):
        source = 'def f():\n    """# thrifty: noqa"""\n    return 1\n'
        assert noqa_comments(source) == []

    def test_real_comment_after_string_on_same_line_counts(self):
        source = 'x = "text"  # thrifty: noqa[THR003]\n'
        (comment,) = noqa_comments(source)
        assert comment == NoqaComment(line=1, col=comment.col, codes=frozenset({"THR003"}))
        assert line_suppressions(source) == {1: frozenset({"THR003"})}

    def test_broken_source_falls_back_to_regex(self):
        source = "def f(:\n    x = 1  # thrifty: noqa[THR003]\n"
        (comment,) = noqa_comments(source)
        assert comment.line == 2
        assert comment.codes == frozenset({"THR003"})

    def test_filter_accepts_text_or_line_list(self):
        text = "a == 0.5  # thrifty: noqa[THR003]\nb == 0.5\n"
        for source in (text, text.splitlines()):
            kept = filter_suppressed([_violation(1), _violation(2)], source)
            assert [v.line for v in kept] == [2]

    def test_string_literal_noqa_does_not_hide_lint_findings(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            'def _f(fraction):\n'
            '    return fraction == 0.999, "# thrifty: noqa[THR003]"\n'
        )
        violations, _ = check_paths([path])
        assert [v.code for v in violations] == ["THR003"]


class TestUnusedNoqa:
    def test_reports_noqa_that_fires_nothing(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # thrifty: noqa[THR003]\n")
        stale, files_checked = find_unused_noqa([path])
        assert files_checked == 1
        (violation,) = stale
        assert violation.code == "NOQA"
        assert violation.line == 1
        assert "THR003" in violation.message

    def test_active_suppression_is_not_reported(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(fraction):\n    return fraction == 0.999  # thrifty: noqa[THR003]\n"
        )
        stale, _ = find_unused_noqa([path])
        assert stale == []

    def test_blanket_noqa_on_clean_line_is_reported(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # thrifty: noqa\n")
        stale, _ = find_unused_noqa([path])
        assert [v.code for v in stale] == ["NOQA"]
        assert "no violation fires" in stale[0].message

    def test_wrong_code_on_firing_line_is_reported(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(fraction):\n    return fraction == 0.999  # thrifty: noqa[THR001]\n"
        )
        stale, _ = find_unused_noqa([path])
        assert len(stale) == 1
        assert "THR001" in stale[0].message

    def test_cli_flag_exit_codes(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text("x = 1  # thrifty: noqa[THR004]\n")
        assert main([str(stale), "--unused-noqa"]) == 1
        assert "unused suppression" in capsys.readouterr().out
        clean = tmp_path / "clean.py"
        clean.write_text("y = 2\n")
        assert main([str(clean), "--unused-noqa"]) == 0

    def test_repo_has_no_unused_noqa(self):
        repo_root = Path(__file__).resolve().parents[2]
        stale, files_checked = find_unused_noqa([repo_root / "src"])
        assert files_checked > 0
        assert stale == [], "\n".join(v.format_text() for v in stale)
