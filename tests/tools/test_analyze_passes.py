"""Fixture tests for the THRA passes: each has a firing and a quiet case."""

from __future__ import annotations

from pathlib import Path

from repro.tools.analyze import AnalyzeConfig, build_program, default_transition_tables, run_passes
from repro.tools.analyze.passes.api_surface import ApiSurfaceDriftPass
from repro.tools.analyze.passes.determinism import DeterminismTaintPass
from repro.tools.analyze.passes.exceptions import DeadHandlerPass, PublicBuiltinEscapePass
from repro.tools.analyze.passes.lifecycle import LifecycleTransitionPass

from .test_analyze_graph import make_package


def analyze(tmp_path: Path, files: dict[str, str], analysis_pass, **config_kwargs):
    graph = build_program(make_package(tmp_path, files))
    config = AnalyzeConfig(**config_kwargs)
    return run_passes(graph, config, [analysis_pass])


class TestDeterminismTaint:
    def test_transitive_two_hop_leak_fires_with_chain(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "service.py": """
                from .solver import plan

                class Replay:
                    def run(self):
                        return plan()
                """,
                "solver.py": """
                from .timing import stamp

                def plan():
                    return stamp()
                """,
                "timing.py": """
                import time

                def stamp():
                    return time.perf_counter()
                """,
            },
            DeterminismTaintPass(),
            entry_prefixes=("service.",),
        )
        assert [f.code for f in findings] == ["THRA101"]
        finding = findings[0]
        assert finding.path.endswith("timing.py")
        assert "time.perf_counter" in finding.message
        assert "Replay.run" in finding.message
        assert finding.detail == (
            "via Replay.run -> solver.plan -> timing.stamp -> time.perf_counter"
        )
        assert finding.fingerprint == (
            "THRA101::app/timing.py::timing.stamp::time.perf_counter"
        )

    def test_stdlib_random_and_unseeded_default_rng_fire(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "service.py": """
                import random

                import numpy

                class Replay:
                    def run(self):
                        numpy.random.default_rng()
                        return random.random()
                """
            },
            DeterminismTaintPass(),
            entry_prefixes=("service.",),
        )
        labels = {f.message.split(" is reachable")[0] for f in findings}
        assert labels == {"random.random", "unseeded numpy.random.default_rng"}

    def test_source_outside_the_entry_cone_is_quiet(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "service.py": """
                class Replay:
                    def run(self):
                        return 1
                """,
                "bench.py": """
                import time

                def measure():
                    return time.perf_counter()
                """,
            },
            DeterminismTaintPass(),
            entry_prefixes=("service.",),
        )
        assert findings == []

    def test_seeded_default_rng_is_quiet(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "service.py": """
                import numpy

                class Replay:
                    def run(self, seed):
                        return numpy.random.default_rng(seed)
                """
            },
            DeterminismTaintPass(),
            entry_prefixes=("service.",),
        )
        assert findings == []

    def test_noqa_comment_suppresses_the_finding(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "service.py": """
                import time

                class Replay:
                    def run(self):
                        return time.perf_counter()  # thrifty: noqa[THRA101]
                """
            },
            DeterminismTaintPass(),
            entry_prefixes=("service.",),
        )
        assert findings == []


class TestPublicBuiltinEscape:
    def test_builtin_from_private_helper_escapes_public_function(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "api.py": """
                def load(raw):
                    return _parse(raw)

                def _parse(raw):
                    if not raw:
                        raise ValueError("empty")
                    return raw
                """
            },
            PublicBuiltinEscapePass(),
        )
        assert [f.code for f in findings] == ["THRA102"]
        assert "ValueError" in findings[0].message
        assert "api.load" in findings[0].message

    def test_caught_builtin_and_internal_errors_are_quiet(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "api.py": """
                class AppError(Exception):
                    pass

                def safe(raw):
                    try:
                        return _parse(raw)
                    except ValueError:
                        return None

                def typed(raw):
                    if not raw:
                        raise AppError("empty")
                    return raw

                def _parse(raw):
                    if not raw:
                        raise ValueError("empty")
                    return raw
                """
            },
            PublicBuiltinEscapePass(),
        )
        assert findings == []

    def test_supertype_handler_absorbs_subtype_raise(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "api.py": """
                def read(path):
                    try:
                        return _open(path)
                    except OSError:
                        return None

                def _open(path):
                    raise FileNotFoundError(path)
                """
            },
            PublicBuiltinEscapePass(),
        )
        assert findings == []

    def test_not_implemented_error_is_exempt(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "api.py": """
                def abstract_hook():
                    raise NotImplementedError
                """
            },
            PublicBuiltinEscapePass(),
        )
        assert findings == []


class TestDeadHandler:
    ERRORS = """
    class AppError(Exception):
        pass

    class PackError(AppError):
        pass

    class RouteError(AppError):
        pass
    """

    def test_handler_for_unraisable_error_fires(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "errors.py": self.ERRORS,
                "work.py": """
                from .errors import PackError, RouteError

                def pack():
                    raise PackError("x")

                def run():
                    try:
                        return pack()
                    except RouteError:
                        return None
                """,
            },
            DeadHandlerPass(),
        )
        assert [f.code for f in findings] == ["THRA103"]
        assert "except RouteError" in findings[0].message
        assert "work.run" in findings[0].message

    def test_matching_and_supertype_handlers_are_quiet(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "errors.py": self.ERRORS,
                "work.py": """
                from .errors import AppError, PackError

                def pack():
                    raise PackError("x")

                def run():
                    try:
                        return pack()
                    except PackError:
                        return None

                def run_wide():
                    try:
                        return pack()
                    except AppError:
                        return None
                """,
            },
            DeadHandlerPass(),
        )
        assert findings == []

    def test_opaque_call_in_try_body_stays_silent(self, tmp_path):
        findings = analyze(
            tmp_path,
            {
                "errors.py": self.ERRORS,
                "work.py": """
                from .errors import RouteError

                def run(callback):
                    try:
                        return callback()
                    except RouteError:
                        return None
                """,
            },
            DeadHandlerPass(),
        )
        assert findings == []


class TestLifecycleTransitions:
    STATE = """
    import enum

    class InstanceState(enum.Enum):
        PROVISIONING = "provisioning"
        READY = "ready"
        DEGRADED = "degraded"
        DOWN = "down"
        RETIRED = "retired"
    """

    LEGAL = """
    from .state import InstanceState

    class Inst:
        def __init__(self):
            self._state = InstanceState.PROVISIONING

        def mark_ready(self):
            if self._state is not InstanceState.PROVISIONING:
                return
            self._state = InstanceState.READY

        def mark_down(self):
            if self._state is not InstanceState.RETIRED:
                self._state = InstanceState.DOWN

        def complete_node_replacement(self):
            if self._state in (InstanceState.DEGRADED, InstanceState.DOWN):
                self._state = InstanceState.READY
    """

    def run_pass(self, tmp_path, files):
        return analyze(
            tmp_path,
            files,
            LifecycleTransitionPass(),
            transition_tables=default_transition_tables(),
        )

    def test_legal_guarded_transitions_are_quiet(self, tmp_path):
        assert self.run_pass(tmp_path, {"state.py": self.STATE, "inst.py": self.LEGAL}) == []

    def test_down_to_ready_outside_replacement_method_fires(self, tmp_path):
        findings = self.run_pass(
            tmp_path,
            {
                "state.py": self.STATE,
                "inst.py": self.LEGAL
                + """
        def force_ready(self):
            if self._state is InstanceState.DOWN:
                self._state = InstanceState.READY
    """,
            },
        )
        assert [f.code for f in findings] == ["THRA104"]
        assert "DOWN -> READY" in findings[0].message
        assert "complete_node_replacement" in findings[0].message
        assert "force_ready" in findings[0].message

    def test_undeclared_edge_fires_as_illegal(self, tmp_path):
        findings = self.run_pass(
            tmp_path,
            {
                "state.py": self.STATE,
                "inst.py": self.LEGAL
                + """
        def weird(self):
            if self._state is InstanceState.DOWN:
                self._state = InstanceState.DEGRADED
    """,
            },
        )
        assert len(findings) == 1
        assert "illegal InstanceState transition DOWN -> DEGRADED" in findings[0].message

    def test_missing_guard_is_caught_even_when_each_line_is_plausible(self, tmp_path):
        # No guard at all: the method may run in any state, so the RETIRED ->
        # DOWN edge (undeclared) is among the checked transitions.
        findings = self.run_pass(
            tmp_path,
            {
                "state.py": self.STATE,
                "inst.py": """
                from .state import InstanceState

                class Inst:
                    def __init__(self):
                        self._state = InstanceState.PROVISIONING

                    def mark_down(self):
                        self._state = InstanceState.DOWN
                """,
            },
        )
        assert any("RETIRED -> DOWN" in f.message for f in findings)

    def test_constructor_must_start_in_initial_state(self, tmp_path):
        findings = self.run_pass(
            tmp_path,
            {
                "state.py": self.STATE,
                "inst.py": """
                from .state import InstanceState

                class Inst:
                    def __init__(self):
                        self._state = InstanceState.READY
                """,
            },
        )
        assert len(findings) == 1
        assert "not a declared initial state" in findings[0].message

    def test_assignment_outside_owning_class_fires(self, tmp_path):
        findings = self.run_pass(
            tmp_path,
            {
                "state.py": self.STATE,
                "inst.py": self.LEGAL,
                "hack.py": """
                from .state import InstanceState

                def knock_out(inst):
                    inst._state = InstanceState.DOWN
                """,
            },
        )
        assert len(findings) == 1
        assert "outside its owning class" in findings[0].message

    def test_package_without_the_enum_is_quiet(self, tmp_path):
        assert self.run_pass(tmp_path, {"mod.py": "X = 1\n"}) == []


class TestApiSurfaceDrift:
    def test_undocumented_export_fires(self, tmp_path):
        doc = tmp_path / "API.md"
        doc.write_text("Only `good` is documented here.\n")
        findings = analyze(
            tmp_path,
            {"__init__.py": '__all__ = ["good", "missing"]\n'},
            ApiSurfaceDriftPass(),
            api_doc=doc,
        )
        assert [f.code for f in findings] == ["THRA105"]
        assert "'missing'" in findings[0].message

    def test_documented_exports_and_leaf_modules_are_quiet(self, tmp_path):
        doc = tmp_path / "API.md"
        doc.write_text("Both `good` and `better` appear.\n")
        findings = analyze(
            tmp_path,
            {
                "__init__.py": '__all__ = ["good", "better"]\n',
                "leaf.py": '__all__ = ["undocumented_leaf_name"]\n',
            },
            ApiSurfaceDriftPass(),
            api_doc=doc,
        )
        assert findings == []

    def test_no_document_skips_the_pass(self, tmp_path):
        findings = analyze(
            tmp_path,
            {"__init__.py": '__all__ = ["missing"]\n'},
            ApiSurfaceDriftPass(),
            api_doc=None,
        )
        assert findings == []
