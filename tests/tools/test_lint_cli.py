"""CLI behaviour of ``thrifty-lint`` plus the repo-wide meta-test."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import LintError, ReproError
from repro.tools.lint import all_rules, check_paths, collect_files, main, select_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


BAD = "def f(xs=[]):\n    return xs == 0.5\n"


class TestCLI:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        _write(tmp_path, "pkg/clean.py", "X: int = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_with_text_report(self, tmp_path, capsys):
        path = _write(tmp_path, "pkg/bad.py", BAD)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "THR003" in out and "THR004" in out
        assert f"{path}:1:" in out

    def test_json_format_is_parseable(self, tmp_path, capsys):
        path = _write(tmp_path, "pkg/bad.py", BAD)
        assert main([str(path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["files_checked"] == 1
        assert doc["count"] == len(doc["violations"]) == 2
        assert {v["code"] for v in doc["violations"]} == {"THR003", "THR004"}

    def test_select_restricts_rules(self, tmp_path, capsys):
        path = _write(tmp_path, "pkg/bad.py", BAD)
        assert main([str(path), "--select", "THR004"]) == 1
        out = capsys.readouterr().out
        assert "THR004" in out and "THR003" not in out

    def test_ignore_drops_rules(self, tmp_path, capsys):
        path = _write(tmp_path, "pkg/bad.py", BAD)
        assert main([str(path), "--ignore", "THR003,THR004"]) == 0

    def test_unknown_rule_and_path_are_usage_errors(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing"), "--select", "THR001"]) == 2
        assert main([str(tmp_path), "--select", "THR999"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out

    def test_statistics_footer(self, tmp_path, capsys):
        path = _write(tmp_path, "pkg/bad.py", BAD)
        assert main([str(path), "--statistics"]) == 1
        assert "THR003" in capsys.readouterr().out


class TestLibraryAPI:
    def test_collect_files_dedupes_and_skips_caches(self, tmp_path):
        a = _write(tmp_path, "pkg/a.py", "X: int = 1\n")
        _write(tmp_path, "pkg/__pycache__/a.py", "X: int = 1\n")
        files = collect_files([tmp_path, a])
        assert files == [a]

    def test_collect_files_rejects_existing_non_python_path(self, tmp_path):
        readme = _write(tmp_path, "pkg/README.md", "# not python\n")
        with pytest.raises(LintError, match="not a Python file"):
            collect_files([readme])

    def test_collect_files_rejects_missing_path(self, tmp_path):
        with pytest.raises(LintError, match="no such file or directory"):
            collect_files([tmp_path / "missing.py"])

    def test_select_rules_unknown_code_raises_repro_error(self):
        with pytest.raises(LintError):
            select_rules(["THR999"])
        assert issubclass(LintError, ReproError)

    def test_syntax_error_is_a_lint_error(self, tmp_path):
        path = _write(tmp_path, "pkg/broken.py", "def f(:\n")
        with pytest.raises(LintError):
            check_paths([path])


class TestRepositoryIsClean:
    """The standing gate: the linter runs clean over the shipped tree."""

    @pytest.mark.parametrize("target", ["src", "benchmarks", "examples"])
    def test_tree_is_clean(self, target):
        violations, files_checked = check_paths([REPO_ROOT / target])
        assert files_checked > 0
        assert violations == [], "\n".join(v.format_text() for v in violations)
