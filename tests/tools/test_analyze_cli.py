"""CLI behaviour of ``thrifty-analyze``, the baseline, and the repo meta-test."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.errors import AnalysisError
from repro.tools.analyze import (
    AnalyzeConfig,
    all_passes,
    analyze_package,
    apply_baseline,
    load_baseline,
    main,
    stale_entries,
    write_baseline,
)

from .test_analyze_graph import make_package

REPO_ROOT = Path(__file__).resolve().parents[2]

LEAKY = {
    "service.py": """
    from .solver import plan

    class Replay:
        def run(self):
            return plan()
    """,
    "solver.py": """
    import time

    def plan():
        return time.perf_counter()
    """,
}

CLEAN = {"service.py": "class Replay:\n    def run(self):\n        return 1\n"}


def cli(pkg: Path, *args: str) -> int:
    return main([str(pkg), "--entry", "service.", *args])


class TestCLI:
    def test_exit_zero_on_clean_package(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, CLEAN)
        assert cli(pkg) == 0
        captured = capsys.readouterr()
        assert "clean" in captured.out
        assert "skipping the THRA105" in captured.err  # no docs/API.md here

    def test_exit_one_with_text_report_and_chain(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        assert cli(pkg) == 1
        out = capsys.readouterr().out
        assert "THRA101" in out
        assert "via Replay.run -> solver.plan -> time.perf_counter" in out

    def test_json_report_carries_fingerprints(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        assert cli(pkg, "--format", "json") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        (violation,) = doc["violations"]
        assert violation["code"] == "THRA101"
        assert violation["fingerprint"] == (
            "THRA101::app/solver.py::solver.plan::time.perf_counter"
        )

    def test_select_and_ignore_restrict_passes(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        assert cli(pkg, "--select", "THRA102,THRA103") == 0
        assert cli(pkg, "--ignore", "THRA101") == 0
        assert cli(pkg, "--select", "THRA101") == 1

    def test_unknown_pass_code_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, CLEAN)
        assert cli(pkg, "--select", "THRA999") == 2
        assert "THRA999" in capsys.readouterr().err

    def test_missing_package_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path / "nowhere")]) == 2

    def test_list_passes(self, capsys):
        assert main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        for analysis_pass in all_passes():
            assert analysis_pass.code in out

    def test_statistics_footer(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        assert cli(pkg, "--statistics") == 1
        assert "THRA101" in capsys.readouterr().out

    def test_explicit_api_doc_must_exist(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, CLEAN)
        assert cli(pkg, "--api-doc", str(tmp_path / "missing.md")) == 2


class TestBaselineCLI:
    def test_write_then_apply_roundtrip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        assert cli(pkg, "--write-baseline") == 0
        baseline = tmp_path / "thrifty-analyze-baseline.txt"
        assert "TODO: justify" in baseline.read_text()
        capsys.readouterr()
        assert cli(pkg) == 0  # default baseline picked up, finding accepted
        assert "clean" in capsys.readouterr().out

    def test_rewrite_preserves_existing_justifications(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        assert cli(pkg, "--write-baseline") == 0
        baseline = tmp_path / "thrifty-analyze-baseline.txt"
        edited = baseline.read_text().replace("TODO: justify this finding", "measured on purpose")
        baseline.write_text(edited)
        assert cli(pkg, "--write-baseline") == 0
        assert "measured on purpose" in baseline.read_text()

    def test_stale_entry_warns_but_passes(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        assert cli(pkg, "--write-baseline") == 0
        (pkg / "solver.py").write_text("def plan():\n    return 1\n")
        capsys.readouterr()
        assert cli(pkg) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_missing_justification_is_an_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, LEAKY)
        baseline = tmp_path / "thrifty-analyze-baseline.txt"
        baseline.write_text(
            "THRA101::app/solver.py::solver.plan::time.perf_counter\n"
        )
        assert cli(pkg) == 2
        assert "justification is mandatory" in capsys.readouterr().err

    def test_explicit_missing_baseline_is_an_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        pkg = make_package(tmp_path, CLEAN)
        assert cli(pkg, "--baseline", str(tmp_path / "nowhere.txt")) == 2


class TestBaselineLibrary:
    def test_load_rejects_duplicates(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("FP::a::b::c | one\nFP::a::b::c | two\n")
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_comments_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("# header\n\nFP::a::b::c | fine\n")
        assert load_baseline(path) == {"FP::a::b::c": "fine"}

    def test_apply_and_stale(self, tmp_path):
        pkg = make_package(tmp_path, LEAKY)
        findings = analyze_package(pkg, AnalyzeConfig(entry_prefixes=("service.",)))
        fingerprint = findings[0].fingerprint
        baseline = {fingerprint: "ok", "GONE::x::y::z": "old"}
        new, used = apply_baseline(findings, baseline)
        assert new == []
        assert used == {fingerprint}
        assert stale_entries(baseline, used) == ["GONE::x::y::z"]

    def test_write_baseline_is_loadable(self, tmp_path):
        pkg = make_package(tmp_path, LEAKY)
        findings = analyze_package(pkg, AnalyzeConfig(entry_prefixes=("service.",)))
        path = tmp_path / "baseline.txt"
        write_baseline(path, findings, {})
        loaded = load_baseline(path)
        assert set(loaded) == {f.fingerprint for f in findings}


class TestRepositoryIsClean:
    """The standing gate: the analyzer runs clean over the shipped tree."""

    def test_tree_is_clean_modulo_baseline(self):
        config = AnalyzeConfig(api_doc=REPO_ROOT / "docs" / "API.md")
        findings = analyze_package(REPO_ROOT / "src" / "repro", config)
        baseline = load_baseline(REPO_ROOT / "thrifty-analyze-baseline.txt")
        new, used = apply_baseline(findings, baseline)
        assert new == [], "\n".join(f.format_text() for f in new)
        assert stale_entries(baseline, used) == []

    def test_shipped_baseline_entries_are_justified(self):
        baseline = load_baseline(REPO_ROOT / "thrifty-analyze-baseline.txt")
        assert baseline, "expected the three accepted THRA101 findings"
        for fingerprint, justification in baseline.items():
            assert "TODO" not in justification, fingerprint
