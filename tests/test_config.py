"""Configuration validation tests (Table 7.1 parameters)."""

import pytest

from repro.config import (
    DATA_GB_PER_NODE,
    EvaluationConfig,
    LogGenerationConfig,
    PAPER_EPOCH_SIZES,
    PAPER_NODE_SIZES,
    PAPER_REPLICATION_FACTORS,
    PAPER_SLA_LEVELS,
    PAPER_TENANT_COUNTS,
    PAPER_THETAS,
    validate_node_sizes,
)
from repro.errors import ConfigurationError


class TestPaperConstants:
    def test_table_7_1_ranges(self):
        assert PAPER_EPOCH_SIZES == (0.1, 1.0, 10.0, 30.0, 90.0, 600.0, 1800.0)
        assert PAPER_TENANT_COUNTS == (1000, 5000, 10000)
        assert PAPER_THETAS == (0.1, 0.2, 0.5, 0.8, 0.99)
        assert PAPER_REPLICATION_FACTORS == (1, 2, 3, 4)
        assert PAPER_SLA_LEVELS == (95.0, 99.0, 99.9, 99.99)

    def test_node_size_menu(self):
        # §7.1: tenants request 2/4/8/16/32-node MPPDBs at 100 GB per node.
        assert PAPER_NODE_SIZES == (2, 4, 8, 16, 32)
        assert DATA_GB_PER_NODE == 100.0


class TestEvaluationConfig:
    def test_defaults_match_paper(self):
        config = EvaluationConfig()
        assert config.num_tenants == 5000
        assert config.theta == 0.8
        assert config.replication_factor == 3
        assert config.sla_percent == 99.9

    def test_sla_fraction(self):
        assert EvaluationConfig(sla_percent=99.9).sla_fraction == pytest.approx(0.999)

    def test_data_size_follows_nodes(self):
        config = EvaluationConfig()
        assert config.data_gb_for_nodes(2) == 200.0
        assert config.data_gb_for_nodes(32) == 3200.0

    def test_scaled_override(self):
        config = EvaluationConfig().scaled(num_tenants=10)
        assert config.num_tenants == 10
        assert config.theta == 0.8

    @pytest.mark.parametrize(
        "field,value",
        [
            ("epoch_size_s", 0.0),
            ("num_tenants", 0),
            ("theta", 0.0),
            ("theta", 1.0),
            ("replication_factor", 0),
            ("sla_percent", 0.0),
            ("sla_percent", 101.0),
            ("node_sizes", ()),
            ("node_sizes", (0, 2)),
            ("node_sizes", (2, 2)),
            ("data_gb_per_node", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(**{field: value})

    def test_data_for_invalid_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig().data_gb_for_nodes(0)


class TestLogGenerationConfig:
    def test_defaults_match_paper(self):
        logs = LogGenerationConfig()
        assert logs.max_users == 5
        assert logs.max_batch == 10
        assert logs.min_think_s == 3.0
        assert logs.max_think_s == 600.0
        assert logs.session_hours == 3.0
        assert logs.horizon_days == 30
        assert logs.tz_offsets_hours == (0, 3, 5, 8, 16, 17, 19)

    def test_horizon_has_spillover_day(self):
        logs = LogGenerationConfig(horizon_days=7)
        assert logs.horizon_seconds == 8 * 24 * 3600.0

    def test_north_america_variant(self):
        assert LogGenerationConfig().north_america_only().tz_offsets_hours == (0, 3)

    def test_no_lunch_variant(self):
        assert LogGenerationConfig().without_lunch().include_lunch is False

    def test_single_timezone_variant(self):
        assert LogGenerationConfig().single_timezone().tz_offsets_hours == (0,)

    def test_variants_compose(self):
        logs = LogGenerationConfig().single_timezone().without_lunch()
        assert logs.tz_offsets_hours == (0,)
        assert logs.include_lunch is False

    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_users", 0),
            ("max_batch", 0),
            ("min_think_s", -1.0),
            ("session_hours", 0.0),
            ("horizon_days", 0),
            ("workdays_per_week", 8),
            ("holiday_weekdays", -1),
            ("tz_offsets_hours", ()),
            ("tz_offsets_hours", (25,)),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            LogGenerationConfig(**{field: value})

    def test_think_range_order_enforced(self):
        with pytest.raises(ConfigurationError):
            LogGenerationConfig(min_think_s=100.0, max_think_s=10.0)


class TestValidateNodeSizes:
    def test_sorts_and_dedupes(self):
        assert validate_node_sizes([8, 2, 4, 2]) == (2, 4, 8)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_node_sizes([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_node_sizes([0, 2])
