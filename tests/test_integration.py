"""Cross-module integration tests.

These exercise full paths through the system that unit tests cover only in
pieces: generation -> discretization -> grouping -> TDD -> deployment ->
replay, plus failure handling across the cluster/provisioning boundary.
"""

import numpy as np
import pytest

from repro.cluster.failures import FailureInjector
from repro.cluster.pool import MachinePool
from repro.core.advisor import DeploymentAdvisor
from repro.core.master import DeploymentMaster
from repro.core.routing import TDDRouter
from repro.core.service import ThriftyService
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.workload.activity import ActivityMatrix
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator
from tests.conftest import tiny_config


class TestGuaranteeOne:
    """Guarantee 1 end to end: the grouping's promise survives the replay.

    If the tenants behave exactly as their history (we replay the very
    logs the plan was computed from), then for at least P% of time at most
    R tenants are concurrently active per group — so with A = R MPPDBs the
    router can serve nearly every query on a dedicated instance.
    """

    @pytest.fixture(scope="class")
    def outcome(self):
        config = tiny_config(num_tenants=30, seed=21)
        library = SessionLogGenerator(config, sessions_per_size=3).generate()
        workload = MultiTenantLogComposer(config, library).compose()
        service = ThriftyService(config, scaling="disabled")
        advice = service.deploy(workload)
        report = service.replay(until=workload.horizon_s)
        return config, advice, report

    def test_sla_met_close_to_p(self, outcome):
        config, advice, report = outcome
        # Time-based guarantee P = 99.9%; query-based outcomes concentrate
        # in busy periods, so allow slack — but the vast majority of
        # queries must meet their pre-consolidation latency.
        assert report.sla.fraction_met > 0.97

    def test_group_concurrency_respects_plan(self, outcome):
        config, advice, report = outcome
        # Each group's audited max concurrency matches what the plan
        # promised (TTP >= P at R).
        for group in advice.grouping.groups:
            assert group.ttp + 1e-12 >= config.sla_fraction


class TestEpochConsistency:
    def test_matrix_agrees_with_logs_at_scale(self):
        config = tiny_config(num_tenants=12, seed=31)
        library = SessionLogGenerator(config, sessions_per_size=2).generate()
        workload = MultiTenantLogComposer(config, library).compose()
        matrix = ActivityMatrix.from_workload(workload, 30.0)
        for item in matrix.items:
            log = workload.tenant_log(item.tenant_id)
            busy = log.total_busy_seconds()
            # Epoch-count x size bounds total busy time from above.
            assert item.active_epoch_count * 30.0 >= busy - 1e-6


class TestNodeFailureRecovery:
    def test_failed_node_replaced_and_instance_keeps_serving(self):
        # Ch. 4.4: node failure is handled by the MPPDB staying online;
        # Thrifty starts a replacement node.
        sim = Simulator()
        pool = MachinePool(12)
        provisioner = Provisioner(sim, pool)
        config = tiny_config(num_tenants=6, seed=41)
        library = SessionLogGenerator(config, sessions_per_size=2).generate()
        workload = MultiTenantLogComposer(config, library).compose()
        advice = DeploymentAdvisor(config).plan_from_workload(workload)
        master = DeploymentMaster(provisioner)
        deployed = master.deploy_group(advice.plan.groups[0], instant=True)
        instance = deployed.instances[0]
        injector = FailureInjector(pool, sim, mtbf_s=1e9, rng=np.random.default_rng(0))
        injector.on_failure(
            lambda f: pool.replace_failed(pool.node(f.node_id), f.owner)
        )
        victim = instance.node_ids[0]
        injector.inject_now(victim)
        # The MPPDB stays online (R4's "stay online even with node failure")
        # and a replacement node is assigned to the same instance.
        assert instance.is_ready
        owners = pool.owners()[instance.name]
        assert len(owners) == instance.parallelism
        assert victim not in owners
        # Routing still works.
        router = TDDRouter(deployed.instances)
        tenant_id = deployed.deployment.placement.tenant_ids[0]
        assert router.route(tenant_id) in deployed.instances


class TestDeterminismEndToEnd:
    def test_same_seed_same_plan(self):
        def run():
            config = tiny_config(num_tenants=25, seed=77)
            library = SessionLogGenerator(config, sessions_per_size=2).generate()
            workload = MultiTenantLogComposer(config, library).compose()
            advice = DeploymentAdvisor(config).plan_from_workload(workload)
            return [
                (g.group_name, tuple(g.placement.tenant_ids)) for g in advice.plan
            ]

        assert run() == run()

    def test_different_seed_different_plan(self):
        def run(seed):
            config = tiny_config(num_tenants=25, seed=seed)
            library = SessionLogGenerator(config, sessions_per_size=2).generate()
            workload = MultiTenantLogComposer(config, library).compose()
            advice = DeploymentAdvisor(config).plan_from_workload(workload)
            return advice.plan.total_nodes_used

        # Different seeds draw different tenant mixes; node usage almost
        # surely differs (they could coincide, so compare weakly).
        outcomes = {run(seed) for seed in (1, 2, 3)}
        assert len(outcomes) >= 1  # smoke: at minimum it runs


class TestHigherActiveRatioEndToEnd:
    def test_squeezed_workload_consolidates_worse(self):
        base = tiny_config(num_tenants=40, seed=51)
        library = SessionLogGenerator(base, sessions_per_size=3).generate()
        spread = MultiTenantLogComposer(base, library).compose()
        squeezed_config = base.scaled(
            logs=base.logs.single_timezone().without_lunch()
        )
        squeezed = MultiTenantLogComposer(squeezed_config, library).compose()
        advisor = DeploymentAdvisor(base)
        eff_spread = advisor.plan_from_workload(spread).plan.consolidation_effectiveness
        eff_squeezed = advisor.plan_from_workload(squeezed).plan.consolidation_effectiveness
        assert eff_squeezed < eff_spread
