"""ResultMerger: canonical ordering, timing sums, sink recombination."""

from __future__ import annotations

import random

import pytest

from repro.errors import ParallelError
from repro.obs.sink import MetricSample, ObsEvent
from repro.parallel import MergedResult, ResultMerger, ShardResult


def make_result(shard_id, value=None, attempt=0, elapsed=0.1, timings=(), metrics=()):
    return ShardResult(
        shard_id=shard_id,
        task="repro.parallel.tasks:probe",
        value=value if value is not None else [shard_id],
        attempt=attempt,
        elapsed_s=elapsed,
        timings=tuple(timings),
        metrics=tuple(metrics),
    )


def sample(shard_id, name="m"):
    return MetricSample(
        time=float(shard_id), name=name, kind="gauge", value=1.0,
        labels=(("shard", str(shard_id)),),
    )


class TestOrdering:
    def test_out_of_order_completions_merge_in_shard_order(self):
        results = [make_result(i, value=[f"v{i}"]) for i in range(6)]
        shuffled = list(results)
        random.Random(3).shuffle(shuffled)
        assert [r.shard_id for r in shuffled] != [0, 1, 2, 3, 4, 5]
        merged = ResultMerger().merge(shuffled)
        assert merged.values == (["v0"], ["v1"], ["v2"], ["v3"], ["v4"], ["v5"])
        assert merged.shard_count == 6

    def test_sink_records_follow_shard_order_not_arrival_order(self):
        results = [
            make_result(2, metrics=[sample(2)]),
            make_result(0, metrics=[sample(0)]),
            make_result(1, metrics=[sample(1)]),
        ]
        merged = ResultMerger().merge(results)
        assert [m.time for m in merged.sink.metrics] == [0.0, 1.0, 2.0]

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ParallelError):
            ResultMerger().merge([make_result(0), make_result(0)])


class TestAggregation:
    def test_timings_sum_by_name(self):
        results = [
            make_result(0, timings=[("solve_s", 1.0), ("io_s", 0.5)]),
            make_result(1, timings=[("solve_s", 2.0)]),
        ]
        merged = ResultMerger().merge(results)
        assert merged.timings == {"solve_s": 3.0, "io_s": 0.5}

    def test_attempts_and_elapsed_accumulate(self):
        results = [make_result(0, attempt=1, elapsed=0.2), make_result(1, elapsed=0.3)]
        merged = ResultMerger().merge(results)
        assert merged.attempts == 3  # (1 retry + 1) + 1
        assert merged.elapsed_s == pytest.approx(0.5)

    def test_events_concatenate(self):
        results = [
            make_result(1, metrics=[]),
            make_result(0, metrics=[]),
        ]
        results[0] = ShardResult(
            shard_id=1, task="t:x", value=[], events=(ObsEvent(0.0, "e1", ()),)
        )
        merged = ResultMerger().merge(results)
        assert [e.kind for e in merged.sink.events] == ["e1"]


class TestFlat:
    def test_flat_concatenates_sequences(self):
        merged = ResultMerger().merge(
            [make_result(1, value=[3, 4]), make_result(0, value=[1, 2])]
        )
        assert merged.flat() == [1, 2, 3, 4]

    def test_flat_rejects_scalar_values(self):
        merged = MergedResult(values=(1, 2))
        with pytest.raises(ParallelError):
            merged.flat()
