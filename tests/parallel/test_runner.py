"""ProcessPoolRunner: serial fallback, worker-count equivalence, faults.

The pool tests spawn real worker processes; payloads are kept tiny so
each test stays in the low seconds even on a single-core machine.
"""

from __future__ import annotations

import time

import pytest

from repro.core.fault import RetryPolicy
from repro.errors import ParallelError, ShardFailedError
from repro.parallel import ProcessPoolRunner, ResultMerger, ShardPlanner
from repro.parallel.tasks import _probe

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)
ONE_SHOT = RetryPolicy(max_attempts=1, base_delay_s=0.0, max_delay_s=0.0)


def probe_shards(n, sleep_s=0.0, fail_below_attempt=0, master_seed=13):
    planner = ShardPlanner(master_seed=master_seed)
    return planner.plan(
        _probe, [(sleep_s, fail_below_attempt, f"p{i}") for i in range(n)]
    )


class TestValidation:
    def test_rejects_negative_workers(self):
        with pytest.raises(ParallelError):
            ProcessPoolRunner(max_workers=-1)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ParallelError):
            ProcessPoolRunner(timeout_s=0.0)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ParallelError):
            ProcessPoolRunner(start_method="threads")

    def test_rejects_duplicate_shard_ids(self):
        specs = probe_shards(2)
        with pytest.raises(ParallelError):
            ProcessPoolRunner().run([specs[0], specs[0]])

    def test_empty_run_returns_empty(self):
        assert ProcessPoolRunner().run([]) == []


class TestSerialFallback:
    def test_runs_in_order_with_derived_draws(self):
        results = ProcessPoolRunner(max_workers=0).run(probe_shards(4))
        assert [r.shard_id for r in results] == [0, 1, 2, 3]
        draws = [r.value["draw"] for r in results]
        assert len(set(draws)) == 4

    def test_serial_equals_pool(self):
        """The workers=0 fallback and a real pool agree value-for-value."""
        serial = ProcessPoolRunner(max_workers=0).run(probe_shards(4))
        pooled = ProcessPoolRunner(max_workers=2).run(probe_shards(4))
        assert [r.value for r in serial] == [r.value for r in pooled]


class TestWorkerCountEquivalence:
    """Satellite: sweep results are bit-identical at any worker count."""

    @pytest.fixture(scope="class")
    def sweep_runs(self):
        from repro.analysis.sweeps import BenchScale, sweep_parameter

        scale = BenchScale(
            num_tenants=40, horizon_days=7, holiday_weekdays=0, sessions_per_size=4, seed=7
        )
        values = [10.0, 60.0, 600.0]
        return {
            workers: sweep_parameter("epoch_size_s", values, scale=scale, workers=workers)
            for workers in (0, 2, 8)
        }

    def test_row_identities_match_across_worker_counts(self, sweep_runs):
        serial = [row.identity() for row in sweep_runs[0]]
        assert [row.identity() for row in sweep_runs[2]] == serial
        assert [row.identity() for row in sweep_runs[8]] == serial

    def test_rows_come_back_in_value_order(self, sweep_runs):
        for rows in sweep_runs.values():
            assert [row.value for row in rows] == [10.0, 60.0, 600.0]

    def test_rows_are_nontrivial(self, sweep_runs):
        for row in sweep_runs[0]:
            # Tiny scales can go negative (R=3 replication overhead beats
            # consolidation at 40 tenants); the point is the value is real.
            assert -1.0 <= row.two_step_effectiveness <= 1.0
            assert row.extras["num_epochs"] > 0
            assert row.two_step_group_size >= 1.0


class TestRetry:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_fail_once_then_succeed(self, workers):
        specs = probe_shards(2, fail_below_attempt=1)
        runner = ProcessPoolRunner(max_workers=workers, retry_policy=FAST_RETRY)
        results = runner.run(specs)
        assert [r.attempt for r in results] == [1, 1]
        # The retried attempt reproduces the original stream bit-for-bit.
        clean = ProcessPoolRunner(max_workers=0, retry_policy=FAST_RETRY).run(
            probe_shards(2)
        )
        assert [r.value["draw"] for r in results] == [r.value["draw"] for r in clean]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_exhaustion_raises_typed_error_with_spec(self, workers):
        specs = probe_shards(1, fail_below_attempt=99)
        runner = ProcessPoolRunner(max_workers=workers, retry_policy=FAST_RETRY)
        with pytest.raises(ShardFailedError) as err:
            runner.run(specs)
        assert err.value.attempts == 2
        assert err.value.spec is not None
        assert err.value.spec.shard_id == 0
        assert err.value.spec.task == specs[0].task

    def test_shard_failed_error_is_a_parallel_error(self):
        assert issubclass(ShardFailedError, ParallelError)


class TestTimeout:
    def test_stuck_shard_times_out_and_raises(self):
        specs = probe_shards(1, sleep_s=30.0)
        runner = ProcessPoolRunner(
            max_workers=1, retry_policy=ONE_SHOT, timeout_s=0.25
        )
        started = time.perf_counter()
        with pytest.raises(ShardFailedError) as err:
            runner.run(specs)
        # The runner must not wait out the 30s sleep.
        assert time.perf_counter() - started < 15.0
        assert err.value.attempts == 1
        assert err.value.spec.shard_id == 0

    def test_timeout_spared_when_shards_are_fast(self):
        runner = ProcessPoolRunner(max_workers=2, retry_policy=ONE_SHOT, timeout_s=60.0)
        results = runner.run(probe_shards(2))
        assert len(results) == 2


class TestChaosReplicas:
    """Satellite: chaos-armed parallel replay keeps the fault invariants."""

    @pytest.fixture(scope="class")
    def chaos_runs(self):
        from repro.analysis.sweeps import BenchScale
        from repro.parallel import run_replicas

        scale = BenchScale(
            num_tenants=30, horizon_days=7, holiday_weekdays=0, sessions_per_size=4, seed=11
        )
        options = dict(replay_days=0.25, chaos_mtbf=3600.0, observe=True)
        return {
            workers: run_replicas(
                scale, 2, runner=ProcessPoolRunner(max_workers=workers), **options
            )
            for workers in (0, 2)
        }

    def test_serial_and_parallel_replicas_agree(self, chaos_runs):
        assert chaos_runs[0].values == chaos_runs[2].values

    def test_fault_invariants_hold(self, chaos_runs):
        for summary in chaos_runs[0].values:
            assert summary["chaos_armed"] >= 1.0
            assert summary["node_failures"] >= 1.0
            assert summary["queries_failed"] >= 0.0
            assert 0.0 <= summary["sla_fraction_met"] <= 1.0
            # Failovers only happen in response to failures.
            if summary["failovers"]:
                assert summary["node_failures"] >= 1.0

    def test_replicas_diverge_from_each_other(self, chaos_runs):
        first, second = chaos_runs[0].values
        assert first["seed"] != second["seed"]

    def test_observability_rides_back_per_replica(self, chaos_runs):
        merged = chaos_runs[2]
        assert merged.shard_count == 2
        assert len(merged.sink.metrics) > 0
        assert merged.timings["replay_s"] > 0.0


def test_merged_sweep_timings_are_per_shard_sums():
    """Satellite: solver time aggregates per-shard perf_counter, not pool wall."""
    from repro.analysis.sweeps import BenchScale
    from repro.parallel import run_sweep

    scale = BenchScale(
        num_tenants=40, horizon_days=7, holiday_weekdays=0, sessions_per_size=4, seed=7
    )
    merged = run_sweep("epoch_size_s", [30.0, 300.0], scale)
    assert set(merged.timings) >= {"two_step_s", "ffd_s", "workload_s"}
    rows = list(merged.values)
    expected_two_step = sum(r.two_step_seconds for r in rows)
    assert merged.timings["two_step_s"] == pytest.approx(expected_two_step)
    # Pool wall clock (elapsed_s) includes workload build + both solvers,
    # so it must dominate the solver-only aggregate.
    assert merged.elapsed_s >= merged.timings["two_step_s"]
    assert ResultMerger().merge([]).shard_count == 0
