"""Solver sharding: parallel two-step packing reproduces the serial result."""

from __future__ import annotations

import pytest

from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import two_step_grouping
from repro.parallel import ProcessPoolRunner, ResultMerger, pack_shards


@pytest.fixture(scope="module")
def problem(matrix):
    return LIVBPwFCProblem.from_activity_matrix(matrix, replication_factor=3, sla_percent=99.0)


def test_pack_shards_one_per_node_size_class(problem):
    specs = pack_shards(problem)
    sizes = {item.nodes_requested for item in problem.items}
    assert len(specs) == len(sizes)
    assert [s.shard_id for s in specs] == list(range(len(sizes)))


@pytest.mark.parametrize("workers", [0, 2])
def test_parallel_grouping_matches_serial(problem, workers):
    serial = two_step_grouping(problem)
    parallel = two_step_grouping(problem, runner=ProcessPoolRunner(max_workers=workers))
    assert parallel.groups == serial.groups
    assert parallel.solver == serial.solver


def test_parallel_solve_seconds_is_shard_pack_aggregate(problem):
    runner = ProcessPoolRunner(max_workers=0)
    merged = ResultMerger().merge(runner.run(pack_shards(problem)))
    solution = two_step_grouping(problem, runner=runner)
    assert solution.solve_seconds >= 0.0
    assert merged.timings["pack_s"] > 0.0
    assert [tuple(g) for g in merged.flat()] == [g.tenant_ids for g in solution.groups]
