"""Shard specs, task registry, planner, and in-process execution."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ParallelError
from repro.parallel import ShardPlanner, ShardSpec, execute_shard, resolve_task, task_ref
from repro.parallel.tasks import _probe
from repro.rng import derive_seed


def probe_spec(shard_id=0, num_shards=1, master_seed=7, payload=(), attempt=0):
    return ShardSpec(
        task=task_ref(_probe),
        shard_id=shard_id,
        num_shards=num_shards,
        master_seed=master_seed,
        payload=payload,
        attempt=attempt,
    )


class TestShardSpec:
    def test_seed_is_derived_from_master_and_shard_id(self):
        spec = probe_spec(shard_id=3, num_shards=5, master_seed=42)
        assert spec.seed == derive_seed(42, "shard", 3)

    def test_sibling_shards_get_distinct_seeds(self):
        seeds = {probe_spec(shard_id=i, num_shards=8).seed for i in range(8)}
        assert len(seeds) == 8

    def test_retry_increments_attempt_but_keeps_seed(self):
        spec = probe_spec(shard_id=2, num_shards=4)
        retried = spec.retry()
        assert retried.attempt == spec.attempt + 1
        assert retried.shard_id == spec.shard_id
        assert retried.seed == spec.seed

    def test_rejects_out_of_range_shard_id(self):
        with pytest.raises(ParallelError):
            probe_spec(shard_id=3, num_shards=3)
        with pytest.raises(ParallelError):
            probe_spec(shard_id=-1, num_shards=3)

    def test_spec_is_picklable(self):
        spec = probe_spec(shard_id=1, num_shards=2, payload=(1.5, "x"))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.seed == spec.seed


class TestTaskRegistry:
    def test_ref_round_trips_through_resolve(self):
        ref = task_ref(_probe)
        assert ":" in ref
        assert resolve_task(ref) is _probe

    def test_unknown_ref_raises(self):
        with pytest.raises(ParallelError):
            resolve_task("repro.parallel.tasks:no_such_task")

    def test_unimportable_module_raises(self):
        with pytest.raises(ParallelError):
            resolve_task("repro.no_such_module:probe")


class TestShardPlanner:
    def test_plan_orders_shards_by_payload(self):
        planner = ShardPlanner(master_seed=11)
        specs = planner.plan(_probe, [(0.0, 0, "a"), (0.0, 0, "b"), (0.0, 0, "c")])
        assert [s.shard_id for s in specs] == [0, 1, 2]
        assert all(s.num_shards == 3 for s in specs)
        assert [s.payload[2] for s in specs] == ["a", "b", "c"]
        assert all(s.master_seed == 11 for s in specs)

    def test_empty_plan_is_empty(self):
        assert ShardPlanner(master_seed=1).plan(_probe, []) == []

    def test_unregistered_function_raises(self):
        with pytest.raises(ParallelError):
            ShardPlanner(master_seed=1).plan(lambda ctx: None, [()])

    def test_replica_seeds_are_distinct_and_stable(self):
        planner = ShardPlanner(master_seed=5)
        seeds = planner.replica_seeds(6)
        assert len(set(seeds)) == 6
        assert seeds == ShardPlanner(master_seed=5).replica_seeds(6)
        assert seeds != ShardPlanner(master_seed=6).replica_seeds(6)


class TestExecuteShard:
    def test_returns_result_with_payload_and_timing(self):
        result = execute_shard(probe_spec(payload=(0.0, 0, "hello")))
        assert result.shard_id == 0
        assert result.value["payload"] == "hello"
        assert result.elapsed_s >= 0.0

    def test_rng_draw_depends_only_on_spec_seed(self):
        a = execute_shard(probe_spec(shard_id=1, num_shards=3))
        b = execute_shard(probe_spec(shard_id=1, num_shards=3))
        c = execute_shard(probe_spec(shard_id=2, num_shards=3))
        assert a.value["draw"] == b.value["draw"]
        assert a.value["draw"] != c.value["draw"]

    def test_retried_spec_reproduces_the_same_draw(self):
        spec = probe_spec(shard_id=1, num_shards=2)
        original = execute_shard(spec)
        retried = execute_shard(spec.retry())
        assert retried.attempt == 1
        assert retried.value["draw"] == original.value["draw"]
