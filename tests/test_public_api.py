"""Public-API integrity: every advertised name exists and is importable."""

import importlib

import pytest

_PACKAGES = [
    "repro",
    "repro.simulation",
    "repro.cluster",
    "repro.mppdb",
    "repro.workload",
    "repro.packing",
    "repro.core",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", _PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} is advertised but missing"


@pytest.mark.parametrize("package_name", _PACKAGES)
def test_all_names_unique(package_name):
    package = importlib.import_module(package_name)
    assert len(set(package.__all__)) == len(package.__all__)


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_public_classes_have_docstrings():
    for package_name in _PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"
