"""Experiment driver tests (smoke scale)."""

import pytest

from repro.analysis.sweeps import (
    GROUPING_HEADERS,
    SMOKE_SCALE,
    BenchScale,
    build_workload,
    run_grouping_experiment,
    sweep_parameter,
)
from repro.errors import ReproError


class TestBenchScale:
    def test_config_fields(self):
        scale = BenchScale(num_tenants=50, horizon_days=7)
        config = scale.config()
        assert config.num_tenants == 50
        assert config.logs.horizon_days == 7

    def test_overrides(self):
        config = SMOKE_SCALE.config(replication_factor=2, sla_percent=99.0)
        assert config.replication_factor == 2
        assert config.sla_percent == 99.0


class TestBuildWorkload:
    def test_caching(self):
        config = SMOKE_SCALE.config()
        a = build_workload(config, SMOKE_SCALE.sessions_per_size)
        b = build_workload(config, SMOKE_SCALE.sessions_per_size)
        assert a is b

    def test_different_theta_different_workload(self):
        a = build_workload(SMOKE_SCALE.config(theta=0.2), SMOKE_SCALE.sessions_per_size)
        b = build_workload(SMOKE_SCALE.config(theta=0.8), SMOKE_SCALE.sessions_per_size)
        assert a is not b


class TestRunGroupingExperiment:
    def test_row_fields(self):
        config = SMOKE_SCALE.config()
        workload = build_workload(config, SMOKE_SCALE.sessions_per_size)
        row = run_grouping_experiment(
            workload,
            epoch_size=10.0,
            replication_factor=3,
            sla_percent=99.9,
            parameter="smoke",
            value="x",
        )
        assert 0.0 < row.two_step_effectiveness < 1.0
        assert 0.0 < row.ffd_effectiveness < 1.0
        assert row.two_step_group_size >= 1.0
        assert row.two_step_seconds > 0.0
        assert len(row.as_list()) == len(GROUPING_HEADERS)


class TestSweep:
    def test_sweep_replication_factor(self):
        rows = sweep_parameter("replication_factor", [1, 3], scale=SMOKE_SCALE)
        assert [r.value for r in rows] == [1, 3]
        # Figure 7.4b: larger R packs more tenants per group.
        assert rows[1].two_step_group_size > rows[0].two_step_group_size

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ReproError):
            sweep_parameter("flux_capacitor", [1])
