"""Effectiveness analysis helper tests."""

import pytest

from repro.analysis.effectiveness import (
    compare_solutions,
    effectiveness_by_size_class,
)
from repro.packing.ffd import ffd_grouping
from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import two_step_grouping
from tests.conftest import make_item


@pytest.fixture
def problem():
    items = [make_item(i, 2 if i < 6 else 8, [i % 4]) for i in range(10)]
    return LIVBPwFCProblem(
        items=tuple(items), num_epochs=10, replication_factor=3, sla_fraction=0.9
    )


class TestCompareSolutions:
    def test_comparison_fields(self, problem):
        baseline = ffd_grouping(problem)
        challenger = two_step_grouping(problem)
        comparison = compare_solutions(baseline, challenger)
        assert comparison.baseline_solver.startswith("ffd")
        assert comparison.challenger_solver == "2-step"
        assert comparison.nodes_requested == problem.total_nodes_requested()
        assert comparison.extra_nodes_saved == (
            baseline.total_nodes_used - challenger.total_nodes_used
        )

    def test_savings_points(self, problem):
        baseline = ffd_grouping(problem)
        challenger = two_step_grouping(problem)
        comparison = compare_solutions(baseline, challenger)
        expected = 100.0 * (
            challenger.consolidation_effectiveness - baseline.consolidation_effectiveness
        )
        assert comparison.extra_savings_points == pytest.approx(expected)


class TestSizeClassBreakdown:
    def test_classes_cover_all_groups(self, problem):
        solution = two_step_grouping(problem)
        classes = effectiveness_by_size_class(solution)
        assert sum(c["groups"] for c in classes.values()) == len(solution.groups)
        assert sum(c["tenants"] for c in classes.values()) == len(problem.items)

    def test_homogeneous_classes_for_two_step(self, problem):
        solution = two_step_grouping(problem)
        classes = effectiveness_by_size_class(solution)
        assert set(classes) <= {2, 8}
        for size, stats in classes.items():
            # For homogeneous groups, requested = tenants * size.
            assert stats["nodes_requested"] == stats["tenants"] * size

    def test_effectiveness_consistent(self, problem):
        solution = two_step_grouping(problem)
        classes = effectiveness_by_size_class(solution)
        used = sum(c["nodes_used"] for c in classes.values())
        assert used == solution.total_nodes_used
