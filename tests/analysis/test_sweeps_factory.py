"""Sweep-driver edge cases: custom workload factories and row math."""

import pytest

from repro.analysis.sweeps import (
    SMOKE_SCALE,
    GroupingRow,
    build_workload,
    sweep_parameter,
)


class TestWorkloadFactory:
    def test_factory_overrides_cache(self):
        calls = []

        def factory(config):
            calls.append(config.replication_factor)
            return build_workload(config, SMOKE_SCALE.sessions_per_size)

        rows = sweep_parameter(
            "replication_factor", [1, 2], scale=SMOKE_SCALE, workload_factory=factory
        )
        assert calls == [1, 2]
        assert [r.value for r in rows] == [1, 2]


class TestGroupingRow:
    def _row(self, two_step=0.8, ffd=0.7):
        return GroupingRow(
            parameter="p",
            value=1,
            active_ratio=0.1,
            two_step_effectiveness=two_step,
            two_step_group_size=10.0,
            two_step_seconds=1.0,
            ffd_effectiveness=ffd,
            ffd_group_size=9.0,
            ffd_seconds=0.5,
        )

    def test_advantage_points(self):
        assert self._row().advantage_points == pytest.approx(10.0)
        assert self._row(0.7, 0.8).advantage_points == pytest.approx(-10.0)

    def test_as_list_rounding(self):
        row = self._row(0.81234, 0.7)
        values = row.as_list()
        assert values[0] == 1
        assert values[2] == 0.8123
