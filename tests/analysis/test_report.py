"""Text report rendering tests."""

import pytest

from repro.analysis.report import ascii_series, format_table
from repro.errors import ReproError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "value"], [[1, 2.5], [100, 0.123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["x"], [[1]], title="Figure 7.1a")
        assert text.startswith("Figure 7.1a")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestAsciiSeries:
    def test_renders_extremes(self):
        text = ascii_series([0.0, 0.5, 1.0])
        assert "min=0" in text
        assert "max=1" in text

    def test_constant_series(self):
        text = ascii_series([2.0, 2.0, 2.0])
        assert "min=2" in text and "max=2" in text

    def test_downsampling_preserves_spikes(self):
        values = [0.0] * 500
        values[250] = 10.0
        text = ascii_series(values, width=50)
        assert "max=10" in text
        body = text[text.index("[") + 1: text.index("]")]
        assert "@" in body  # the spike survives bucketing

    def test_label(self):
        assert ascii_series([1.0], label="RT-TTP").startswith("RT-TTP ")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_series([])
