"""Workload validation tests."""

import pytest

from repro.analysis.validation import validate_workload
from repro.errors import WorkloadError
from repro.workload.composer import ComposedWorkload, SessionPick
from repro.workload.tenant import TenantSpec


class TestHealthyWorkload:
    def test_generated_workload_passes(self, workload):
        report = validate_workload(workload)
        assert report.ok, report.warnings
        assert report.tenants == len(workload)
        assert 0.005 <= report.active_ratio_unconditional <= 0.25
        assert report.active_ratio_conditional >= report.active_ratio_unconditional
        assert sum(report.class_counts.values()) == len(workload)
        assert 0.0 < report.mean_daily_busy_hours < 16.0

    def test_strict_mode_passes_silently(self, workload):
        validate_workload(workload, strict=True)


class TestDegenerateWorkloads:
    def _idle_workload(self, library, config):
        tenants = [
            TenantSpec(tenant_id=i, nodes_requested=2, data_gb=200.0)
            for i in range(4)
        ]
        picks = {t.tenant_id: () for t in tenants}
        return ComposedWorkload(tenants, picks, library, horizon_s=7 * 86400.0)

    def test_idle_workload_flagged(self, library, config):
        workload = self._idle_workload(library, config)
        report = validate_workload(workload)
        assert not report.ok
        assert any("never active" in w for w in report.warnings)
        assert any("outside plausible band" in w for w in report.warnings)

    def test_strict_mode_raises(self, library, config):
        workload = self._idle_workload(library, config)
        with pytest.raises(WorkloadError):
            validate_workload(workload, strict=True)

    def test_inverted_size_distribution_flagged(self, library, config):
        # Many huge tenants, one small: clearly not Zipf-shaped.
        tenants = [
            TenantSpec(tenant_id=0, nodes_requested=2, data_gb=200.0)
        ] + [
            TenantSpec(tenant_id=i, nodes_requested=8, data_gb=800.0)
            for i in range(1, 12)
        ]
        picks = {
            t.tenant_id: (
                SessionPick(node_size=t.nodes_requested, session_index=0, shift_s=0.0),
            )
            for t in tenants
        }
        workload = ComposedWorkload(tenants, picks, library, horizon_s=7 * 86400.0)
        report = validate_workload(workload)
        assert any("not Zipf-shaped" in w for w in report.warnings)

    def test_bad_epoch_rejected(self, workload):
        with pytest.raises(WorkloadError):
            validate_workload(workload, epoch_size=0.0)
