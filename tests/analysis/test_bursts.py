"""Burst detection tests (Ch. 5.1 regular-burst exclusion)."""

import pytest

from repro.analysis.bursts import (
    daily_activity_fractions,
    detect_bursts,
    predict_next_burst,
)
from repro.errors import ReproError
from repro.units import DAY, HOUR
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.tenant import TenantSpec


def _log_with_daily_hours(hours_by_day):
    """A log active `hours` contiguous hours on each listed day."""
    spec = TenantSpec(tenant_id=1, nodes_requested=2, data_gb=200.0)
    records = []
    for day, hours in hours_by_day.items():
        records.append(
            QueryRecord(
                submit_time_s=day * DAY + 9 * HOUR,
                latency_s=hours * HOUR,
                template="tpch.q1",
            )
        )
    return TenantLog(spec, records)


class TestDailyFractions:
    def test_single_day(self):
        log = _log_with_daily_hours({0: 6})
        fractions = daily_activity_fractions(log, 3)
        assert fractions[0] == pytest.approx(0.25)
        assert fractions[1] == 0.0

    def test_interval_crossing_midnight(self):
        spec = TenantSpec(tenant_id=1, nodes_requested=2, data_gb=200.0)
        log = TenantLog(
            spec,
            [QueryRecord(submit_time_s=22 * HOUR, latency_s=4 * HOUR, template="q")],
        )
        fractions = daily_activity_fractions(log, 2)
        assert fractions[0] == pytest.approx(2 / 24)
        assert fractions[1] == pytest.approx(2 / 24)

    def test_horizon_validation(self):
        with pytest.raises(ReproError):
            daily_activity_fractions(_log_with_daily_hours({0: 1}), 0)


class TestDetectBursts:
    def test_no_bursts_on_flat_activity(self):
        log = _log_with_daily_hours({d: 2 for d in range(10)})
        profile = detect_bursts(log, 10)
        assert not profile.has_bursts
        assert not profile.is_regular

    def test_single_burst_detected(self):
        hours = {d: 1 for d in range(10)}
        hours[7] = 8  # fiscal crunch
        profile = detect_bursts(_log_with_daily_hours(hours), 10)
        assert profile.burst_days == (7,)
        assert not profile.is_regular  # one burst has no period

    def test_regular_weekly_bursts(self):
        hours = {d: 1 for d in range(28)}
        for d in (6, 13, 20, 27):  # weekly reporting burst
            hours[d] = 8
        profile = detect_bursts(_log_with_daily_hours(hours), 28)
        assert profile.burst_days == (6, 13, 20, 27)
        assert profile.is_regular
        assert profile.period_days == pytest.approx(7.0)

    def test_irregular_bursts_have_no_period(self):
        hours = {d: 1 for d in range(28)}
        for d in (3, 5, 17):
            hours[d] = 8
        profile = detect_bursts(_log_with_daily_hours(hours), 28)
        assert profile.has_bursts
        assert not profile.is_regular

    def test_idle_tenant(self):
        spec = TenantSpec(tenant_id=1, nodes_requested=2, data_gb=200.0)
        profile = detect_bursts(TenantLog(spec, []), 10)
        assert not profile.has_bursts

    def test_threshold_validation(self):
        with pytest.raises(ReproError):
            detect_bursts(_log_with_daily_hours({0: 1}), 10, threshold_ratio=1.0)


class TestPredictNextBurst:
    def _weekly_profile(self):
        hours = {d: 1 for d in range(28)}
        for d in (6, 13, 20, 27):
            hours[d] = 8
        return detect_bursts(_log_with_daily_hours(hours), 28)

    def test_prediction_extends_the_pattern(self):
        profile = self._weekly_profile()
        assert predict_next_burst(profile, after_day=28) == 34
        assert predict_next_burst(profile, after_day=40) == 41

    def test_prediction_within_recorded_history(self):
        profile = self._weekly_profile()
        assert predict_next_burst(profile, after_day=10) == 13

    def test_no_prediction_without_regularity(self):
        hours = {d: 1 for d in range(28)}
        hours[3] = 8
        profile = detect_bursts(_log_with_daily_hours(hours), 28)
        assert predict_next_burst(profile, after_day=10) is None
