"""Re-consolidation cycle tests (Chapter 3 / 5.1)."""

import pytest

from repro.core.advisor import DeploymentAdvisor
from repro.core.service import ThriftyService
from repro.errors import DeploymentError
from repro.workload.activity import ActivityMatrix
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def planned():
    config = tiny_config(num_tenants=36, seed=17)
    library = SessionLogGenerator(config, sessions_per_size=3).generate()
    workload = MultiTenantLogComposer(config, library).compose()
    advisor = DeploymentAdvisor(config)
    advice = advisor.plan_from_workload(workload)
    matrix = ActivityMatrix.from_workload(workload, config.epoch_size_s)
    return config, workload, advisor, advice, matrix


class TestAdvisorReconsolidate:
    def test_affected_groups_regrouped(self, planned):
        config, workload, advisor, advice, matrix = planned
        target = advice.plan.groups[0].group_name
        result, kept = advisor.reconsolidate(
            matrix, advice.plan, affected_groups={target}
        )
        result.plan.summary()
        kept_names = {g.group_name for g in kept}
        assert target not in kept_names
        # All original tenants are still planned exactly once.
        planned_ids = {t for g in result.plan for t in g.placement.tenant_ids}
        original_ids = {t for g in advice.plan for t in g.placement.tenant_ids}
        assert planned_ids == original_ids

    def test_departed_tenants_removed(self, planned):
        config, workload, advisor, advice, matrix = planned
        group = advice.plan.groups[0]
        victim = group.placement.tenant_ids[0]
        result, __ = advisor.reconsolidate(
            matrix, advice.plan, affected_groups=set(), departed=[victim]
        )
        planned_ids = {t for g in result.plan for t in g.placement.tenant_ids}
        assert victim not in planned_ids
        original_ids = {t for g in advice.plan for t in g.placement.tenant_ids}
        assert planned_ids == original_ids - {victim}

    def test_departure_pulls_in_whole_group(self, planned):
        config, workload, advisor, advice, matrix = planned
        group = advice.plan.groups[0]
        victim = group.placement.tenant_ids[0]
        __, kept = advisor.reconsolidate(
            matrix, advice.plan, affected_groups=set(), departed=[victim]
        )
        assert group.group_name not in {g.group_name for g in kept}

    def test_new_groups_satisfy_constraints(self, planned):
        config, workload, advisor, advice, matrix = planned
        target = advice.plan.groups[0].group_name
        result, __ = advisor.reconsolidate(matrix, advice.plan, affected_groups={target})
        result.grouping.validate()
        for group in result.plan:
            assert group.design.num_instances == config.replication_factor

    def test_unknown_group_rejected(self, planned):
        config, workload, advisor, advice, matrix = planned
        with pytest.raises(DeploymentError):
            advisor.reconsolidate(matrix, advice.plan, affected_groups={"nope"})

    def test_empty_pool_rejected(self, planned):
        config, workload, advisor, advice, matrix = planned
        group = advice.plan.groups[0]
        with pytest.raises(DeploymentError):
            advisor.reconsolidate(
                matrix,
                advice.plan,
                affected_groups={group.group_name},
                departed=list(group.placement.tenant_ids),
            )


class TestServiceReconsolidate:
    def _service(self):
        config = tiny_config(num_tenants=24, seed=19)
        library = SessionLogGenerator(config, sessions_per_size=3).generate()
        workload = MultiTenantLogComposer(config, library).compose()
        service = ThriftyService(config, scaling="disabled")
        service.deploy(workload)
        return service

    def test_reconsolidate_after_departure(self):
        service = self._service()
        plan = service.advice.plan
        victim = plan.groups[0].placement.tenant_ids[0]
        old_groups = set(service.master.deployed_groups())
        advice = service.reconsolidate(departed=[victim])
        new_groups = set(service.master.deployed_groups())
        assert plan.groups[0].group_name not in new_groups
        assert any(name.startswith("rg1-") for name in new_groups)
        planned_ids = {t for g in advice.plan for t in g.placement.tenant_ids}
        assert victim not in planned_ids
        assert old_groups != new_groups

    def test_extra_groups_forced(self):
        service = self._service()
        target = service.advice.plan.groups[0].group_name
        advice = service.reconsolidate(extra_groups=[target])
        assert target not in {g.group_name for g in advice.plan}

    def test_nothing_to_do_rejected(self):
        service = self._service()
        with pytest.raises(DeploymentError):
            service.reconsolidate()

    def test_before_deploy_rejected(self):
        service = ThriftyService(tiny_config())
        with pytest.raises(DeploymentError):
            service.reconsolidate(departed=[1])
