"""Group runtime replay tests: routing, SLA accounting, Guarantee 1."""

import pytest

from repro.core.deployment import GroupDeployment
from repro.core.master import DeployedGroup
from repro.core.runtime import GroupRuntime
from repro.core.scaling import LightweightScaling
from repro.core.tdd import design_for_group
from repro.errors import DeploymentError
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.queries import template_by_name
from repro.workload.tenant import TenantSpec


def _deploy(num_tenants=4, nodes=2, num_instances=3, tuning_parallelism=None):
    sim = Simulator()
    provisioner = Provisioner(sim)
    tenants = tuple(
        TenantSpec(tenant_id=i, nodes_requested=nodes, data_gb=nodes * 100.0)
        for i in range(1, num_tenants + 1)
    )
    design, placement = design_for_group(
        "tg0", tenants, num_instances=num_instances, tuning_parallelism=tuning_parallelism
    )
    instances = tuple(
        provisioner.provision(
            parallelism=design.instance_parallelism(i),
            tenants=[t.as_tenant_data() for t in tenants],
            name=name,
            instant=True,
        )
        for i, name in enumerate(design.instance_names())
    )
    deployed = DeployedGroup(
        deployment=GroupDeployment(design=design, placement=placement, tenants=tenants),
        instances=instances,
    )
    return sim, provisioner, deployed, tenants


def _q1_latency(nodes):
    return template_by_name("tpch.q1").dedicated_latency_s(nodes * 100.0, nodes)


def _log(spec, submits):
    baseline = _q1_latency(spec.nodes_requested)
    records = [
        QueryRecord(submit_time_s=t, latency_s=baseline, template="tpch.q1")
        for t in submits
    ]
    return TenantLog(spec, records)


class TestReplayBasics:
    def test_isolated_tenant_meets_sla_exactly(self):
        sim, provisioner, deployed, tenants = _deploy()
        logs = {
            t.tenant_id: _log(t, [100.0 * t.tenant_id] if t.tenant_id == 1 else [])
            for t in tenants
        }
        runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
        report = runtime.run(until=10_000.0)
        assert report.queries_submitted == 1
        assert report.queries_completed == 1
        assert report.sla.fraction_met == 1.0
        assert report.sla.records[0].normalized == pytest.approx(1.0)

    def test_up_to_a_tenants_meet_sla(self):
        # Guarantee 1: with A = 3 instances, three concurrently active
        # tenants each get a dedicated MPPDB and meet their SLA.
        sim, provisioner, deployed, tenants = _deploy(num_tenants=3)
        logs = {t.tenant_id: _log(t, [100.0]) for t in tenants}
        runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
        report = runtime.run(until=10_000.0)
        assert report.queries_completed == 3
        assert report.sla.fraction_met == 1.0
        assert report.overflow_queries == 0

    def test_fourth_tenant_overflows_and_violates(self):
        # A fourth concurrent tenant lands on MPPDB_0 and both tenants
        # there slow down (the §7.5 50 %/80 % delay scenario).
        sim, provisioner, deployed, tenants = _deploy(num_tenants=4)
        logs = {t.tenant_id: _log(t, [100.0]) for t in tenants}
        runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
        report = runtime.run(until=100_000.0)
        assert report.queries_completed == 4
        assert report.overflow_queries == 1
        violations = report.sla.violations()
        assert len(violations) == 2  # the overflow query and its victim
        for violation in violations:
            assert violation.normalized == pytest.approx(2.0)

    def test_oversized_tuning_instance_absorbs_overflow(self):
        # Chapter 6: with U = 2 n, two concurrent linear queries on
        # MPPDB_0 still meet the SLA (point C of Figure 1.1b).
        sim, provisioner, deployed, tenants = _deploy(
            num_tenants=4, nodes=2, tuning_parallelism=4
        )
        logs = {t.tenant_id: _log(t, [100.0]) for t in tenants}
        runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
        report = runtime.run(until=100_000.0)
        assert report.overflow_queries == 1
        assert report.sla.fraction_met == 1.0

    def test_sequential_tenants_all_meet_sla(self):
        # The first consolidation opportunity: non-overlapping tenants
        # never interfere (xT-SEQ in Figure 1.1a).
        sim, provisioner, deployed, tenants = _deploy(num_tenants=4)
        logs = {
            t.tenant_id: _log(t, [t.tenant_id * 1000.0]) for t in tenants
        }
        runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
        report = runtime.run(until=100_000.0)
        assert report.sla.fraction_met == 1.0
        assert report.overflow_queries == 0


class TestMonitoringDuringReplay:
    def test_rt_ttp_sampled(self):
        sim, provisioner, deployed, tenants = _deploy()
        logs = {t.tenant_id: _log(t, [10.0]) for t in tenants}
        runtime = GroupRuntime(
            deployed, logs, sim, provisioner, sla_fraction=0.999, monitor_interval_s=100.0
        )
        report = runtime.run(until=1000.0)
        assert len(report.rt_ttp_samples) == 10
        assert all(0.0 <= v <= 1.0 for __, v in report.rt_ttp_samples)

    def test_monitor_tracks_activity(self):
        sim, provisioner, deployed, tenants = _deploy(num_tenants=2)
        logs = {t.tenant_id: _log(t, [0.0]) for t in tenants}
        runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
        runtime.run(until=10_000.0)
        assert runtime.monitor.max_concurrent(10_000.0, window_s=10_000.0) == 2


class TestElasticScalingDuringReplay:
    def test_over_active_tenant_isolated(self):
        sim, provisioner, deployed, tenants = _deploy(num_tenants=5)
        q1 = _q1_latency(2)
        # Tenant 1 hammers the system; tenants 2-4 are periodically active
        # together, producing sustained 4-concurrent overlap.
        logs = {}
        for t in tenants:
            if t.tenant_id == 5:
                submits = []
            elif t.tenant_id == 1:
                submits = [i * (q1 + 1.0) for i in range(800)]
            else:
                submits = [i * 40.0 for i in range(400)]
            logs[t.tenant_id] = _log(t, submits)
        scaling = LightweightScaling(window_s=3600.0, identification_epoch_s=5.0)
        runtime = GroupRuntime(
            deployed,
            logs,
            sim,
            provisioner,
            sla_fraction=0.999,
            scaling=scaling,
            monitor_interval_s=300.0,
        )
        report = runtime.run(until=40_000.0)
        assert len(report.scaling_actions) >= 1
        action = report.scaling_actions[0]
        assert action.kind == "lightweight"
        # The busiest tenant is the one isolated.
        assert 1 in action.over_active


class TestValidation:
    def test_missing_logs_rejected(self):
        sim, provisioner, deployed, tenants = _deploy()
        with pytest.raises(DeploymentError):
            GroupRuntime(deployed, {}, sim, provisioner, sla_fraction=0.999)

    def test_double_schedule_rejected(self):
        sim, provisioner, deployed, tenants = _deploy()
        logs = {t.tenant_id: _log(t, []) for t in tenants}
        runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
        runtime.schedule(until=100.0)
        with pytest.raises(DeploymentError):
            runtime.schedule(until=100.0)

    def test_bad_sla_fraction_rejected(self):
        sim, provisioner, deployed, tenants = _deploy()
        logs = {t.tenant_id: _log(t, []) for t in tenants}
        with pytest.raises(DeploymentError):
            GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.0)
