"""Service-level construction of each scaling policy variant."""

import pytest

from repro.core.scaling import (
    DisabledScaling,
    LightweightScaling,
    ProactiveScaling,
    WholeGroupScaling,
)
from repro.core.service import ThriftyService
from repro.units import HOUR
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def small_workload():
    config = tiny_config(num_tenants=15, seed=29)
    library = SessionLogGenerator(config, sessions_per_size=2).generate()
    return config, MultiTenantLogComposer(config, library).compose()


class TestPolicyConstruction:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("lightweight", LightweightScaling),
            ("proactive", ProactiveScaling),
            ("whole-group", WholeGroupScaling),
            ("disabled", DisabledScaling),
        ],
    )
    def test_policy_selected(self, small_workload, name, expected):
        config, workload = small_workload
        service = ThriftyService(config, scaling=name)
        service.deploy(workload)
        policy = service._make_scaling()
        assert type(policy) is expected

    def test_history_injected_into_lightweight_family(self, small_workload):
        config, workload = small_workload
        for name in ("lightweight", "proactive"):
            service = ThriftyService(config, scaling=name)
            service.deploy(workload)
            policy = service._make_scaling()
            assert isinstance(policy, LightweightScaling)
            assert set(policy.historical_fraction) == {
                t
                for g in service.advice.plan
                for t in g.placement.tenant_ids
            }
            assert all(0.0 <= v <= 1.0 for v in policy.historical_fraction.values())

    def test_short_replay_with_each_policy(self, small_workload):
        config, workload = small_workload
        for name in ("proactive", "whole-group"):
            service = ThriftyService(config, scaling=name)
            service.deploy(workload)
            report = service.replay(until=6 * HOUR)
            assert report.sla.fraction_met >= 0.0  # completes without error
