"""Heterogeneous-cluster tests (future work item 1)."""

import pytest

from repro.cluster.node import NodeSpec
from repro.cluster.pool import MachinePool
from repro.core.deployment import DeploymentPlan, GroupDeployment
from repro.core.heterogeneous import assign_node_classes, plan_speed_summary
from repro.core.tdd import design_for_group
from repro.errors import ClusterError, DeploymentError
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.workload.tenant import TenantSpec

FAST = NodeSpec(cpu_units=16, ram_gb=30.0, relative_speed=2.0)


def _group(name, tenant_ids, nodes=4):
    tenants = tuple(
        TenantSpec(tenant_id=i, nodes_requested=nodes, data_gb=nodes * 100.0)
        for i in tenant_ids
    )
    design, placement = design_for_group(name, tenants, num_instances=3)
    return GroupDeployment(design=design, placement=placement, tenants=tenants)


class TestPoolClasses:
    def test_default_class(self):
        pool = MachinePool(4)
        assert set(pool.node_classes) == {"standard"}
        assert pool.available_count_of("standard") == 4

    def test_add_class_and_allocate(self):
        pool = MachinePool(4)
        pool.add_node_class("fast", FAST, count=6)
        assert pool.available_count_of("fast") == 6
        nodes = pool.allocate(3, "m0", node_class="fast")
        assert all(n.node_class == "fast" for n in nodes)
        assert all(n.spec.relative_speed == 2.0 for n in nodes)
        assert pool.available_count_of("fast") == 3
        assert pool.available_count_of("standard") == 4

    def test_elastic_growth_per_class(self):
        pool = MachinePool(0, elastic=True)
        pool.add_node_class("fast", FAST, count=1)
        nodes = pool.allocate(3, "m0", node_class="fast")
        assert len(nodes) == 3
        assert all(n.node_class == "fast" for n in nodes)
        assert pool.rented_nodes == 2

    def test_duplicate_class_rejected(self):
        pool = MachinePool(1)
        with pytest.raises(ClusterError):
            pool.add_node_class("standard", FAST)

    def test_unknown_class_rejected(self):
        pool = MachinePool(1)
        with pytest.raises(ClusterError):
            pool.allocate(1, "m0", node_class="warp")
        with pytest.raises(ClusterError):
            pool.available_count_of("warp")

    def test_replacement_keeps_class(self):
        pool = MachinePool(0)
        pool.add_node_class("fast", FAST, count=3)
        nodes = pool.allocate(2, "m0", node_class="fast")
        for n in nodes:
            n.mark_running()
        failed = pool.fail_node(nodes[0].node_id)
        replacement = pool.replace_failed(failed, "m0")
        assert replacement.node_class == "fast"


class TestProvisioningSpeedFactor:
    def test_instance_inherits_class_speed(self):
        sim = Simulator()
        pool = MachinePool(4)
        pool.add_node_class("fast", FAST, count=4)
        prov = Provisioner(sim, pool)
        fast = prov.provision(2, [], name="f", instant=True, node_class="fast")
        slow = prov.provision(2, [], name="s", instant=True)
        assert fast.speed_factor == 2.0
        assert slow.speed_factor == 1.0


class TestAssignment:
    def test_largest_group_gets_fastest_class(self):
        pool = MachinePool(100)
        pool.add_node_class("fast", FAST, count=30)
        big = _group("big", range(10), nodes=8)      # 24 nodes used
        small = _group("small", range(10, 14), nodes=2)  # 6 nodes used
        plan = DeploymentPlan([small, big])
        assignment = assign_node_classes(plan, pool)
        assert assignment["big"] == "fast"
        assert assignment["small"] == "fast"  # 6 <= 30 - 24 remaining

    def test_stock_limits_upgrades(self):
        pool = MachinePool(100)
        pool.add_node_class("fast", FAST, count=25)
        big = _group("big", range(10), nodes=8)      # 24 used
        small = _group("small", range(10, 14), nodes=2)  # 6 used
        plan = DeploymentPlan([small, big])
        assignment = assign_node_classes(plan, pool)
        assert assignment["big"] == "fast"
        assert assignment["small"] == "standard"  # only 1 fast node left

    def test_no_fast_class_all_standard(self):
        pool = MachinePool(100)
        plan = DeploymentPlan([_group("a", range(3))])
        assignment = assign_node_classes(plan, pool)
        assert assignment == {"a": "standard"}

    def test_missing_default_rejected(self):
        pool = MachinePool(10)
        plan = DeploymentPlan([_group("a", range(3))])
        with pytest.raises(DeploymentError):
            assign_node_classes(plan, pool, default_class="warp")

    def test_speed_summary(self):
        pool = MachinePool(100)
        pool.add_node_class("fast", FAST, count=30)
        big = _group("big", range(10), nodes=8)
        small = _group("small", range(10, 14), nodes=2)
        plan = DeploymentPlan([small, big])
        assignment = {"big": "fast", "small": "standard"}
        summary = plan_speed_summary(plan, pool, assignment)
        # 24 nodes at 2.0 + 6 nodes at 1.0 over 30 nodes.
        assert summary["mean_speed"] == pytest.approx((24 * 2 + 6) / 30)
        assert summary["upgraded_groups"] == 1.0

    def test_summary_validation(self):
        pool = MachinePool(10)
        plan = DeploymentPlan([_group("a", range(3))])
        with pytest.raises(DeploymentError):
            plan_speed_summary(plan, pool, {})


class TestEndToEndSpeedup:
    def test_fast_class_shortens_latencies(self):
        # Deploy the same group on standard and fast hardware; the fast
        # replay finishes every query twice as fast (normalized 0.5).
        from repro.core.master import DeploymentMaster
        from repro.core.runtime import GroupRuntime
        from repro.workload.logs import QueryRecord, TenantLog
        from repro.workload.queries import template_by_name

        group = _group("g", range(1, 4), nodes=2)
        q1 = template_by_name("tpch.q1")
        baseline = q1.dedicated_latency_s(200.0, 2)
        results = {}
        for node_class in ("standard", "fast"):
            sim = Simulator()
            pool = MachinePool(0, elastic=True)
            pool.add_node_class("fast", FAST)
            master = DeploymentMaster(Provisioner(sim, pool))
            deployed = master.deploy_group(group, instant=True, node_class=node_class)
            logs = {
                t.tenant_id: TenantLog(
                    t,
                    [QueryRecord(submit_time_s=10.0, latency_s=baseline, template="tpch.q1")]
                    if t.tenant_id == 1
                    else [],
                )
                for t in group.tenants
            }
            runtime = GroupRuntime(deployed, logs, sim, master.provisioner, sla_fraction=0.999)
            results[node_class] = runtime.run(until=10_000.0)
        standard = results["standard"].sla.records[0].normalized
        fast = results["fast"].sla.records[0].normalized
        assert standard == pytest.approx(1.0)
        assert fast == pytest.approx(0.5)
