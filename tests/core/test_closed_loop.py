"""Closed-loop replay tests (the §7.1 user semantics honoured at replay)."""

import pytest

from repro.core.deployment import GroupDeployment
from repro.core.master import DeployedGroup
from repro.core.runtime import GroupRuntime
from repro.core.tdd import design_for_group
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.queries import template_by_name
from repro.workload.tenant import TenantSpec

_NODES = 2


def _deploy(num_tenants=4):
    sim = Simulator()
    provisioner = Provisioner(sim)
    tenants = tuple(
        TenantSpec(tenant_id=i, nodes_requested=_NODES, data_gb=_NODES * 100.0)
        for i in range(1, num_tenants + 1)
    )
    design, placement = design_for_group("tg0", tenants, num_instances=3)
    instances = tuple(
        provisioner.provision(
            parallelism=design.instance_parallelism(i),
            tenants=[t.as_tenant_data() for t in tenants],
            name=name,
            instant=True,
        )
        for i, name in enumerate(design.instance_names())
    )
    deployed = DeployedGroup(
        deployment=GroupDeployment(design=design, placement=placement, tenants=tenants),
        instances=instances,
    )
    return sim, provisioner, deployed, tenants


def _baseline():
    return template_by_name("tpch.q1").dedicated_latency_s(_NODES * 100.0, _NODES)


def _run(logs_by_tenant, tenants, sim, provisioner, deployed, closed_loop, until=100_000.0):
    runtime = GroupRuntime(
        deployed,
        logs_by_tenant,
        sim,
        provisioner,
        sla_fraction=0.999,
        closed_loop=closed_loop,
    )
    return runtime.run(until=until), runtime


class TestSequentialChain:
    def test_unperturbed_chain_matches_open_loop(self):
        # Alone on its MPPDB, the closed-loop chain reproduces the exact
        # baseline timeline: every query meets its SLA at normalized 1.0.
        sim, provisioner, deployed, tenants = _deploy()
        q = _baseline()
        records = []
        t = 100.0
        for __ in range(4):
            records.append(QueryRecord(submit_time_s=t, latency_s=q, template="tpch.q1"))
            t += q + 30.0  # 30 s think gap
        logs = {
            spec.tenant_id: TenantLog(spec, records if spec.tenant_id == 1 else [])
            for spec in tenants
        }
        report, __ = _run(logs, tenants, sim, provisioner, deployed, closed_loop=True)
        assert report.queries_completed == 4
        assert report.sla.fraction_met == 1.0
        # Submissions happened exactly at the baseline times.
        submits = sorted(r.submit_time_s for r in report.sla.records)
        assert submits == [r.submit_time_s for r in records]

    def test_slowdown_pushes_later_submissions_back(self):
        # Tenant 1's first query is slowed by overflow sharing; in closed
        # loop its *second* query starts later than the baseline log says,
        # preserving the think gap.
        sim, provisioner, deployed, tenants = _deploy(num_tenants=4)
        q = _baseline()
        think = 50.0
        chain = [
            QueryRecord(submit_time_s=100.0, latency_s=q, template="tpch.q1"),
            QueryRecord(submit_time_s=100.0 + q + think, latency_s=q, template="tpch.q1"),
        ]
        # Three other tenants occupy all three MPPDBs at t=99 with
        # five-query batches (baseline latency: 5 equal works under PS
        # finish together at 5x the single latency), forcing tenant 1's
        # first query to share MPPDB_0.
        def blockers():
            return [
                QueryRecord(
                    submit_time_s=99.0, latency_s=5 * q, template="tpch.q1", batch_id=1
                )
                for __ in range(5)
            ]

        logs = {}
        for spec in tenants:
            if spec.tenant_id == 1:
                logs[spec.tenant_id] = TenantLog(spec, chain)
            else:
                logs[spec.tenant_id] = TenantLog(spec, blockers())
        report, runtime = _run(logs, tenants, sim, provisioner, deployed, closed_loop=True)
        first, second = sorted(
            report.sla.for_tenant(1).records, key=lambda r: r.submit_time_s
        )
        assert first.normalized > 1.0  # shared MPPDB_0
        # The chain's second query preserved the think gap after the
        # *actual* (delayed) completion: it could only have met its SLA
        # (run alone) because the chain deferred it past the congestion.
        assert second.normalized == pytest.approx(1.0)
        # Completed queries: 2 from tenant 1 + 15 blocker queries.
        assert report.queries_completed == 17

    def test_open_loop_does_not_defer(self):
        # The same scenario in open loop submits at logged times even
        # though the first query is still running.
        sim, provisioner, deployed, tenants = _deploy(num_tenants=4)
        q = _baseline()
        chain = [
            QueryRecord(submit_time_s=100.0, latency_s=q, template="tpch.q1"),
            QueryRecord(submit_time_s=100.0 + q / 2, latency_s=q, template="tpch.q1"),
        ]
        logs = {
            spec.tenant_id: TenantLog(spec, chain if spec.tenant_id == 1 else [])
            for spec in tenants
        }
        report, __ = _run(logs, tenants, sim, provisioner, deployed, closed_loop=False)
        # Open loop: both run concurrently on the same instance (tenant
        # affinity) and interfere with each other.
        assert any(r.normalized > 1.0 for r in report.sla.records)


class TestBatchSemantics:
    def test_batch_submits_together_then_thinks(self):
        sim, provisioner, deployed, tenants = _deploy()
        q = _baseline()
        # Baseline latencies of a concurrent pair under PS: both finish
        # together, so the collected log shows each at work_a + work_b.
        q6 = template_by_name("tpch.q6").dedicated_latency_s(_NODES * 100.0, _NODES)
        batch = [
            QueryRecord(
                submit_time_s=100.0, latency_s=q + q6, template="tpch.q1", batch_id=7
            ),
            QueryRecord(
                submit_time_s=100.0, latency_s=q + q6, template="tpch.q6", batch_id=7
            ),
        ]
        follow_up = QueryRecord(
            # Baseline: the batch finishes at 100 + (q + q6); think 40 s.
            submit_time_s=100.0 + q + q6 + 40.0,
            latency_s=q,
            template="tpch.q1",
        )
        logs = {
            spec.tenant_id: TenantLog(
                spec, batch + [follow_up] if spec.tenant_id == 1 else []
            )
            for spec in tenants
        }
        report, __ = _run(logs, tenants, sim, provisioner, deployed, closed_loop=True)
        assert report.queries_completed == 3
        # The batch ran concurrently (intra-tenant PS on one instance).
        batch_records = [r for r in report.sla.records if r.template in ("tpch.q1", "tpch.q6")]
        assert len(batch_records) == 3
        assert report.sla.fraction_met == 1.0

    def test_until_bound_respected(self):
        sim, provisioner, deployed, tenants = _deploy()
        q = _baseline()
        records = [
            QueryRecord(submit_time_s=100.0, latency_s=q, template="tpch.q1"),
            QueryRecord(submit_time_s=10_000.0, latency_s=q, template="tpch.q1"),
        ]
        logs = {
            spec.tenant_id: TenantLog(spec, records if spec.tenant_id == 1 else [])
            for spec in tenants
        }
        report, __ = _run(
            logs, tenants, sim, provisioner, deployed, closed_loop=True, until=5_000.0
        )
        assert report.queries_completed == 1
