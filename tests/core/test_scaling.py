"""Elastic scaling tests (Chapter 5.1)."""

import pytest

from repro.core.deployment import GroupDeployment
from repro.core.master import DeployedGroup
from repro.core.monitor import GroupActivityMonitor
from repro.core.routing import TDDRouter
from repro.core.scaling import DisabledScaling, LightweightScaling, WholeGroupScaling
from repro.core.tdd import design_for_group
from repro.errors import ScalingError
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.workload.tenant import TenantSpec

_WINDOW = 1000.0


def _setup(num_tenants=6, nodes=4):
    sim = Simulator()
    provisioner = Provisioner(sim)
    tenants = tuple(
        TenantSpec(tenant_id=i, nodes_requested=nodes, data_gb=nodes * 100.0)
        for i in range(1, num_tenants + 1)
    )
    design, placement = design_for_group("tg0", tenants, num_instances=3)
    deployment = GroupDeployment(design=design, placement=placement, tenants=tenants)
    instances = tuple(
        provisioner.provision(
            parallelism=design.instance_parallelism(i),
            tenants=[t.as_tenant_data() for t in tenants],
            name=name,
            instant=True,
        )
        for i, name in enumerate(design.instance_names())
    )
    deployed = DeployedGroup(deployment=deployment, instances=instances)
    monitor = GroupActivityMonitor("tg0", replication_factor=3)
    for t in tenants:
        monitor.register_tenant(t.tenant_id, t.nodes_requested)
    router = TDDRouter(instances)
    return sim, provisioner, deployed, monitor, router


def _make_over_active(monitor, sim, over_tenant=1, quiet=(2, 3, 4)):
    """Drive 4 concurrent tenants for 5 % of the window: RT-TTP = 0.95."""
    for tid in (over_tenant, *quiet):
        monitor.on_query_start(tid, 0.0)
    for tid in quiet:
        monitor.on_query_finish(tid, 0.05 * _WINDOW)
    # The over-active tenant stays busy the whole window.
    sim.clock.advance_to(_WINDOW)


class TestTrigger:
    def test_no_action_above_sla(self):
        sim, provisioner, deployed, monitor, router = _setup()
        policy = LightweightScaling(window_s=_WINDOW)
        action = policy.maybe_scale(
            _WINDOW, deployed, monitor, router, provisioner, sla_fraction=0.9
        )
        assert action is None

    def test_disabled_never_scales(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = DisabledScaling(window_s=_WINDOW)
        action = policy.maybe_scale(
            _WINDOW, deployed, monitor, router, provisioner, sla_fraction=0.999
        )
        assert action is None
        assert policy.actions == []

    def test_lightweight_fires_below_sla(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        action = policy.maybe_scale(
            _WINDOW, deployed, monitor, router, provisioner, sla_fraction=0.999
        )
        assert action is not None
        assert action.kind == "lightweight"
        assert 1 in action.over_active

    def test_single_action_in_flight(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        first = policy.maybe_scale(_WINDOW, deployed, monitor, router, provisioner, 0.999)
        second = policy.maybe_scale(_WINDOW, deployed, monitor, router, provisioner, 0.999)
        assert first is not None
        assert second is None


class TestLightweightMechanics:
    def test_over_active_identification(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim, over_tenant=3, quiet=(1, 2, 4))
        policy = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        over = policy.identify_over_active(_WINDOW, deployed, monitor, 0.999)
        assert over == [3]

    def test_new_instance_loads_only_over_active_data(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        action = policy.maybe_scale(_WINDOW, deployed, monitor, router, provisioner, 0.999)
        # One 4-node tenant = 400 GB, not the whole group's 2.4 TB.
        assert action.loaded_gb == 400.0
        group_gb = sum(t.data_gb for t in deployed.deployment.tenants)
        assert action.loaded_gb < group_gb / 2

    def test_router_pinned_after_ready(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        action = policy.maybe_scale(_WINDOW, deployed, monitor, router, provisioner, 0.999)
        assert router.pinned_tenants == {}
        sim.run()  # provisioning completes
        assert 1 in router.pinned_tenants
        pinned = router.pinned_tenants[1]
        assert pinned.name == action.instance_name
        assert router.route(1) is pinned
        # The monitor excludes the tenant once it moves.
        assert monitor.excluded_tenants == {1}

    def test_ready_time_from_load_model(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        action = policy.maybe_scale(_WINDOW, deployed, monitor, router, provisioner, 0.999)
        expected = _WINDOW + provisioner.load_model.provision_seconds(4, 400.0)
        assert action.expected_ready_time == pytest.approx(expected)

    def test_cooldown_after_completion(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        policy.maybe_scale(_WINDOW, deployed, monitor, router, provisioner, 0.999)
        sim.run()  # completes, _in_flight cleared
        # Within one window of the action: no re-fire even if RT-TTP low.
        action = policy.maybe_scale(
            sim.now, deployed, monitor, router, provisioner, 0.999
        )
        assert action is None


class TestWholeGroupScaling:
    def test_loads_everything(self):
        sim, provisioner, deployed, monitor, router = _setup()
        _make_over_active(monitor, sim)
        policy = WholeGroupScaling(window_s=_WINDOW)
        action = policy.maybe_scale(_WINDOW, deployed, monitor, router, provisioner, 0.999)
        assert action.kind == "whole-group"
        assert action.loaded_gb == sum(t.data_gb for t in deployed.deployment.tenants)
        sim.run()
        # No pinning: the extra instance just joins the pool of A+1.
        assert router.pinned_tenants == {}
        assert len(router.instances) == 4

    def test_lightweight_is_faster_than_whole_group(self):
        sim1, prov1, dep1, mon1, rout1 = _setup()
        _make_over_active(mon1, sim1)
        light = LightweightScaling(window_s=_WINDOW, identification_epoch_s=10.0)
        a1 = light.maybe_scale(_WINDOW, dep1, mon1, rout1, prov1, 0.999)

        sim2, prov2, dep2, mon2, rout2 = _setup()
        _make_over_active(mon2, sim2)
        whole = WholeGroupScaling(window_s=_WINDOW)
        a2 = whole.maybe_scale(_WINDOW, dep2, mon2, rout2, prov2, 0.999)
        assert a1.expected_ready_time < a2.expected_ready_time


class TestValidation:
    def test_window_positive(self):
        with pytest.raises(ScalingError):
            LightweightScaling(window_s=0.0)
        with pytest.raises(ScalingError):
            LightweightScaling(identification_epoch_s=0.0)
