"""SLA accounting tests."""

import pytest

from repro.core.sla import SLARecord, SLAReport
from repro.errors import DeploymentError


def _record(normalized=1.0, tenant_id=1, group="tg0", submit=0.0, template="tpch.q1"):
    baseline = 100.0
    return SLARecord(
        tenant_id=tenant_id,
        group_name=group,
        instance_name="tg0/mppdb0",
        template=template,
        submit_time_s=submit,
        baseline_latency_s=baseline,
        observed_latency_s=baseline * normalized,
    )


class TestSLARecord:
    def test_normalized(self):
        assert _record(1.2).normalized == pytest.approx(1.2)

    def test_met_at_or_below_one(self):
        assert _record(1.0).met
        assert _record(0.5).met  # faster than baseline (bigger MPPDB)
        assert not _record(1.01).met

    def test_zero_baseline(self):
        record = SLARecord(
            tenant_id=1,
            group_name="g",
            instance_name="i",
            template="t",
            submit_time_s=0.0,
            baseline_latency_s=0.0,
            observed_latency_s=0.0,
        )
        assert record.normalized == 1.0
        assert record.met

    def test_negative_latency_rejected(self):
        with pytest.raises(DeploymentError):
            _record(-1.0)


class TestSLAReport:
    def test_fraction_met(self):
        report = SLAReport([_record(1.0), _record(1.5), _record(0.9), _record(1.0)])
        assert report.fraction_met == pytest.approx(0.75)

    def test_empty_report(self):
        report = SLAReport([])
        assert report.fraction_met == 1.0
        assert report.worst_normalized == 1.0
        assert report.mean_normalized() == 1.0

    def test_worst_and_mean(self):
        report = SLAReport([_record(1.0), _record(1.8)])
        assert report.worst_normalized == pytest.approx(1.8)
        assert report.mean_normalized() == pytest.approx(1.4)

    def test_violations_time_ordered(self):
        report = SLAReport(
            [_record(1.5, submit=10.0), _record(1.2, submit=5.0), _record(0.9, submit=1.0)]
        )
        violations = report.violations()
        assert [v.submit_time_s for v in violations] == [5.0, 10.0]

    def test_filters(self):
        records = [
            _record(1.0, tenant_id=1, group="a", submit=0.0),
            _record(1.5, tenant_id=2, group="a", submit=10.0),
            _record(1.0, tenant_id=1, group="b", submit=20.0),
        ]
        report = SLAReport(records)
        assert len(report.for_tenant(1)) == 2
        assert len(report.for_group("a")) == 2
        assert len(report.window(5.0, 25.0)) == 2

    def test_summary_keys(self):
        summary = SLAReport([_record(1.0)]).summary()
        assert set(summary) == {
            "queries",
            "fraction_met",
            "mean_normalized",
            "worst_normalized",
        }
