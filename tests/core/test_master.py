"""Deployment Master tests."""

import pytest

from repro.cluster.pool import MachinePool
from repro.core.advisor import DeploymentAdvisor
from repro.core.master import DeploymentMaster
from repro.errors import DeploymentError
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator


@pytest.fixture
def advice(config, workload):
    return DeploymentAdvisor(config).plan_from_workload(workload)


def _master(pool=None):
    sim = Simulator()
    return sim, DeploymentMaster(Provisioner(sim, pool))


class TestDeploy:
    def test_instant_deploy(self, advice):
        sim, master = _master()
        deployed = master.deploy(advice.plan, instant=True)
        assert len(deployed) == len(advice.plan)
        for group in deployed:
            assert len(group.instances) == group.deployment.design.num_instances
            for instance in group.instances:
                assert instance.is_ready
                # Every instance hosts every tenant of its group.
                for tenant_id in group.deployment.placement.tenant_ids:
                    assert instance.hosts(tenant_id)

    def test_instance_parallelisms_match_design(self, advice):
        __, master = _master()
        deployed = master.deploy(advice.plan, instant=True)
        for group in deployed:
            design = group.deployment.design
            for index, instance in enumerate(group.instances):
                assert instance.parallelism == design.instance_parallelism(index)

    def test_timed_deploy_requires_simulation(self, advice):
        sim, master = _master()
        group = advice.plan.groups[0]
        deployed = master.deploy_group(group, instant=False)
        assert not deployed.instances[0].is_ready
        sim.run()
        assert all(i.is_ready for i in deployed.instances)

    def test_pool_usage_matches_plan(self, advice):
        sim = Simulator()
        pool = MachinePool(elastic=True)
        master = DeploymentMaster(Provisioner(sim, pool))
        master.deploy(advice.plan, instant=True)
        assert pool.in_use_count == advice.plan.total_nodes_used

    def test_duplicate_deploy_rejected(self, advice):
        __, master = _master()
        master.deploy(advice.plan, instant=True)
        with pytest.raises(DeploymentError):
            master.deploy_group(advice.plan.groups[0], instant=True)


class TestDecommission:
    def test_decommission_releases_nodes(self, advice):
        sim = Simulator()
        pool = MachinePool(elastic=True)
        master = DeploymentMaster(Provisioner(sim, pool))
        master.deploy(advice.plan, instant=True)
        name = advice.plan.groups[0].group_name
        master.decommission_group(name)
        assert name not in master.deployed_groups()
        used_by_group = advice.plan.groups[0].nodes_used
        assert pool.in_use_count == advice.plan.total_nodes_used - used_by_group

    def test_decommission_unknown_rejected(self):
        __, master = _master()
        with pytest.raises(DeploymentError):
            master.decommission_group("missing")
