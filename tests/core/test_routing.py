"""Query routing tests — the Algorithm 1 walkthrough of Figure 4.2."""

import pytest

from repro.core.routing import (
    AlwaysTuningRouter,
    RandomFreeRouter,
    RoundRobinRouter,
    TDDRouter,
)
from repro.errors import RoutingError
from repro.mppdb.catalog import TenantData
from repro.mppdb.instance import MPPDBInstance
from repro.simulation.engine import Simulator


def _instances(sim, count=3, tenants=range(1, 11), parallelism=6):
    result = []
    for i in range(count):
        instance = MPPDBInstance(f"mppdb{i}", parallelism, sim)
        for tid in tenants:
            instance.deploy_tenant(TenantData(tenant_id=tid, data_gb=100.0))
        instance.mark_ready()
        result.append(instance)
    return result


class TestFigure42Walkthrough:
    """Replays the tenant activities of Figure 4.2 step by step."""

    def test_full_walkthrough(self):
        sim = Simulator()
        m0, m1, m2 = _instances(sim, 3)
        router = TDDRouter([m0, m1, m2])

        # T4 submits Q1: all free -> MPPDB0 (line 5).
        assert router.route(4) is m0
        q1 = m0.submit_query(4, 100.0)
        # T2 submits Q2: MPPDB0 busy -> free MPPDB1 (line 8).
        assert router.route(2) is m1
        q2 = m1.submit_query(2, 100.0)
        # T4 submits Q3 while Q1 runs -> follow the tenant to MPPDB0 (line 2).
        assert router.route(4) is m0
        m0.submit_query(4, 50.0)
        # T2 submits Q4 while Q2 runs -> MPPDB1 (line 2).
        assert router.route(2) is m1
        m1.submit_query(2, 50.0)
        # T9 submits Q5 -> MPPDB2 is the only free one (line 8).
        assert router.route(9) is m2
        m2.submit_query(9, 100.0)

        # Let T4's queries finish (Q1+Q3 PS: total work 150 shared).
        sim.run(until=500.0)
        assert m0.is_free

        # T1 submits Q6: T4 inactive now, MPPDB0 free again (line 5).
        assert router.route(1) is m0
        m0.submit_query(1, 100.0)

        # T4 submits Q7 after its queries finished: not tied to MPPDB0
        # anymore; MPPDB0 busy (T1); is MPPDB1 or MPPDB2 free?
        # Q2+Q4 on m1: total 150s from t=0 -> done by 500; Q5 on m2 done.
        assert m1.is_free and m2.is_free
        assert router.route(4) is m1

    def test_overflow_to_tuning_instance(self):
        # Line 10: all instances busy -> MPPDB0 for concurrent processing.
        sim = Simulator()
        m0, m1, m2 = _instances(sim, 3)
        router = TDDRouter([m0, m1, m2])
        m0.submit_query(1, 100.0)
        m1.submit_query(2, 100.0)
        m2.submit_query(3, 100.0)
        assert router.route(4) is m0

    def test_tenant_affinity_beats_free_instances(self):
        # Line 2 dominates: a tenant with running queries stays put even
        # when other instances are free.
        sim = Simulator()
        m0, m1, m2 = _instances(sim, 3)
        router = TDDRouter([m0, m1, m2])
        m1.submit_query(5, 100.0)
        assert router.route(5) is m1


class TestRouterMechanics:
    def test_tenant_not_hosted_anywhere(self):
        sim = Simulator()
        instances = _instances(sim, 2, tenants=[1, 2])
        router = TDDRouter(instances)
        with pytest.raises(RoutingError):
            router.route(99)

    def test_not_ready_instances_skipped(self):
        sim = Simulator()
        m0 = MPPDBInstance("m0", 4, sim)
        m0.deploy_tenant(TenantData(tenant_id=1, data_gb=1.0))
        (m1,) = _instances(sim, 1, tenants=[1])
        router = TDDRouter([m0, m1])
        assert router.route(1) is m1

    def test_pin_tenant(self):
        sim = Simulator()
        m0, m1, m2 = _instances(sim, 3)
        extra = MPPDBInstance("scale0", 6, sim)
        extra.deploy_tenant(TenantData(tenant_id=7, data_gb=100.0))
        extra.mark_ready()
        router = TDDRouter([m0, m1, m2])
        router.add_instance(extra)
        router.pin_tenant(7, extra)
        assert router.route(7) is extra
        assert router.pinned_tenants == {7: extra}
        router.unpin_tenant(7)
        assert router.route(7) is m0

    def test_pin_requires_hosting(self):
        sim = Simulator()
        m0, m1, m2 = _instances(sim, 3)
        foreign = MPPDBInstance("foreign", 4, sim)
        foreign.mark_ready()
        router = TDDRouter([m0, m1, m2])
        with pytest.raises(RoutingError):
            router.pin_tenant(1, foreign)

    def test_empty_router_rejected(self):
        with pytest.raises(RoutingError):
            TDDRouter([])

    def test_tuning_instance_is_first(self):
        sim = Simulator()
        instances = _instances(sim, 3)
        assert TDDRouter(instances).tuning_instance is instances[0]


class TestAblationRouters:
    def test_random_free_prefers_free(self):
        sim = Simulator()
        m0, m1, m2 = _instances(sim, 3)
        router = RandomFreeRouter([m0, m1, m2], seed=1)
        m0.submit_query(1, 100.0)
        m1.submit_query(2, 100.0)
        assert router.route(3) is m2

    def test_random_free_ignores_affinity(self):
        # The ablation flaw: a busy tenant's next query may land elsewhere.
        sim = Simulator()
        m0, m1, m2 = _instances(sim, 3)
        router = RandomFreeRouter([m0, m1, m2], seed=0)
        m0.submit_query(1, 1000.0)
        targets = {router.route(1).name for __ in range(20)}
        assert "mppdb0" not in targets  # m0 is busy; router scatters

    def test_round_robin_cycles(self):
        sim = Simulator()
        instances = _instances(sim, 3)
        router = RoundRobinRouter(instances)
        names = [router.route(1).name for __ in range(6)]
        assert names == ["mppdb0", "mppdb1", "mppdb2"] * 2

    def test_always_tuning(self):
        sim = Simulator()
        instances = _instances(sim, 3)
        router = AlwaysTuningRouter(instances)
        instances[0].submit_query(1, 100.0)
        assert router.route(2) is instances[0]
