"""Property-based tests on the activity monitor's bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import GroupActivityMonitor

_NUM_TENANTS = 4

# Scripts of (tenant, busy duration, gap before start), played sequentially
# per tenant but interleaved across tenants by absolute times.
_SCRIPTS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=_NUM_TENANTS),
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
)


def _play(script):
    """Drive the monitor with per-tenant sequential busy intervals."""
    monitor = GroupActivityMonitor("g", replication_factor=2)
    for tid in range(1, _NUM_TENANTS + 1):
        monitor.register_tenant(tid, nodes_requested=2)
    next_free = {tid: 0.0 for tid in range(1, _NUM_TENANTS + 1)}
    events = []  # (time, +1/-1, tenant)
    for tenant, duration, gap in script:
        start = next_free[tenant] + gap
        end = start + duration
        events.append((start, +1, tenant))
        events.append((end, -1, tenant))
        next_free[tenant] = end
    horizon = max(t for t, __, __ in events) + 1.0
    for time, kind, tenant in sorted(events):
        if kind > 0:
            monitor.on_query_start(tenant, time)
        else:
            monitor.on_query_finish(tenant, time)
    return monitor, horizon


class TestMonitorInvariants:
    @given(_SCRIPTS)
    @settings(max_examples=60, deadline=None)
    def test_everything_ends_inactive(self, script):
        monitor, __ = _play(script)
        assert monitor.active_tenants() == set()
        assert monitor.concurrency.value_at_end() == 0.0

    @given(_SCRIPTS)
    @settings(max_examples=60, deadline=None)
    def test_busy_intervals_cover_total_duration(self, script):
        monitor, horizon = _play(script)
        per_tenant_expected = {}
        for tenant, duration, __ in script:
            per_tenant_expected[tenant] = per_tenant_expected.get(tenant, 0.0) + duration
        for tenant, expected in per_tenant_expected.items():
            intervals = monitor.tenant_busy_intervals(tenant, 0.0, horizon)
            total = sum(e - s for s, e in intervals)
            assert total == pytest.approx(expected, rel=1e-9)

    @given(_SCRIPTS)
    @settings(max_examples=60, deadline=None)
    def test_rt_ttp_in_unit_interval(self, script):
        monitor, horizon = _play(script)
        ttp = monitor.rt_ttp(horizon, window_s=horizon)
        assert 0.0 <= ttp <= 1.0

    @given(_SCRIPTS)
    @settings(max_examples=60, deadline=None)
    def test_max_concurrent_bounded_by_tenants(self, script):
        monitor, horizon = _play(script)
        peak = monitor.max_concurrent(horizon, window_s=horizon)
        assert 0 <= peak <= _NUM_TENANTS

    @given(_SCRIPTS)
    @settings(max_examples=60, deadline=None)
    def test_activity_items_match_intervals(self, script):
        monitor, horizon = _play(script)
        items = monitor.activity_items(0.0, horizon, epoch_size=1.0)
        for item in items:
            intervals = monitor.tenant_busy_intervals(item.tenant_id, 0.0, horizon)
            busy = sum(e - s for s, e in intervals)
            # Epoch count bounds busy time from above (epoch inflation)
            # and cannot be more than busy + 2 epochs per interval.
            assert item.active_epoch_count * 1.0 >= busy - 1e-9
            assert item.active_epoch_count <= busy + 2 * max(len(intervals), 1)
