"""Deployment plan container tests."""

import pytest

from repro.core.deployment import DeploymentPlan, GroupDeployment
from repro.core.tdd import design_for_group
from repro.errors import DeploymentError
from repro.workload.tenant import TenantSpec


def _group(name, tenant_ids, nodes=4, num_instances=3):
    tenants = tuple(
        TenantSpec(tenant_id=i, nodes_requested=nodes, data_gb=nodes * 100.0)
        for i in tenant_ids
    )
    design, placement = design_for_group(name, tenants, num_instances=num_instances)
    return GroupDeployment(design=design, placement=placement, tenants=tenants)


class TestGroupDeployment:
    def test_node_accounting(self):
        group = _group("tg0", [1, 2, 3, 4, 5])
        assert group.nodes_used == 12       # 3 instances x 4 nodes
        assert group.nodes_requested == 20  # 5 tenants x 4 nodes

    def test_tenant_lookup(self):
        group = _group("tg0", [1, 2])
        assert group.tenant(2).tenant_id == 2
        with pytest.raises(DeploymentError):
            group.tenant(9)

    def test_mismatched_names_rejected(self):
        a = _group("tg0", [1, 2])
        b = _group("tg1", [3, 4])
        with pytest.raises(DeploymentError):
            GroupDeployment(design=a.design, placement=b.placement, tenants=a.tenants)

    def test_specs_must_match_placement(self):
        group = _group("tg0", [1, 2])
        wrong_specs = (
            TenantSpec(tenant_id=9, nodes_requested=4, data_gb=400.0),
        )
        with pytest.raises(DeploymentError):
            GroupDeployment(design=group.design, placement=group.placement, tenants=wrong_specs)


class TestDeploymentPlan:
    def test_effectiveness(self):
        plan = DeploymentPlan([_group("tg0", range(10))])
        # 10 tenants x 4 nodes requested = 40; used = 12.
        assert plan.total_nodes_requested == 40
        assert plan.total_nodes_used == 12
        assert plan.consolidation_effectiveness == pytest.approx(0.7)

    def test_group_lookup(self):
        plan = DeploymentPlan([_group("tg0", [1, 2]), _group("tg1", [3, 4])])
        assert plan.group("tg1").group_name == "tg1"
        assert plan.group_of_tenant(3).group_name == "tg1"
        with pytest.raises(DeploymentError):
            plan.group("missing")
        with pytest.raises(DeploymentError):
            plan.group_of_tenant(99)

    def test_duplicate_group_names_rejected(self):
        with pytest.raises(DeploymentError):
            DeploymentPlan([_group("tg0", [1]), _group("tg0", [2])])

    def test_overlapping_tenants_rejected(self):
        with pytest.raises(DeploymentError):
            DeploymentPlan([_group("tg0", [1, 2]), _group("tg1", [2, 3])])

    def test_empty_plan_rejected(self):
        with pytest.raises(DeploymentError):
            DeploymentPlan([])

    def test_summary(self):
        plan = DeploymentPlan([_group("tg0", [1, 2, 3])])
        summary = plan.summary()
        assert summary["groups"] == 1.0
        assert summary["tenants"] == 3.0
