"""Property-based tests on the Algorithm 1 router's invariants.

Random submission/completion interleavings must never break the two
guarantees routing rests on: a tenant with running queries is always
routed back to the same instance (tenant exclusivity), and as long as at
most A tenants are concurrently active, no two tenants ever share an
instance (Guarantee 1's mechanism).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import TDDRouter
from repro.mppdb.catalog import TenantData
from repro.mppdb.instance import MPPDBInstance
from repro.simulation.engine import Simulator

_NUM_TENANTS = 6
_NUM_INSTANCES = 3

# A script is a list of (tenant, work, gap-before-submission).
_SCRIPTS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=_NUM_TENANTS),
        st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


def _play(script):
    sim = Simulator()
    instances = []
    for i in range(_NUM_INSTANCES):
        instance = MPPDBInstance(f"m{i}", 4, sim)
        for tid in range(1, _NUM_TENANTS + 1):
            instance.deploy_tenant(TenantData(tenant_id=tid, data_gb=100.0))
        instance.mark_ready()
        instances.append(instance)
    router = TDDRouter(instances)
    observations = []
    t = 0.0
    for tenant, work, gap in script:
        t += gap

        def _submit(time, _tenant=tenant, _work=work):
            active_before = {
                i.name: set(i.active_tenants) for i in instances
            }
            chosen = router.route(_tenant)
            chosen.submit_query(_tenant, _work)
            observations.append((time, _tenant, chosen.name, active_before))

        sim.schedule(t, _submit)
    sim.run()
    return observations


class TestRouterInvariants:
    @given(_SCRIPTS)
    @settings(max_examples=50, deadline=None)
    def test_tenant_affinity(self, script):
        # If the tenant had queries running anywhere at submission time,
        # the router must have chosen exactly that instance (line 2).
        for __, tenant, chosen, active_before in _play(script):
            holding = [name for name, active in active_before.items() if tenant in active]
            if holding:
                assert chosen == holding[0]
                assert len(holding) == 1  # never smeared across instances

    @given(_SCRIPTS)
    @settings(max_examples=50, deadline=None)
    def test_no_sharing_while_any_instance_free(self, script):
        # The router only co-locates two tenants when nothing is free.
        for __, tenant, chosen, active_before in _play(script):
            chosen_active = active_before[chosen]
            if chosen_active and tenant not in chosen_active:
                # Overflow: every instance must have been busy.
                assert all(active for active in active_before.values())

    @given(_SCRIPTS)
    @settings(max_examples=50, deadline=None)
    def test_overflow_goes_to_tuning_instance(self, script):
        for __, tenant, chosen, active_before in _play(script):
            chosen_active = active_before[chosen]
            if chosen_active and tenant not in chosen_active:
                assert chosen == "m0"  # MPPDB_0, Algorithm 1 line 10

    @given(_SCRIPTS)
    @settings(max_examples=50, deadline=None)
    def test_tuning_instance_preferred_when_free(self, script):
        # A newly active tenant goes to MPPDB_0 whenever it is free (line 5).
        for __, tenant, chosen, active_before in _play(script):
            anywhere = any(tenant in a for a in active_before.values())
            if not anywhere and not active_before["m0"]:
                assert chosen == "m0"
