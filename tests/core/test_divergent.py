"""Divergent design tests (Chapter 8 future work)."""

import pytest

from repro.core.divergent import (
    DivergentDesigner,
    minimum_tuning_nodes_for_templates,
    template_serial_fraction,
)
from repro.errors import ConfigurationError, DeploymentError
from repro.mppdb.scaleout import AmdahlScaleOut, LinearScaleOut, SublinearScaleOut
from repro.workload.queries import QueryTemplate
from repro.workload.tenant import TenantSpec
from repro.workload.tpch import tpch_template


def _template(name, curve):
    return QueryTemplate(name, "tpch", seconds_per_gb=0.01, curve=curve)


def _tenants(count=6, nodes=4):
    return [
        TenantSpec(tenant_id=i, nodes_requested=nodes, data_gb=nodes * 100.0)
        for i in range(1, count + 1)
    ]


class TestTemplateSerialFraction:
    def test_linear_is_zero(self):
        assert template_serial_fraction(_template("a", LinearScaleOut())) == 0.0

    def test_amdahl_exact(self):
        assert template_serial_fraction(_template("a", AmdahlScaleOut(0.2))) == 0.2

    def test_sublinear_in_between(self):
        fraction = template_serial_fraction(_template("a", SublinearScaleOut(0.7)))
        assert 0.0 < fraction < 1.0


class TestMinimumTuningNodes:
    def test_linear_templates_need_k_times_n(self):
        templates = [_template("q1", LinearScaleOut())]
        assert minimum_tuning_nodes_for_templates(templates, 4, concurrency=2) == 8
        assert minimum_tuning_nodes_for_templates(templates, 4, concurrency=3) == 12

    def test_worst_template_dominates(self):
        templates = [
            _template("lin", LinearScaleOut()),
            _template("amd", AmdahlScaleOut(0.05)),
        ]
        u = minimum_tuning_nodes_for_templates(templates, 4, concurrency=2)
        assert u > 8  # the Amdahl template needs more than the linear one

    def test_divergence_speedup_reduces_u(self):
        templates = [_template("amd", AmdahlScaleOut(0.05))]
        plain = minimum_tuning_nodes_for_templates(templates, 4, concurrency=2)
        helped = minimum_tuning_nodes_for_templates(
            templates, 4, concurrency=2, divergence_speedup=1.5
        )
        assert helped < plain

    def test_hopeless_serial_fraction_raises(self):
        # s = 0.2 at n = 4: latency_4 = 0.4; MPL 3 needs latency_U <= 0.133
        # but latency_inf = 0.2 > 0.133 — no U works.
        templates = [_template("q19", AmdahlScaleOut(0.2))]
        with pytest.raises(ConfigurationError):
            minimum_tuning_nodes_for_templates(templates, 4, concurrency=3)

    def test_divergence_can_rescue_hopeless_case(self):
        templates = [_template("q19", AmdahlScaleOut(0.2))]
        u = minimum_tuning_nodes_for_templates(
            templates, 4, concurrency=3, divergence_speedup=2.0
        )
        assert u >= 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minimum_tuning_nodes_for_templates([], 4, 2)
        templates = [_template("a", LinearScaleOut())]
        with pytest.raises(ConfigurationError):
            minimum_tuning_nodes_for_templates(templates, 0, 2)
        with pytest.raises(ConfigurationError):
            minimum_tuning_nodes_for_templates(templates, 4, 0)
        with pytest.raises(ConfigurationError):
            minimum_tuning_nodes_for_templates(templates, 4, 2, divergence_speedup=0.5)


class TestDivergentDesigner:
    def test_design_shape(self):
        designer = DivergentDesigner()
        templates = [tpch_template(1), tpch_template(6), tpch_template(19)]
        result = designer.design_group(
            "dg0", _tenants(), templates, num_instances=3, absorbed_concurrency=2
        )
        assert result.design.parallelism == 4
        assert result.design.tuning_parallelism > 4  # U > n_1 upfront
        assert result.placement.replication_factor == 3
        assert result.absorbed_concurrency == 2

    def test_affinity_covers_all_templates(self):
        designer = DivergentDesigner()
        templates = [tpch_template(n) for n in (1, 6, 17, 19, 20)]
        result = designer.design_group("dg0", _tenants(), templates, num_instances=3)
        assigned = [t for names in result.replica_affinity.values() for t in names]
        assert sorted(assigned) == sorted(t.name for t in templates)

    def test_tuning_replica_favours_worst_scaling_templates(self):
        # MPPDB_0 absorbs overflow, so its partition scheme is tuned for
        # the templates its U was sized by — the worst-scaling ones.
        designer = DivergentDesigner()
        templates = [tpch_template(n) for n in (1, 6, 19)]  # q19 is Amdahl 0.2
        result = designer.design_group("dg0", _tenants(), templates, num_instances=3)
        assert "tpch.q19" in result.replica_affinity["dg0/mppdb0"]

    def test_favoured_replica_lookup(self):
        designer = DivergentDesigner()
        templates = [tpch_template(1), tpch_template(19)]
        result = designer.design_group("dg0", _tenants(), templates, num_instances=3)
        assert result.favoured_replica("tpch.q19") in result.replica_affinity
        assert result.favoured_replica("tpch.q99") is None

    def test_supports(self):
        designer = DivergentDesigner(divergence_speedup=1.0)
        assert designer.supports([_template("lin", LinearScaleOut())], 4, 3)
        assert not designer.supports([_template("bad", AmdahlScaleOut(0.5))], 4, 3)

    def test_validation(self):
        designer = DivergentDesigner()
        with pytest.raises(DeploymentError):
            designer.design_group("dg0", [], [tpch_template(1)], num_instances=3)
        with pytest.raises(DeploymentError):
            designer.design_group("dg0", _tenants(), [], num_instances=3)
        with pytest.raises(ConfigurationError):
            DivergentDesigner(divergence_speedup=0.9)

    def test_divergent_design_uses_fewer_nodes_than_scaling_headroom(self):
        # The paper's claim: for the restricted class, paying U > n_1
        # upfront beats adding whole MPPDBs.  A full extra replica costs
        # n_1 more nodes than raising U by the same amount only when
        # U - n_1 < n_1; check the design stays below A+1 cost for
        # linear-dominated template sets.
        designer = DivergentDesigner()
        templates = [tpch_template(1), tpch_template(6)]
        result = designer.design_group(
            "dg0", _tenants(nodes=4), templates, num_instances=3, absorbed_concurrency=2
        )
        a_plus_one_cost = 4 * 4  # four 4-node MPPDBs
        assert result.total_nodes < a_plus_one_cost
