"""Cross-feature test: burst detection feeding advisor exclusion.

Chapter 5.1's closing remark: tenants with regular activity bursts are
identified by the monitoring and excluded from consolidation before the
bursts arrive.  This test wires `repro.analysis.bursts` to the advisor's
exclusion path the way an operator would.
"""


from repro.analysis.bursts import detect_bursts, predict_next_burst
from repro.core.advisor import DeploymentAdvisor
from repro.units import DAY, HOUR
from repro.workload.activity import ActivityItem, ActivityMatrix, active_epoch_indices
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.tenant import TenantSpec
from tests.conftest import tiny_config


def _tenant_log(tenant_id, bursty: bool, horizon_days=28):
    spec = TenantSpec(tenant_id=tenant_id, nodes_requested=2, data_gb=200.0)
    records = []
    for day in range(horizon_days):
        if day % 7 >= 5:
            continue
        hours = 8.0 if (bursty and day % 7 == 4) else 1.0  # Friday crunch
        records.append(
            QueryRecord(
                submit_time_s=day * DAY + 9 * HOUR,
                latency_s=hours * HOUR,
                template="tpch.q1",
            )
        )
    return TenantLog(spec, records)


class TestBurstAwarePlanning:
    def test_bursty_tenant_detected_and_divertable(self):
        horizon_days = 28
        logs = {i: _tenant_log(i, bursty=(i == 0)) for i in range(8)}
        profiles = {i: detect_bursts(log, horizon_days) for i, log in logs.items()}
        regular_bursters = [i for i, p in profiles.items() if p.is_regular]
        assert regular_bursters == [0]
        # The operator knows when to expect the next burst...
        next_burst = predict_next_burst(profiles[0], after_day=horizon_days)
        assert next_burst is not None
        assert next_burst % 7 == 4  # another Friday
        # ...and plans consolidation for the non-bursty tenants only.
        config = tiny_config(num_tenants=8)
        keep = [i for i in logs if i not in regular_bursters]
        items = [
            ActivityItem(
                tenant_id=i,
                nodes_requested=logs[i].tenant.nodes_requested,
                epochs=active_epoch_indices(logs[i].busy_intervals(), 60.0),
            )
            for i in keep
        ]
        matrix = ActivityMatrix(items, num_epochs=int(horizon_days * DAY / 60.0))
        advisor = DeploymentAdvisor(config)
        result = advisor.plan_from_matrix(matrix, [logs[i].tenant for i in keep])
        planned = {t for g in result.plan for t in g.placement.tenant_ids}
        assert 0 not in planned
        assert planned == set(keep)

    def test_identical_daily_pattern_packs_tightly(self):
        # Sanity: the 7 non-bursty tenants share identical activity, so at
        # R = 3 the grouping can stack 3 per epoch... their activity being
        # IDENTICAL means concurrency equals group size; feasible groups
        # hold at most R of them at P = 100 %.
        horizon_days = 28
        logs = {i: _tenant_log(i, bursty=False) for i in range(6)}
        items = [
            ActivityItem(
                tenant_id=i,
                nodes_requested=2,
                epochs=active_epoch_indices(log.busy_intervals(), 60.0),
            )
            for i, log in logs.items()
        ]
        from repro.packing.livbp import LIVBPwFCProblem
        from repro.packing.two_step import two_step_grouping

        problem = LIVBPwFCProblem(
            items=tuple(items),
            num_epochs=int(horizon_days * DAY / 60.0),
            replication_factor=3,
            sla_fraction=1.0,
        )
        solution = two_step_grouping(problem)
        solution.validate()
        assert all(len(g) <= 3 for g in solution.groups)
        assert len(solution.groups) == 2
