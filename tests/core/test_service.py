"""ThriftyService facade tests — the end-to-end integration path."""

import pytest

from repro.core.service import SCALING_POLICIES, ThriftyService
from repro.errors import DeploymentError
from repro.units import DAY
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def small_service_run(request):
    """One deployed + replayed service shared across this module."""
    from repro.workload.composer import MultiTenantLogComposer
    from repro.workload.generator import SessionLogGenerator

    config = tiny_config(num_tenants=24, seed=13)
    library = SessionLogGenerator(config, sessions_per_size=3).generate()
    workload = MultiTenantLogComposer(config, library).compose()
    service = ThriftyService(config)
    advice = service.deploy(workload)
    report = service.replay(until=1 * DAY)
    return config, workload, service, advice, report


class TestDeploy:
    def test_plan_and_instances(self, small_service_run):
        config, workload, service, advice, __ = small_service_run
        assert advice.plan.total_nodes_requested + advice.excluded_nodes == (
            workload.total_nodes_requested()
        )
        deployed = service.master.deployed_groups()
        assert set(deployed) == {g.group_name for g in advice.plan}

    def test_pool_reflects_plan(self, small_service_run):
        __, __, service, advice, __ = small_service_run
        # Replay may rent extra nodes for elastic scaling; at least the
        # plan's nodes are in use.
        assert service.pool.in_use_count >= advice.plan.total_nodes_used

    def test_double_deploy_rejected(self, small_service_run, workload):
        __, __, service, __, __ = small_service_run
        with pytest.raises(DeploymentError):
            service.deploy(workload)


class TestReplay:
    def test_report_covers_all_groups(self, small_service_run):
        __, __, service, advice, report = small_service_run
        assert set(report.group_reports) == {g.group_name for g in advice.plan}

    def test_queries_complete(self, small_service_run):
        __, __, __, __, report = small_service_run
        sla = report.sla
        assert len(sla) > 0
        # The vast majority of queries meet the before-consolidation SLA.
        assert sla.fraction_met > 0.9

    def test_effectiveness_consistent(self, small_service_run):
        __, __, __, advice, report = small_service_run
        assert report.consolidation_effectiveness == pytest.approx(
            advice.plan.consolidation_effectiveness
        )

    def test_summary_keys(self, small_service_run):
        __, __, __, __, report = small_service_run
        assert {
            "groups",
            "queries",
            "sla_fraction_met",
            "nodes_used",
            "nodes_requested",
            "effectiveness",
            "scaling_actions",
        } <= set(report.summary())

    def test_replay_same_group_twice_rejected(self, small_service_run, workload):
        __, __, service, advice, __ = small_service_run
        name = advice.plan.groups[0].group_name
        with pytest.raises(DeploymentError):
            service.replay(until=2 * DAY, group_names=[name])

    def test_replay_before_deploy_rejected(self):
        service = ThriftyService(tiny_config())
        with pytest.raises(DeploymentError):
            service.replay(until=DAY)


class TestInvoices:
    def test_invoices_for_all_tenants(self, small_service_run):
        config, workload, service, __, __ = small_service_run
        invoices = service.invoices()
        assert len(invoices) == len(workload)
        assert all(inv.amount >= 0 for inv in invoices)


class TestConfiguration:
    def test_scaling_policy_names(self):
        assert set(SCALING_POLICIES) == {
            "lightweight",
            "proactive",
            "whole-group",
            "disabled",
        }

    def test_unknown_scaling_rejected(self):
        with pytest.raises(DeploymentError):
            ThriftyService(tiny_config(), scaling="magic")

    def test_ffd_grouping_option(self):
        service = ThriftyService(tiny_config(), grouping="ffd")
        assert service.advisor.grouping_name == "ffd"
