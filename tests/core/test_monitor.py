"""Tenant Activity Monitor tests: concurrency tracking and RT-TTP."""

import pytest

from repro.core.monitor import GroupActivityMonitor, TenantActivityMonitor
from repro.errors import DeploymentError
from repro.units import DAY, HOUR


@pytest.fixture
def monitor():
    m = GroupActivityMonitor("tg0", replication_factor=3)
    for tid in (1, 2, 3, 4, 5):
        m.register_tenant(tid, nodes_requested=4)
    return m


class TestConcurrencyTracking:
    def test_strong_activity_notion(self, monitor):
        # A tenant with two overlapping queries counts once.
        monitor.on_query_start(1, 0.0)
        monitor.on_query_start(1, 5.0)
        assert monitor.active_tenants() == {1}
        assert monitor.concurrency.value_at(6.0) == 1.0
        monitor.on_query_finish(1, 10.0)
        assert monitor.active_tenants() == {1}  # still one query running
        monitor.on_query_finish(1, 20.0)
        assert monitor.active_tenants() == set()
        assert monitor.concurrency.value_at(21.0) == 0.0

    def test_multiple_tenants(self, monitor):
        monitor.on_query_start(1, 0.0)
        monitor.on_query_start(2, 1.0)
        monitor.on_query_start(3, 2.0)
        assert monitor.concurrency.value_at(3.0) == 3.0

    def test_unregistered_tenant_rejected(self, monitor):
        with pytest.raises(DeploymentError):
            monitor.on_query_start(99, 0.0)

    def test_finish_without_start_rejected(self, monitor):
        with pytest.raises(DeploymentError):
            monitor.on_query_finish(1, 0.0)


class TestRTTTP:
    def test_perfect_window(self, monitor):
        monitor.on_query_start(1, 0.0)
        monitor.on_query_finish(1, 100.0)
        assert monitor.rt_ttp(DAY) == 1.0

    def test_violation_window(self, monitor):
        # Four tenants concurrently active for 1 % of a day.
        for tid in (1, 2, 3, 4):
            monitor.on_query_start(tid, 0.0)
        duration = 0.01 * DAY
        for tid in (1, 2, 3, 4):
            monitor.on_query_finish(tid, duration)
        assert monitor.rt_ttp(DAY) == pytest.approx(0.99)

    def test_window_clipped_to_start(self, monitor):
        # Early in the run the window is shorter than 24 h.
        monitor.on_query_start(1, 0.0)
        assert monitor.rt_ttp(HOUR) == 1.0

    def test_zero_length_window(self, monitor):
        assert monitor.rt_ttp(0.0) == 1.0

    def test_max_concurrent(self, monitor):
        for tid in (1, 2, 3, 4):
            monitor.on_query_start(tid, 10.0)
        for tid in (1, 2, 3, 4):
            monitor.on_query_finish(tid, 20.0)
        assert monitor.max_concurrent(100.0) == 4


class TestIntervalsAndItems:
    def test_tenant_busy_intervals(self, monitor):
        monitor.on_query_start(1, 10.0)
        monitor.on_query_finish(1, 20.0)
        monitor.on_query_start(1, 30.0)
        monitor.on_query_finish(1, 40.0)
        assert monitor.tenant_busy_intervals(1, 0.0, 100.0) == [(10.0, 20.0), (30.0, 40.0)]

    def test_open_interval_clipped_to_now(self, monitor):
        monitor.on_query_start(1, 10.0)
        assert monitor.tenant_busy_intervals(1, 0.0, 50.0) == [(10.0, 50.0)]

    def test_window_clipping(self, monitor):
        monitor.on_query_start(1, 0.0)
        monitor.on_query_finish(1, 100.0)
        assert monitor.tenant_busy_intervals(1, 50.0, 80.0) == [(50.0, 80.0)]

    def test_activity_items_relative_epochs(self, monitor):
        monitor.on_query_start(2, 100.0)
        monitor.on_query_finish(2, 130.0)
        items = monitor.activity_items(start=100.0, end=200.0, epoch_size=10.0)
        by_id = {item.tenant_id: item for item in items}
        assert by_id[2].epochs.tolist() == [0, 1, 2]
        assert by_id[1].epochs.size == 0
        assert by_id[2].nodes_requested == 4

    def test_unregistered_intervals_rejected(self, monitor):
        with pytest.raises(DeploymentError):
            monitor.tenant_busy_intervals(99, 0.0, 1.0)


class TestExclusion:
    def test_excluded_tenant_not_counted(self, monitor):
        monitor.on_query_start(1, 0.0)
        monitor.on_query_start(2, 0.0)
        monitor.exclude_tenant(2, 10.0)
        assert monitor.concurrency.value_at(11.0) == 1.0
        assert monitor.excluded_tenants == {2}
        # Subsequent events of the excluded tenant are ignored.
        monitor.on_query_start(2, 20.0)
        monitor.on_query_finish(2, 30.0)
        assert monitor.concurrency.value_at(25.0) == 1.0

    def test_exclusion_closes_open_interval(self, monitor):
        monitor.on_query_start(2, 0.0)
        monitor.exclude_tenant(2, 10.0)
        assert monitor.tenant_busy_intervals(2, 0.0, 100.0) == [(0.0, 10.0)]

    def test_exclusion_idempotent(self, monitor):
        monitor.exclude_tenant(3, 0.0)
        monitor.exclude_tenant(3, 1.0)
        assert monitor.excluded_tenants == {3}

    def test_excluded_not_in_activity_items(self, monitor):
        monitor.exclude_tenant(1, 0.0)
        items = monitor.activity_items(0.0, 100.0, 10.0)
        assert 1 not in {item.tenant_id for item in items}

    def test_rt_ttp_recovers_after_exclusion(self, monitor):
        # Four tenants active -> one excluded -> concurrency back to 3.
        for tid in (1, 2, 3, 4):
            monitor.on_query_start(tid, 0.0)
        monitor.exclude_tenant(4, 100.0)
        for tid in (1, 2, 3):
            monitor.on_query_finish(tid, 200.0)
        # Violation only during [0, 100).
        assert monitor.rt_ttp(1000.0, window_s=1000.0) == pytest.approx(0.9)


class TestServiceWideMonitor:
    def test_lazy_group_creation(self):
        service = TenantActivityMonitor(replication_factor=3)
        a = service.group("tg0")
        assert service.group("tg0") is a
        assert set(service.groups()) == {"tg0"}

    def test_groups_below_sla(self):
        service = TenantActivityMonitor(replication_factor=1)
        good = service.group("good")
        bad = service.group("bad")
        for m in (good, bad):
            m.register_tenant(1, 2)
            m.register_tenant(2, 2)
        # 'bad' has two tenants concurrently active half the time.
        bad.on_query_start(1, 0.0)
        bad.on_query_start(2, 0.0)
        bad.on_query_finish(1, 500.0)
        bad.on_query_finish(2, 500.0)
        good.on_query_start(1, 0.0)
        good.on_query_finish(1, 500.0)
        assert service.groups_below_sla(1000.0, sla_fraction=0.99, window_s=1000.0) == ["bad"]
