"""Pricing model tests (Ch. 3 pricing; §1.1 cost motivation)."""

import pytest

from repro.core.pricing import PricingModel, TenantInvoice
from repro.errors import ConfigurationError
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.tenant import TenantSpec


def _log(busy_hours: float, nodes: int = 4):
    spec = TenantSpec(tenant_id=1, nodes_requested=nodes, data_gb=nodes * 100.0)
    records = [
        QueryRecord(submit_time_s=0.0, latency_s=busy_hours * 3600.0, template="tpch.q1")
    ]
    return TenantLog(spec, records)


class TestInvoice:
    def test_amount(self):
        invoice = TenantInvoice(
            tenant_id=1, nodes_requested=4, active_hours=10.0, node_hour_rate=4.0
        )
        assert invoice.amount == 160.0

    def test_invoice_from_log(self):
        model = PricingModel(node_hour_rate=2.0)
        invoice = model.invoice(_log(busy_hours=3.0, nodes=4))
        assert invoice.active_hours == pytest.approx(3.0)
        assert invoice.amount == pytest.approx(4 * 3.0 * 2.0)

    def test_minimum_billable_hours(self):
        model = PricingModel(node_hour_rate=1.0, minimum_billable_hours=5.0)
        invoice = model.invoice(_log(busy_hours=1.0))
        assert invoice.active_hours == 5.0


class TestDedicatedComparison:
    def test_consolidated_cheaper_for_mostly_inactive_tenant(self):
        # §1.1: a tenant active 1 h/day pays far less than renting four
        # dedicated nodes around the clock.
        model = PricingModel(node_hour_rate=4.0)
        invoice = model.invoice(_log(busy_hours=1.0, nodes=4))
        dedicated = model.dedicated_cost(nodes=4, period_hours=24.0)
        assert invoice.amount < dedicated / 10

    def test_dedicated_cost(self):
        assert PricingModel(node_hour_rate=1.0).dedicated_cost(2, 10.0) == 20.0


class TestValidation:
    def test_rate_positive(self):
        with pytest.raises(ConfigurationError):
            PricingModel(node_hour_rate=0.0)

    def test_minimum_non_negative(self):
        with pytest.raises(ConfigurationError):
            PricingModel(minimum_billable_hours=-1.0)

    def test_dedicated_validation(self):
        model = PricingModel()
        with pytest.raises(ConfigurationError):
            model.dedicated_cost(0, 1.0)
        with pytest.raises(ConfigurationError):
            model.dedicated_cost(1, -1.0)
