"""Deployment Advisor tests."""

import pytest

from repro.core.advisor import DeploymentAdvisor, GROUPING_ALGORITHMS
from repro.errors import DeploymentError
from repro.workload.activity import ActivityMatrix
from repro.workload.tenant import TenantSpec
from tests.conftest import make_item, tiny_config


class TestPlanFromWorkload:
    def test_two_step_plan(self, config, workload):
        advisor = DeploymentAdvisor(config)
        result = advisor.plan_from_workload(workload)
        plan = result.plan
        assert plan.total_nodes_requested == workload.total_nodes_requested()
        assert 0.0 < plan.consolidation_effectiveness < 1.0
        # Every consolidated tenant appears exactly once.
        planned = {t for g in plan for t in g.placement.tenant_ids}
        excluded = {t.tenant_id for t in result.excluded}
        assert planned | excluded == set(workload.tenant_ids)
        assert not planned & excluded

    def test_plan_uses_replication_factor_instances(self, config, workload):
        result = DeploymentAdvisor(config).plan_from_workload(workload)
        for group in result.plan:
            assert group.design.num_instances == config.replication_factor

    def test_ffd_backend(self, config, workload):
        result = DeploymentAdvisor(config, grouping="ffd").plan_from_workload(workload)
        assert result.grouping.solver.startswith("ffd")

    def test_unknown_backend_rejected(self, config):
        with pytest.raises(DeploymentError):
            DeploymentAdvisor(config, grouping="magic")

    def test_available_backends(self):
        assert set(GROUPING_ALGORITHMS) == {"two-step", "ffd"}

    def test_epoch_size_override(self, config, workload):
        advisor = DeploymentAdvisor(config)
        result = advisor.plan_from_workload(workload, epoch_size=60.0)
        assert result.plan.total_nodes_used > 0


class TestExclusion:
    def _matrix_with_hog(self):
        # Tenant 1 is active in 80 % of epochs; tenant 2 is quiet.
        items = [
            make_item(1, 4, list(range(80))),
            make_item(2, 4, [0, 1]),
            make_item(3, 4, [5, 6]),
        ]
        return ActivityMatrix(items, num_epochs=100)

    def _specs(self, data_gb=400.0):
        return [
            TenantSpec(tenant_id=i, nodes_requested=4, data_gb=data_gb)
            for i in (1, 2, 3)
        ]

    def test_always_active_tenant_excluded(self):
        config = tiny_config()
        advisor = DeploymentAdvisor(config, max_active_fraction=0.5)
        result = advisor.plan_from_matrix(self._matrix_with_hog(), self._specs())
        assert [t.tenant_id for t in result.excluded] == [1]
        assert result.excluded_nodes == 4

    def test_oversized_tenant_excluded(self):
        config = tiny_config()
        advisor = DeploymentAdvisor(config, max_data_gb=300.0)
        specs = self._specs(400.0)
        # Make tenant 3 small enough to stay consolidable.
        specs[2] = TenantSpec(tenant_id=3, nodes_requested=4, data_gb=200.0)
        result = advisor.plan_from_matrix(self._matrix_with_hog(), specs)
        assert {t.tenant_id for t in result.excluded} == {1, 2}

    def test_all_excluded_rejected(self):
        config = tiny_config()
        advisor = DeploymentAdvisor(config, max_active_fraction=0.001)
        with pytest.raises(DeploymentError):
            advisor.plan_from_matrix(self._matrix_with_hog(), self._specs())

    def test_activity_for_unknown_tenant_rejected(self):
        config = tiny_config()
        advisor = DeploymentAdvisor(config)
        matrix = ActivityMatrix([make_item(9, 4, [0])], num_epochs=10)
        with pytest.raises(DeploymentError):
            advisor.plan_from_matrix(matrix, self._specs())

    def test_threshold_validation(self):
        with pytest.raises(DeploymentError):
            DeploymentAdvisor(tiny_config(), max_active_fraction=0.0)
        with pytest.raises(DeploymentError):
            DeploymentAdvisor(tiny_config(), max_data_gb=0.0)
