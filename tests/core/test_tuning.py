"""Manual tuning tests (Chapter 6)."""

import pytest

from repro.core.tdd import ClusterDesign
from repro.core.tuning import ManualTuner, recommended_tuning_nodes
from repro.errors import ConfigurationError


class TestRecommendedTuningNodes:
    def test_no_overflow_keeps_n(self):
        assert recommended_tuning_nodes(10, overflow_mpl=1) == 10

    def test_linear_queries_need_k_times_n(self):
        # Fair sharing: k concurrent queries each k x slower; a linear
        # query on U nodes is U/n faster -> U = k * n.
        assert recommended_tuning_nodes(10, overflow_mpl=2) == 20
        assert recommended_tuning_nodes(4, overflow_mpl=3) == 12

    def test_point_c_of_figure_1_1b(self):
        # Two tenants sharing a 6-node MPPDB still beat their 2-node SLA:
        # U = 4 <= 6 suffices for MPL 2 at n = 2.
        assert recommended_tuning_nodes(2, overflow_mpl=2) <= 6

    def test_serial_fraction_needs_more(self):
        linear = recommended_tuning_nodes(4, overflow_mpl=2)
        amdahl = recommended_tuning_nodes(4, overflow_mpl=2, serial_fraction=0.05)
        assert amdahl > linear

    def test_non_linear_queries_may_be_impossible(self):
        # R4's hard case: with a large serial fraction no U absorbs the
        # overflow — the future-work divergent design's motivation.
        with pytest.raises(ConfigurationError):
            recommended_tuning_nodes(4, overflow_mpl=3, serial_fraction=0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            recommended_tuning_nodes(0, 1)
        with pytest.raises(ConfigurationError):
            recommended_tuning_nodes(4, 0)
        with pytest.raises(ConfigurationError):
            recommended_tuning_nodes(4, 2, serial_fraction=1.0)


class TestManualTuner:
    def _design(self, u=4):
        return ClusterDesign("tg0", num_instances=3, parallelism=4, tuning_parallelism=u)

    def test_retune_raises_u(self):
        tuner = ManualTuner(max_overhead_nodes=8)
        retuned = tuner.retune(self._design(), overflow_mpl=2)
        assert retuned.tuning_parallelism == 8
        assert retuned.parallelism == 4
        assert retuned.total_nodes == 8 + 2 * 4

    def test_never_lowers_existing_u(self):
        tuner = ManualTuner(max_overhead_nodes=8)
        retuned = tuner.retune(self._design(u=10), overflow_mpl=2)
        assert retuned.tuning_parallelism == 10

    def test_cap_defers_to_elastic_scaling(self):
        tuner = ManualTuner(max_overhead_nodes=2)
        with pytest.raises(ConfigurationError):
            tuner.retune(self._design(), overflow_mpl=3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ManualTuner(max_overhead_nodes=-1)
