"""RetryPolicy and FaultRecord unit tests (fault-tolerance plane)."""

import pytest

from repro.core.fault import (
    DEFAULT_RETRY_POLICY,
    REASON_DEADLINE_EXCEEDED,
    REASON_RETRIES_EXHAUSTED,
    FaultRecord,
    RetryPolicy,
)
from repro.errors import FailoverDeadlineError, FaultError, RetriesExhaustedError
from repro.rng import RngFactory


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"multiplier": 0.5},
            {"max_delay_s": 0.5, "base_delay_s": 1.0},
            {"jitter_fraction": -0.1},
            {"jitter_fraction": 1.0},
            {"queue_deadline_s": 0.0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(FaultError):
            RetryPolicy(**kwargs)

    def test_bad_attempt_number_raises(self):
        with pytest.raises(FaultError):
            DEFAULT_RETRY_POLICY.backoff_s(0)


class TestBackoff:
    def test_exponential_progression(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0, max_delay_s=1000.0)
        assert [policy.backoff_s(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=10.0, max_delay_s=50.0)
        assert policy.backoff_s(1) == 1.0
        assert policy.backoff_s(2) == 10.0
        assert policy.backoff_s(3) == 50.0
        assert policy.backoff_s(9) == 50.0

    def test_jitter_ignored_without_rng(self):
        policy = RetryPolicy(jitter_fraction=0.5)
        assert policy.backoff_s(1) == policy.base_delay_s

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=10.0, jitter_fraction=0.2, max_delay_s=100.0)
        rng = RngFactory(99).stream("fault", "bounds")
        for _ in range(200):
            delay = policy.backoff_s(1, rng)
            assert 8.0 <= delay <= 12.0

    def test_jitter_deterministic_under_seeded_rng(self):
        policy = RetryPolicy(base_delay_s=5.0, jitter_fraction=0.3, max_delay_s=500.0)
        first = [
            policy.backoff_s(n, RngFactory(42).stream("fault", "g")) for n in (1, 2, 3)
        ]
        second = [
            policy.backoff_s(n, RngFactory(42).stream("fault", "g")) for n in (1, 2, 3)
        ]
        assert first == second
        different = [
            policy.backoff_s(n, RngFactory(43).stream("fault", "g")) for n in (1, 2, 3)
        ]
        assert first != different


class TestFaultRecord:
    def _record(self, reason):
        return FaultRecord(
            tenant_id=7,
            group_name="tg0",
            template="q3",
            submit_time_s=10.0,
            failed_time_s=99.0,
            reason=reason,
            attempts=4,
        )

    def test_retries_exhausted_error(self):
        error = self._record(REASON_RETRIES_EXHAUSTED).as_error()
        assert isinstance(error, RetriesExhaustedError)
        assert "tenant 7" in str(error)

    def test_deadline_error(self):
        error = self._record(REASON_DEADLINE_EXCEEDED).as_error()
        assert isinstance(error, FailoverDeadlineError)

    def test_unknown_reason_falls_back_to_fault_error(self):
        error = self._record("mystery").as_error()
        assert type(error) is FaultError
