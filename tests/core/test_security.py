"""Adjustable-security tests (Ch. 8 future work item 2)."""

import pytest

from repro.core.security import (
    AdjustableSecurityPolicy,
    SecurityScheme,
    secure_log,
)
from repro.errors import ConfigurationError
from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import two_step_grouping
from repro.workload.activity import ActivityItem, active_epoch_indices
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.tenant import TenantSpec


def _log(tenant_id=1, latency=10.0):
    spec = TenantSpec(tenant_id=tenant_id, nodes_requested=2, data_gb=200.0)
    records = [
        QueryRecord(submit_time_s=100.0 * i, latency_s=latency, template="tpch.q1")
        for i in range(3)
    ]
    return TenantLog(spec, records)


class TestPolicy:
    def test_default_plaintext(self):
        policy = AdjustableSecurityPolicy()
        assert policy.scheme_of(42) is SecurityScheme.PLAINTEXT
        assert policy.overhead_of(42) == 1.0

    def test_assignments(self):
        policy = AdjustableSecurityPolicy(
            assignments={1: SecurityScheme.HOMOMORPHIC, 2: SecurityScheme.ONION}
        )
        assert policy.scheme_of(1) is SecurityScheme.HOMOMORPHIC
        assert policy.overhead_of(1) > policy.overhead_of(2) > policy.overhead_of(3)

    def test_overheads_ordered_by_strength(self):
        policy = AdjustableSecurityPolicy()
        overheads = [
            policy.overheads[s]
            for s in (
                SecurityScheme.PLAINTEXT,
                SecurityScheme.DETERMINISTIC,
                SecurityScheme.ONION,
                SecurityScheme.HOMOMORPHIC,
            )
        ]
        assert overheads == sorted(overheads)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdjustableSecurityPolicy(overheads={SecurityScheme.PLAINTEXT: 1.0})
        bad = dict(AdjustableSecurityPolicy().overheads)
        bad[SecurityScheme.ONION] = 0.5
        with pytest.raises(ConfigurationError):
            AdjustableSecurityPolicy(overheads=bad)
        bad = dict(AdjustableSecurityPolicy().overheads)
        bad[SecurityScheme.PLAINTEXT] = 1.2
        with pytest.raises(ConfigurationError):
            AdjustableSecurityPolicy(overheads=bad)


class TestSecureLog:
    def test_plaintext_is_identity(self):
        log = _log()
        assert secure_log(log, AdjustableSecurityPolicy()) is log

    def test_latencies_stretched(self):
        policy = AdjustableSecurityPolicy(assignments={1: SecurityScheme.ONION})
        secured = secure_log(_log(latency=10.0), policy)
        assert all(r.latency_s == pytest.approx(13.0) for r in secured.records)
        assert all(
            a.submit_time_s == b.submit_time_s
            for a, b in zip(secured.records, _log().records)
        )

    def test_activity_grows_with_security(self):
        plain = _log(latency=10.0)
        policy = AdjustableSecurityPolicy(assignments={1: SecurityScheme.HOMOMORPHIC})
        secured = secure_log(plain, policy)
        assert secured.total_busy_seconds() > plain.total_busy_seconds()

    def test_sla_neutrality(self):
        # The stretched latency is both the baseline and (absent cross-
        # tenant interference) the observed latency -> normalized 1.0.
        policy = AdjustableSecurityPolicy(assignments={1: SecurityScheme.ONION})
        secured = secure_log(_log(), policy)
        for record in secured.records:
            assert record.latency_s / record.latency_s == 1.0


class TestConsolidationCost:
    def test_stronger_security_consolidates_worse(self):
        # Ten tenants with adjacent busy blocks; under homomorphic
        # overhead the blocks stretch into overlap, so fewer fit per
        # group at R = 1, P = 100 %.
        def items_with(policy):
            items = []
            for tenant_id in range(10):
                spec = TenantSpec(
                    tenant_id=tenant_id, nodes_requested=2, data_gb=200.0
                )
                log = TenantLog(
                    spec,
                    [
                        QueryRecord(
                            submit_time_s=tenant_id * 100.0,
                            latency_s=90.0,
                            template="tpch.q1",
                        )
                    ],
                )
                secured = secure_log(log, policy)
                items.append(
                    ActivityItem(
                        tenant_id=tenant_id,
                        nodes_requested=2,
                        epochs=active_epoch_indices(secured.busy_intervals(), 10.0),
                    )
                )
            return items

        def effectiveness(policy):
            problem = LIVBPwFCProblem(
                items=tuple(items_with(policy)),
                num_epochs=400,
                replication_factor=1,
                sla_fraction=1.0,
            )
            return two_step_grouping(problem).consolidation_effectiveness

        plain = effectiveness(AdjustableSecurityPolicy())
        secured = effectiveness(
            AdjustableSecurityPolicy(default_scheme=SecurityScheme.HOMOMORPHIC)
        )
        assert secured < plain
