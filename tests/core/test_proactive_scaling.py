"""Proactive scaling policy tests (Ch. 5.1's rejected alternative)."""

import pytest

from repro.core.scaling import ProactiveScaling
from repro.errors import ScalingError


class TestPredictor:
    def test_too_few_samples(self):
        policy = ProactiveScaling(min_samples=4)
        policy._samples["g"] = [(0.0, 1.0), (1.0, 0.99)]
        assert policy.predict_rt_ttp("g", 10.0) is None

    def test_linear_trend_extrapolation(self):
        policy = ProactiveScaling(min_samples=3)
        policy._samples["g"] = [(0.0, 1.0), (100.0, 0.999), (200.0, 0.998), (300.0, 0.997)]
        predicted = policy.predict_rt_ttp("g", 400.0)
        assert predicted == pytest.approx(0.996, abs=1e-6)

    def test_flat_series_predicts_constant(self):
        policy = ProactiveScaling(min_samples=3)
        policy._samples["g"] = [(0.0, 0.9995), (100.0, 0.9995), (200.0, 0.9995)]
        assert policy.predict_rt_ttp("g", 10_000.0) == pytest.approx(0.9995)

    def test_unknown_group(self):
        assert ProactiveScaling().predict_rt_ttp("missing", 0.0) is None


class TestTrigger:
    def test_fires_on_declining_trend_before_violation(self):
        # RT-TTP still above P but falling fast: proactive fires as soon
        # as the fitted trend reaches P within the lead time — a reactive
        # policy would still be idle (every observation is >= P).
        policy = ProactiveScaling(min_samples=3, lead_time_s=1000.0)
        series = [(0.0, 1.0), (100.0, 0.9998), (200.0, 0.9996), (300.0, 0.9994)]
        fired = [policy._should_scale(t, "g", v, 0.999) for t, v in series]
        assert not any(fired[:2])  # below min_samples: no prediction yet
        assert any(fired[2:])

    def test_does_not_fire_on_stable_series(self):
        policy = ProactiveScaling(min_samples=3, lead_time_s=1000.0)
        fired = [
            policy._should_scale(t, "g", 0.9995, 0.999)
            for t in (0.0, 100.0, 200.0, 300.0, 400.0)
        ]
        assert not any(fired)

    def test_reacts_when_already_violating(self):
        policy = ProactiveScaling(min_samples=10)
        assert policy._should_scale(0.0, "g", 0.99, 0.999)

    def test_spike_susceptibility(self):
        # The paper's caveat: a sharp drop followed by a sharp rise still
        # leaves a falling fitted trend, so the proactive policy fires on
        # a one-off spike a reactive policy would have ridden out.
        policy = ProactiveScaling(min_samples=4, lead_time_s=50_000.0)
        series = [(0.0, 1.0), (600.0, 1.0), (1200.0, 0.9992), (1800.0, 0.99985)]
        fired = [policy._should_scale(t, "g", v, 0.999) for t, v in series]
        assert fired[-1]  # fires even though RT-TTP is back near 1.0


class TestValidation:
    def test_lead_time_positive(self):
        with pytest.raises(ScalingError):
            ProactiveScaling(lead_time_s=0.0)

    def test_min_samples(self):
        with pytest.raises(ScalingError):
            ProactiveScaling(min_samples=1)
