"""TDD cluster design and tenant placement tests (Ch. 4.1–4.2)."""

import pytest

from repro.core.tdd import ClusterDesign, TenantPlacement, design_for_group
from repro.errors import DeploymentError
from repro.workload.tenant import TenantSpec


def _tenants(*sizes):
    return [
        TenantSpec(tenant_id=i, nodes_requested=n, data_gb=n * 100.0)
        for i, n in enumerate(sizes, start=1)
    ]


class TestFigure41ToyExample:
    """The Figure 4.1 walkthrough: 10 tenants, 42 requested nodes."""

    SIZES = (6, 6, 5, 5, 5, 4, 4, 3, 2, 2)

    def test_cluster_design(self):
        design, placement = design_for_group("tg0", _tenants(*self.SIZES), num_instances=3)
        assert design.parallelism == 6
        assert design.tuning_parallelism == 6  # U = n_1 default (§7.2)
        assert design.total_nodes == 18
        assert sum(self.SIZES) == 42  # requested before consolidation

    def test_placement_hosts_every_tenant_everywhere(self):
        __, placement = design_for_group("tg0", _tenants(*self.SIZES), num_instances=3)
        assert len(placement.tenant_ids) == 10
        assert placement.replication_factor == 3  # Property 1
        for tenant_id in placement.tenant_ids:
            assert placement.instances_of(tenant_id) == placement.instance_names

    def test_instance_names_tuning_first(self):
        design, __ = design_for_group("tg0", _tenants(*self.SIZES), num_instances=3)
        assert design.instance_names() == ["tg0/mppdb0", "tg0/mppdb1", "tg0/mppdb2"]
        assert design.instance_parallelism(0) == design.tuning_parallelism


class TestTuningParallelism:
    def test_custom_u(self):
        design, __ = design_for_group(
            "tg0", _tenants(6, 6, 5, 6), num_instances=3, tuning_parallelism=8
        )
        assert design.tuning_parallelism == 8
        assert design.total_nodes == 8 + 2 * 6

    def test_u_below_largest_rejected(self):
        with pytest.raises(DeploymentError):
            design_for_group("tg0", _tenants(6, 6), num_instances=2, tuning_parallelism=4)

    def test_u_upper_bound(self):
        # n_1 <= U <= N - (A-1) n_1; with tenants (6,6,5) and A = 3:
        # upper bound = 17 - 12 = 5 < 6 -> bound relaxes to n_1 = 6.
        tenants = _tenants(6, 6, 6, 6)
        # N = 24, A = 3 -> upper = 24 - 12 = 12.
        design_for_group("tg0", tenants, num_instances=3, tuning_parallelism=12)
        with pytest.raises(DeploymentError):
            design_for_group("tg0", tenants, num_instances=3, tuning_parallelism=13)

    def test_instance_parallelism_by_index(self):
        design, __ = design_for_group(
            "tg0", _tenants(4, 4, 4, 4, 4), num_instances=3, tuning_parallelism=6
        )
        assert design.instance_parallelism(0) == 6
        assert design.instance_parallelism(1) == 4
        assert design.instance_parallelism(2) == 4
        with pytest.raises(DeploymentError):
            design.instance_parallelism(3)


class TestValidation:
    def test_empty_group_rejected(self):
        with pytest.raises(DeploymentError):
            design_for_group("tg0", [], num_instances=3)

    def test_design_validation(self):
        with pytest.raises(DeploymentError):
            ClusterDesign("tg0", num_instances=0, parallelism=4, tuning_parallelism=4)
        with pytest.raises(DeploymentError):
            ClusterDesign("tg0", num_instances=3, parallelism=0, tuning_parallelism=4)
        with pytest.raises(DeploymentError):
            ClusterDesign("tg0", num_instances=3, parallelism=4, tuning_parallelism=2)

    def test_placement_validation(self):
        with pytest.raises(DeploymentError):
            TenantPlacement("tg0", tenant_ids=(), instance_names=("a",))
        with pytest.raises(DeploymentError):
            TenantPlacement("tg0", tenant_ids=(1,), instance_names=())
        with pytest.raises(DeploymentError):
            TenantPlacement("tg0", tenant_ids=(1, 1), instance_names=("a",))

    def test_unknown_tenant_in_placement(self):
        __, placement = design_for_group("tg0", _tenants(4), num_instances=2)
        with pytest.raises(DeploymentError):
            placement.instances_of(999)

    def test_a_equals_one_allowed(self):
        # R = 1 means a single MPPDB per group (no replication).
        design, placement = design_for_group("tg0", _tenants(4, 4), num_instances=1)
        assert design.total_nodes == 4
        assert placement.replication_factor == 1
