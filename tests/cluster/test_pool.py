"""Machine pool tests: allocation, elasticity, failures, hibernation."""

import pytest

from repro.cluster.node import NodeState
from repro.cluster.pool import MachinePool
from repro.errors import CapacityError, ClusterError


class TestAllocation:
    def test_allocate_hands_out_starting_nodes(self):
        pool = MachinePool(10)
        nodes = pool.allocate(4, "mppdb0")
        assert len(nodes) == 4
        assert all(n.state == NodeState.STARTING for n in nodes)
        assert all(n.assigned_to == "mppdb0" for n in nodes)
        assert pool.available_count == 6
        assert pool.in_use_count == 4

    def test_zero_count_rejected(self):
        with pytest.raises(ClusterError):
            MachinePool(4).allocate(0, "x")

    def test_inelastic_pool_enforces_capacity(self):
        pool = MachinePool(2, elastic=False)
        with pytest.raises(CapacityError):
            pool.allocate(3, "x")

    def test_elastic_pool_grows(self):
        pool = MachinePool(2, elastic=True)
        nodes = pool.allocate(5, "x")
        assert len(nodes) == 5
        assert len(pool) == 5
        assert pool.rented_nodes == 3

    def test_release_owner(self):
        pool = MachinePool(6)
        pool.allocate(4, "a")
        assert pool.release_owner("a") == 4
        assert pool.available_count == 6

    def test_owners_mapping(self):
        pool = MachinePool(6)
        pool.allocate(2, "a")
        pool.allocate(3, "b")
        owners = pool.owners()
        assert sorted(owners) == ["a", "b"]
        assert len(owners["a"]) == 2
        assert len(owners["b"]) == 3

    def test_nodes_of(self):
        pool = MachinePool(4)
        pool.allocate(2, "a")
        assert len(pool.nodes_of("a")) == 2
        assert pool.nodes_of("missing") == []


class TestFailureHandling:
    def test_fail_and_replace(self):
        pool = MachinePool(6)
        nodes = pool.allocate(2, "a")
        for n in nodes:
            n.mark_running()
        failed = pool.fail_node(nodes[0].node_id)
        assert failed.state == NodeState.FAILED
        replacement = pool.replace_failed(failed, "a")
        assert replacement.assigned_to == "a"
        assert replacement.node_id != failed.node_id

    def test_replace_requires_failed_node(self):
        pool = MachinePool(4)
        nodes = pool.allocate(1, "a")
        with pytest.raises(ClusterError):
            pool.replace_failed(nodes[0], "a")

    def test_release_owner_repairs_failed_nodes(self):
        pool = MachinePool(4)
        nodes = pool.allocate(2, "a")
        for n in nodes:
            n.mark_running()
        pool.fail_node(nodes[0].node_id)
        assert pool.release_owner("a") == 2
        assert pool.available_count == 4

    def test_unknown_node_id_rejected(self):
        with pytest.raises(ClusterError):
            MachinePool(2).node(99)


class TestReporting:
    def test_utilization_summary(self):
        pool = MachinePool(5)
        nodes = pool.allocate(2, "a")
        nodes[0].mark_running()
        summary = pool.utilization_summary()
        assert summary["hibernated"] == 3
        assert summary["starting"] == 1
        assert summary["running"] == 1
        assert summary["failed"] == 0

    def test_nodes_in_state(self):
        pool = MachinePool(3)
        pool.allocate(1, "a")
        assert len(pool.nodes_in_state(NodeState.HIBERNATED)) == 2
        assert len(pool.nodes_in_state(NodeState.STARTING)) == 1
