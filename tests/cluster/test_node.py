"""Node lifecycle tests."""

import pytest

from repro.cluster.node import DEFAULT_NODE_SPEC, Node, NodeSpec, NodeState
from repro.errors import ClusterError


class TestNodeSpec:
    def test_default_matches_ec2_extra_large(self):
        # §7.2: Amazon EC2 Extra Large — 15 GB memory, 8 compute units.
        assert DEFAULT_NODE_SPEC.ram_gb == 15.0
        assert DEFAULT_NODE_SPEC.cpu_units == 8

    def test_invalid_specs_rejected(self):
        with pytest.raises(ClusterError):
            NodeSpec(cpu_units=0)
        with pytest.raises(ClusterError):
            NodeSpec(ram_gb=0)
        with pytest.raises(ClusterError):
            NodeSpec(io_mb_per_s=-1)


class TestNodeLifecycle:
    def test_initial_state(self):
        node = Node(0)
        assert node.state == NodeState.HIBERNATED
        assert node.is_available
        assert node.assigned_to is None

    def test_negative_id_rejected(self):
        with pytest.raises(ClusterError):
            Node(-1)

    def test_assign_start_run(self):
        node = Node(0)
        node.assign("mppdb0")
        assert node.state == NodeState.STARTING
        assert node.assigned_to == "mppdb0"
        assert not node.is_available
        node.mark_running()
        assert node.state == NodeState.RUNNING

    def test_double_assign_rejected(self):
        node = Node(0)
        node.assign("a")
        with pytest.raises(ClusterError):
            node.assign("b")

    def test_mark_running_requires_starting(self):
        with pytest.raises(ClusterError):
            Node(0).mark_running()

    def test_release_returns_to_pool(self):
        node = Node(0)
        node.assign("a")
        node.mark_running()
        node.release()
        assert node.is_available

    def test_release_unassigned_rejected(self):
        with pytest.raises(ClusterError):
            Node(0).release()

    def test_failure_and_repair(self):
        node = Node(0)
        node.assign("a")
        node.mark_running()
        node.fail()
        assert node.state == NodeState.FAILED
        assert not node.is_available
        node.repair()
        assert node.is_available

    def test_hibernated_node_cannot_fail(self):
        with pytest.raises(ClusterError):
            Node(0).fail()

    def test_repair_requires_failed(self):
        node = Node(0)
        with pytest.raises(ClusterError):
            node.repair()
