"""Failure injector tests."""

import numpy as np
import pytest

from repro.cluster.failures import FailureInjector
from repro.cluster.pool import MachinePool
from repro.errors import ClusterError
from repro.simulation.engine import Simulator


def _running_pool(size: int, owner: str = "mppdb0") -> MachinePool:
    pool = MachinePool(size)
    for node in pool.allocate(size, owner):
        node.mark_running()
    return pool


class TestFailureInjector:
    def test_invalid_mtbf_rejected(self):
        with pytest.raises(ClusterError):
            FailureInjector(MachinePool(1), Simulator(), 0.0, np.random.default_rng(0))

    def test_inject_now(self):
        pool = _running_pool(2)
        sim = Simulator()
        injector = FailureInjector(pool, sim, mtbf_s=1e9, rng=np.random.default_rng(0))
        failure = injector.inject_now(0)
        assert failure.node_id == 0
        assert failure.owner == "mppdb0"
        assert pool.node(0).state.value == "failed"

    def test_handler_notified(self):
        pool = _running_pool(1)
        sim = Simulator()
        injector = FailureInjector(pool, sim, mtbf_s=1e9, rng=np.random.default_rng(0))
        seen = []
        injector.on_failure(seen.append)
        injector.inject_now(0)
        assert len(seen) == 1
        assert seen[0].node_id == 0

    def test_arm_schedules_exponential_failures(self):
        pool = _running_pool(4)
        sim = Simulator()
        injector = FailureInjector(pool, sim, mtbf_s=100.0, rng=np.random.default_rng(1))
        scheduled = injector.arm(horizon=1000.0)
        assert scheduled > 0
        sim.run(until=1000.0)
        # A node can only fail once; further events on it are ignored.
        assert 0 < len(injector.failures) <= 4

    def test_no_failures_beyond_horizon(self):
        pool = _running_pool(2)
        sim = Simulator()
        injector = FailureInjector(pool, sim, mtbf_s=1e12, rng=np.random.default_rng(2))
        assert injector.arm(horizon=10.0) == 0

    def test_replacement_workflow(self):
        # Ch. 4.4: "Thrifty will replace a failed node by starting a new
        # node upon receiving node failure notification".
        pool = _running_pool(2)
        sim = Simulator()
        injector = FailureInjector(pool, sim, mtbf_s=1e9, rng=np.random.default_rng(0))
        replacements = []
        injector.on_failure(
            lambda f: replacements.append(pool.replace_failed(pool.node(f.node_id), f.owner))
        )
        injector.inject_now(1)
        assert len(replacements) == 1
        assert replacements[0].assigned_to == "mppdb0"
