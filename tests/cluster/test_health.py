"""HealthManager scenarios: degrade, replace, recover, run out of capacity."""

import pytest

from repro.cluster.failures import FailureInjector, NodeFailure
from repro.cluster.health import HealthManager
from repro.mppdb.catalog import TenantData
from repro.mppdb.instance import InstanceState
from repro.mppdb.provisioning import Provisioner
from repro.obs import MemorySink, Observer
from repro.rng import RngFactory
from repro.simulation.engine import Simulator


def _setup(pool_size=8, elastic=True, observer=None, parallelism=2):
    from repro.cluster.pool import MachinePool

    sim = Simulator()
    pool = MachinePool(pool_size, elastic=elastic)
    provisioner = Provisioner(sim, pool=pool)
    health = HealthManager(pool, provisioner, sim, observer=observer)
    injector = FailureInjector(pool, sim, 1e12, RngFactory(5).stream("chaos", "t"))
    health.watch(injector)
    instance = provisioner.provision(
        parallelism, [TenantData(tenant_id=1, data_gb=4.0)], name="tg0/mppdb0", instant=True
    )
    return sim, pool, provisioner, health, injector, instance


class TestFailureHandling:
    def test_failure_degrades_and_replaces(self):
        sim, pool, provisioner, health, injector, instance = _setup()
        execution = instance.submit_query(1, 500.0)
        sim.run(until=10.0)
        victim = instance.node_ids[0]
        injector.inject_now(victim)

        assert instance.state is InstanceState.DEGRADED
        assert execution.aborted
        assert health.node_failures_handled == 1
        assert health.replacements_started == 1
        assert health.degraded_instances == ["tg0/mppdb0"]
        # The replacement is a different node, already swapped into node_ids.
        assert victim not in instance.node_ids

    def test_recovery_restores_ready_and_fires_handlers(self):
        sim, _, provisioner, health, injector, instance = _setup()
        recoveries = []
        health.on_recover(lambda inst, t: recoveries.append((inst.name, t)))
        injector.inject_now(instance.node_ids[0])
        shard_gb = instance.catalog.total_data_gb / instance.parallelism
        delay = provisioner.load_model.provision_seconds(1, shard_gb)
        sim.run()

        assert instance.state is InstanceState.READY
        assert health.replacements_completed == 1
        assert health.degraded_instances == []
        assert recoveries == [("tg0/mppdb0", pytest.approx(delay))]

    def test_degraded_seconds_metric(self):
        observer = Observer(MemorySink())
        sim, _, provisioner, health, injector, instance = _setup(observer=observer)
        injector.inject_now(instance.node_ids[0])
        shard_gb = instance.catalog.total_data_gb / instance.parallelism
        delay = provisioner.load_model.provision_seconds(1, shard_gb)
        sim.run()

        assert observer.node_failures.value(instance="tg0/mppdb0") == 1.0
        assert observer.instance_degraded_seconds.value(
            instance="tg0/mppdb0"
        ) == pytest.approx(delay)

    def test_replace_span_lifecycle(self):
        sink = MemorySink()
        sim, _, _, health, injector, instance = _setup(observer=Observer(sink))
        injector.inject_now(instance.node_ids[0])
        sim.run()
        spans = [s for s in sink.spans if s.name == "replace"]
        assert len(spans) == 1
        (span,) = spans
        assert span.kind == "fault"
        assert span.status == "replaced"
        assert any(e.name == "recovered" for e in span.events)


class TestCapacityExhaustion:
    def test_no_capacity_marks_instance_down(self):
        sink = MemorySink()
        sim, pool, _, health, injector, instance = _setup(
            pool_size=2, elastic=False, observer=Observer(sink)
        )
        assert pool.available_count == 0
        injector.inject_now(instance.node_ids[0])

        assert instance.state is InstanceState.DOWN
        assert health.replacements_started == 0
        spans = [s for s in sink.spans if s.name == "replace"]
        assert spans and spans[0].status == "no-capacity"


class TestIgnoredFailures:
    def test_unowned_failure_ignored(self):
        _, _, _, health, _, instance = _setup()
        health.handle_failure(NodeFailure(node_id=0, time=0.0, owner=None))
        assert health.node_failures_handled == 0
        assert instance.state is InstanceState.READY

    def test_foreign_owner_ignored(self):
        _, _, _, health, _, instance = _setup()
        health.handle_failure(NodeFailure(node_id=0, time=0.0, owner="not-an-mppdb"))
        assert health.node_failures_handled == 0

    def test_retired_instance_ignored(self):
        sim, _, provisioner, health, injector, instance = _setup()
        node_id = instance.node_ids[0]
        provisioner.retire(instance)
        health.handle_failure(NodeFailure(node_id=node_id, time=sim.now, owner=instance.name))
        assert health.node_failures_handled == 0
        assert instance.state is InstanceState.RETIRED


class TestProvisioningWindowFailures:
    def test_failure_during_provisioning_replaced_silently(self):
        from repro.cluster.pool import MachinePool

        sim = Simulator()
        pool = MachinePool(8)
        provisioner = Provisioner(sim, pool=pool)
        health = HealthManager(pool, provisioner, sim)
        injector = FailureInjector(pool, sim, 1e12, RngFactory(5).stream("chaos", "t"))
        health.watch(injector)
        instance = provisioner.provision(
            2, [TenantData(tenant_id=1, data_gb=4.0)], name="tg0/mppdb0"
        )
        assert instance.state is InstanceState.PROVISIONING
        sim.schedule(5.0, lambda t: injector.inject_now(instance.node_ids[0]))
        sim.run()

        assert health.node_failures_handled == 1
        assert health.replacements_completed == 1
        assert instance.state is InstanceState.READY


class TestFinalize:
    def test_finalize_accounts_open_episode(self):
        sink = MemorySink()
        observer = Observer(sink)
        sim, _, _, health, injector, instance = _setup(observer=observer)
        injector.inject_now(instance.node_ids[0])
        # Horizon hits while the replacement is still loading.
        health.finalize(100.0)

        assert health.degraded_instances == []
        assert observer.instance_degraded_seconds.value(
            instance="tg0/mppdb0"
        ) == pytest.approx(100.0)
        spans = [s for s in sink.spans if s.name == "replace"]
        assert spans and spans[0].status == "inflight"
