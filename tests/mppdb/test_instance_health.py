"""Instance-level fault-tolerance state machine (DEGRADED/DOWN/recovery)."""

import pytest

from repro.errors import MPPDBError
from repro.mppdb.catalog import TenantData
from repro.mppdb.instance import InstanceState, MPPDBInstance
from repro.simulation.engine import Simulator


def _ready_instance(parallelism=3, node_ids=(10, 11, 12)):
    sim = Simulator()
    instance = MPPDBInstance("tg0/mppdb0", parallelism, sim, node_ids=node_ids)
    instance.deploy_tenant(TenantData(tenant_id=1, data_gb=2.0))
    instance.mark_ready()
    return sim, instance


class TestNodeFailure:
    def test_failure_degrades_ready_instance(self):
        _, instance = _ready_instance()
        instance.record_node_failure(10)
        assert instance.state is InstanceState.DEGRADED
        assert instance.failed_nodes == {10}
        assert not instance.is_ready

    def test_all_nodes_failed_is_down(self):
        _, instance = _ready_instance()
        for node_id in (10, 11, 12):
            instance.record_node_failure(node_id)
        assert instance.state is InstanceState.DOWN
        assert instance.impaired_node_count == 3

    def test_foreign_node_rejected(self):
        _, instance = _ready_instance()
        with pytest.raises(MPPDBError):
            instance.record_node_failure(999)

    def test_abort_running_kills_inflight_queries(self):
        sim, instance = _ready_instance()
        execution = instance.submit_query(1, 100.0)
        sim.run(until=5.0)
        instance.record_node_failure(11)
        aborted = instance.abort_running()
        assert aborted == [execution]
        assert execution.aborted


class TestNodeReplacement:
    def test_replacement_swaps_node_ids(self):
        _, instance = _ready_instance()
        instance.record_node_failure(11)
        instance.begin_node_replacement(11, 42, token=1)
        assert instance.node_ids == (10, 42, 12)
        assert instance.recovering_nodes == {42}
        assert instance.state is InstanceState.DEGRADED

    def test_completion_restores_ready(self):
        _, instance = _ready_instance()
        instance.record_node_failure(11)
        instance.begin_node_replacement(11, 42, token=1)
        assert instance.complete_node_replacement(42, token=1) is True
        assert instance.state is InstanceState.READY
        assert instance.impaired_node_count == 0

    def test_stale_token_rejected(self):
        _, instance = _ready_instance()
        instance.record_node_failure(11)
        instance.begin_node_replacement(11, 42, token=1)
        # The replacement itself fails mid-load; a fresh one is issued.
        instance.record_node_failure(42)
        instance.begin_node_replacement(42, 43, token=2)
        assert instance.complete_node_replacement(42, token=1) is False
        assert instance.state is InstanceState.DEGRADED
        assert instance.complete_node_replacement(43, token=2) is True
        assert instance.state is InstanceState.READY

    def test_replacing_healthy_node_rejected(self):
        _, instance = _ready_instance()
        with pytest.raises(MPPDBError):
            instance.begin_node_replacement(10, 42, token=1)

    def test_partial_recovery_stays_degraded(self):
        _, instance = _ready_instance()
        instance.record_node_failure(10)
        instance.record_node_failure(11)
        instance.begin_node_replacement(10, 40, token=1)
        instance.complete_node_replacement(40, token=1)
        assert instance.state is InstanceState.DEGRADED
        instance.begin_node_replacement(11, 41, token=2)
        instance.complete_node_replacement(41, token=2)
        assert instance.state is InstanceState.READY

    def test_down_instance_recovers_through_replacement(self):
        _, instance = _ready_instance(parallelism=1, node_ids=(10,))
        instance.record_node_failure(10)
        assert instance.state is InstanceState.DOWN
        instance.begin_node_replacement(10, 42, token=1)
        instance.complete_node_replacement(42, token=1)
        assert instance.state is InstanceState.READY


class TestProvisioningFailures:
    def test_mark_ready_lands_degraded_when_impaired(self):
        sim = Simulator()
        instance = MPPDBInstance("tg1/mppdb0", 2, sim, node_ids=(20, 21))
        instance.record_node_failure(20)
        instance.mark_ready()
        assert instance.state is InstanceState.DEGRADED

    def test_degraded_instance_rejects_queries(self):
        _, instance = _ready_instance()
        instance.record_node_failure(10)
        from repro.errors import InstanceNotReadyError

        with pytest.raises(InstanceNotReadyError):
            instance.submit_query(1, 1.0)
