"""Scale-out curve tests — the Figure 1.1a/c behaviours."""

import pytest

from repro.errors import MPPDBError
from repro.mppdb.scaleout import AmdahlScaleOut, LinearScaleOut, SublinearScaleOut


class TestLinear:
    def test_perfect_speedup(self):
        curve = LinearScaleOut()
        assert curve.latency(100.0, 1) == 100.0
        assert curve.latency(100.0, 4) == 25.0
        assert curve.speedup(8) == pytest.approx(8.0)

    def test_figure_1_1a_shape(self):
        # "Q1 scales out linearly with the number of nodes."
        curve = LinearScaleOut()
        speedups = [curve.speedup(n) for n in (1, 2, 4, 8)]
        assert speedups == [pytest.approx(s) for s in (1.0, 2.0, 4.0, 8.0)]


class TestAmdahl:
    def test_single_node_identity(self):
        assert AmdahlScaleOut(0.2).latency(100.0, 1) == pytest.approx(100.0)

    def test_speedup_flattens(self):
        # Figure 1.1c: Q19 does not scale out linearly.
        curve = AmdahlScaleOut(0.2)
        assert curve.speedup(2) < 2.0
        assert curve.speedup(32) < 1.0 / 0.2 + 1e-9
        # Speedup still grows but with diminishing per-node returns.
        gains = [curve.speedup(n) for n in range(1, 9)]
        diffs = [b - a for a, b in zip(gains, gains[1:])]
        assert all(d > 0 for d in diffs)
        assert all(later < earlier + 1e-12 for earlier, later in zip(diffs, diffs[1:]))

    def test_serial_fraction_bounds(self):
        with pytest.raises(MPPDBError):
            AmdahlScaleOut(-0.1)
        with pytest.raises(MPPDBError):
            AmdahlScaleOut(1.1)

    def test_fully_serial_never_speeds_up(self):
        curve = AmdahlScaleOut(1.0)
        assert curve.latency(50.0, 64) == pytest.approx(50.0)


class TestSublinear:
    def test_alpha_one_is_linear(self):
        assert SublinearScaleOut(1.0).latency(100.0, 4) == pytest.approx(25.0)

    def test_alpha_zero_never_scales(self):
        assert SublinearScaleOut(0.0).latency(100.0, 16) == pytest.approx(100.0)

    def test_between_linear_and_flat(self):
        sub = SublinearScaleOut(0.7)
        assert 1.0 < sub.speedup(8) < 8.0

    def test_alpha_bounds(self):
        with pytest.raises(MPPDBError):
            SublinearScaleOut(1.5)


class TestValidation:
    @pytest.mark.parametrize(
        "curve", [LinearScaleOut(), AmdahlScaleOut(0.2), SublinearScaleOut(0.7)]
    )
    def test_bad_inputs_rejected(self, curve):
        with pytest.raises(MPPDBError):
            curve.latency(-1.0, 2)
        with pytest.raises(MPPDBError):
            curve.latency(10.0, 0)

    @pytest.mark.parametrize(
        "curve", [LinearScaleOut(), AmdahlScaleOut(0.2), SublinearScaleOut(0.7)]
    )
    def test_latency_non_increasing_in_nodes(self, curve):
        latencies = [curve.latency(100.0, n) for n in range(1, 33)]
        assert all(b <= a + 1e-12 for a, b in zip(latencies, latencies[1:]))
