"""Load-time model tests against Table 5.1."""

import pytest

from repro.errors import MPPDBError
from repro.mppdb.loading import LoadTimeModel, PAPER_LOAD_TABLE


class TestPaperTable:
    def test_table_values(self):
        assert PAPER_LOAD_TABLE[2] == (200.0, 462.0, 10172.0)
        assert PAPER_LOAD_TABLE[10] == (1024.0, 1779.0, 50446.0)

    def test_startup_fit_within_11_percent(self):
        model = LoadTimeModel()
        for nodes, (_gb, startup, _load) in PAPER_LOAD_TABLE.items():
            predicted = model.startup_seconds(nodes)
            assert predicted == pytest.approx(startup, rel=0.11)

    def test_bulk_load_fit_within_3_percent(self):
        model = LoadTimeModel()
        for nodes, (gb, _startup, load) in PAPER_LOAD_TABLE.items():
            predicted = model.bulk_load_seconds(gb)
            assert predicted == pytest.approx(load, rel=0.03)

    def test_load_rate_is_about_1_2_gb_per_minute(self):
        # §5.1: "a reasonable loading rate (about 1.2GB/min)".
        model = LoadTimeModel()
        rate_gb_min = model.load_rate_gb_s() * 60.0
        assert 1.1 < rate_gb_min < 1.3

    def test_loading_dominates_startup(self):
        # The motivation for lightweight scaling: data loading dominates.
        model = LoadTimeModel()
        for nodes, (gb, _s, _l) in PAPER_LOAD_TABLE.items():
            assert model.bulk_load_seconds(gb) > 5 * model.startup_seconds(nodes)

    def test_ten_node_1tb_takes_about_14_5_hours(self):
        # §5.1: "Thrifty needs about 14.5 hours (50446s+1779s)".
        model = LoadTimeModel()
        total = model.provision_seconds(10, 1024.0)
        assert total == pytest.approx(14.5 * 3600, rel=0.05)


class TestModelBehaviour:
    def test_startup_linear_in_nodes(self):
        model = LoadTimeModel()
        deltas = [
            model.startup_seconds(n + 1) - model.startup_seconds(n) for n in range(1, 10)
        ]
        assert all(d == pytest.approx(deltas[0]) for d in deltas)

    def test_load_linear_in_data(self):
        model = LoadTimeModel()
        assert model.bulk_load_seconds(400.0) == pytest.approx(
            2 * model.bulk_load_seconds(200.0)
        )

    def test_serial_loading_slower(self):
        parallel = LoadTimeModel(parallel_loading=True)
        serial = LoadTimeModel(parallel_loading=False)
        assert serial.bulk_load_seconds(100.0) > parallel.bulk_load_seconds(100.0)

    def test_zero_data_loads_instantly(self):
        assert LoadTimeModel().bulk_load_seconds(0.0) == 0.0

    def test_invalid_inputs_rejected(self):
        model = LoadTimeModel()
        with pytest.raises(MPPDBError):
            model.startup_seconds(0)
        with pytest.raises(MPPDBError):
            model.bulk_load_seconds(-1.0)
        with pytest.raises(MPPDBError):
            LoadTimeModel(parallel_load_rate_gb_s=0.0)
