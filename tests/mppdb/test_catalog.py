"""Catalog tests: per-tenant private table sets on one instance."""

import pytest

from repro.errors import MPPDBError, TenantNotHostedError
from repro.mppdb.catalog import Catalog, TenantData


class TestTenantData:
    def test_fields(self):
        data = TenantData(tenant_id=3, data_gb=200.0, tables=("lineitem",))
        assert data.tenant_id == 3
        assert data.tables == ("lineitem",)

    def test_negative_size_rejected(self):
        with pytest.raises(MPPDBError):
            TenantData(tenant_id=1, data_gb=-1.0)


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog()
        catalog.add(TenantData(tenant_id=1, data_gb=100.0))
        assert 1 in catalog
        assert catalog.get(1).data_gb == 100.0
        assert len(catalog) == 1

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add(TenantData(tenant_id=1, data_gb=100.0))
        with pytest.raises(MPPDBError):
            catalog.add(TenantData(tenant_id=1, data_gb=50.0))

    def test_missing_tenant_raises(self):
        with pytest.raises(TenantNotHostedError):
            Catalog().get(42)

    def test_remove(self):
        catalog = Catalog()
        catalog.add(TenantData(tenant_id=1, data_gb=100.0))
        removed = catalog.remove(1)
        assert removed.tenant_id == 1
        assert 1 not in catalog

    def test_remove_missing_raises(self):
        with pytest.raises(TenantNotHostedError):
            Catalog().remove(1)

    def test_total_data(self):
        catalog = Catalog()
        catalog.add_all(
            [
                TenantData(tenant_id=1, data_gb=100.0),
                TenantData(tenant_id=2, data_gb=300.0),
            ]
        )
        assert catalog.total_data_gb == 400.0
        assert catalog.tenant_ids == {1, 2}
