"""MPPDB instance lifecycle and query admission tests."""

import pytest

from repro.errors import InstanceNotReadyError, MPPDBError, TenantNotHostedError
from repro.mppdb.catalog import TenantData
from repro.mppdb.instance import InstanceState, MPPDBInstance
from repro.simulation.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


def _ready_instance(sim, name="mppdb0", parallelism=4, tenants=(1, 2)):
    instance = MPPDBInstance(name, parallelism, sim)
    for tid in tenants:
        instance.deploy_tenant(TenantData(tenant_id=tid, data_gb=100.0))
    instance.mark_ready()
    return instance


class TestLifecycle:
    def test_initial_state(self, sim):
        instance = MPPDBInstance("m0", 4, sim)
        assert instance.state == InstanceState.PROVISIONING
        assert not instance.is_ready
        assert not instance.is_free

    def test_mark_ready(self, sim):
        instance = MPPDBInstance("m0", 4, sim)
        instance.mark_ready()
        assert instance.is_ready
        assert instance.is_free
        assert instance.ready_time == 0.0

    def test_double_ready_rejected(self, sim):
        instance = MPPDBInstance("m0", 4, sim)
        instance.mark_ready()
        with pytest.raises(MPPDBError):
            instance.mark_ready()

    def test_retire(self, sim):
        instance = _ready_instance(sim)
        instance.retire()
        assert instance.state == InstanceState.RETIRED
        with pytest.raises(InstanceNotReadyError):
            instance.submit_query(1, 10.0)

    def test_double_retire_rejected(self, sim):
        instance = _ready_instance(sim)
        instance.retire()
        with pytest.raises(MPPDBError):
            instance.retire()

    def test_invalid_parallelism_rejected(self, sim):
        with pytest.raises(MPPDBError):
            MPPDBInstance("m0", 0, sim)

    def test_node_ids_must_match_parallelism(self, sim):
        with pytest.raises(MPPDBError):
            MPPDBInstance("m0", 4, sim, node_ids=[1, 2])


class TestQueryAdmission:
    def test_submit_for_hosted_tenant(self, sim):
        instance = _ready_instance(sim)
        execution = instance.submit_query(1, 50.0)
        sim.run()
        assert execution.latency_s == pytest.approx(50.0)

    def test_unhosted_tenant_rejected(self, sim):
        instance = _ready_instance(sim, tenants=(1,))
        with pytest.raises(TenantNotHostedError):
            instance.submit_query(99, 10.0)

    def test_not_ready_rejected(self, sim):
        instance = MPPDBInstance("m0", 4, sim)
        instance.deploy_tenant(TenantData(tenant_id=1, data_gb=100.0))
        with pytest.raises(InstanceNotReadyError):
            instance.submit_query(1, 10.0)

    def test_is_free_tracks_engine(self, sim):
        instance = _ready_instance(sim)
        assert instance.is_free
        instance.submit_query(1, 10.0)
        assert not instance.is_free
        assert instance.active_tenants == {1}
        sim.run()
        assert instance.is_free

    def test_deploy_to_retired_rejected(self, sim):
        instance = _ready_instance(sim)
        instance.retire()
        with pytest.raises(MPPDBError):
            instance.deploy_tenant(TenantData(tenant_id=9, data_gb=1.0))

    def test_hosts(self, sim):
        instance = _ready_instance(sim, tenants=(1,))
        assert instance.hosts(1)
        assert not instance.hosts(2)
