"""Property-based tests on the processor-sharing execution engine.

These pin down the queueing-theoretic invariants the interference model
(Figure 1.1) rests on: work conservation, completion-order monotonicity,
slowdown bounds, and insensitivity of totals to arrival interleaving.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mppdb.execution import ExecutionEngine
from repro.simulation.engine import Simulator

_WORKS = st.lists(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=12,
)
_ARRIVALS = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


def _run_schedule(arrivals_works):
    """Run a set of (arrival, work) submissions; return the executions."""
    sim = Simulator()
    engine = ExecutionEngine(sim)
    executions = []
    for i, (arrival, work) in enumerate(sorted(arrivals_works)):
        sim.schedule(
            arrival,
            lambda t, _i=i, _w=work: executions.append(engine.submit(_i, _w)),
        )
    sim.run()
    return executions


class TestProcessorSharingProperties:
    @given(_WORKS)
    @settings(max_examples=60, deadline=None)
    def test_work_conservation_simultaneous(self, works):
        # All arriving at t=0: the server is busy until sum(works).
        executions = _run_schedule([(0.0, w) for w in works])
        last_finish = max(e.finish_time for e in executions)
        assert last_finish == pytest.approx(sum(works), rel=1e-9)

    @given(_WORKS, _ARRIVALS)
    @settings(max_examples=60, deadline=None)
    def test_slowdown_at_least_one(self, works, arrivals):
        n = min(len(works), len(arrivals))
        executions = _run_schedule(list(zip(arrivals[:n], works[:n])))
        for execution in executions:
            assert execution.slowdown >= 1.0 - 1e-9

    @given(_WORKS)
    @settings(max_examples=60, deadline=None)
    def test_slowdown_bounded_by_concurrency(self, works):
        # With k simultaneous arrivals, nobody is more than k times slower.
        executions = _run_schedule([(0.0, w) for w in works])
        k = len(works)
        for execution in executions:
            assert execution.slowdown <= k + 1e-9

    @given(_WORKS)
    @settings(max_examples=60, deadline=None)
    def test_simultaneous_arrivals_finish_in_work_order(self, works):
        # Egalitarian PS with equal arrival times: smaller work finishes
        # no later than bigger work.
        executions = _run_schedule([(0.0, w) for w in works])
        ordered = sorted(executions, key=lambda e: e.work_s)
        finishes = [e.finish_time for e in ordered]
        assert all(b >= a - 1e-9 for a, b in zip(finishes, finishes[1:]))

    @given(_WORKS, _ARRIVALS)
    @settings(max_examples=60, deadline=None)
    def test_total_busy_time_conserved(self, works, arrivals):
        # The server is work-conserving: total service delivered equals
        # total work, so the last completion is at least max(arrival) and
        # at most max(arrival) + sum(works).
        n = min(len(works), len(arrivals))
        pairs = list(zip(arrivals[:n], works[:n]))
        executions = _run_schedule(pairs)
        last_finish = max(e.finish_time for e in executions)
        assert last_finish <= max(a for a, __ in pairs) + sum(w for __, w in pairs) + 1e-6
        assert last_finish >= max(a + 0 for a, __ in pairs) - 1e-9

    @given(_WORKS)
    @settings(max_examples=40, deadline=None)
    def test_sequential_arrivals_have_no_slowdown(self, works):
        # Arrivals spaced beyond total work never overlap.
        gap = sum(works) + 1.0
        pairs = [(i * gap, w) for i, w in enumerate(works)]
        executions = _run_schedule(pairs)
        for execution in executions:
            assert execution.slowdown == pytest.approx(1.0, rel=1e-9)

    @given(_WORKS)
    @settings(max_examples=40, deadline=None)
    def test_equal_works_equal_latencies(self, works):
        work = float(np.mean(works))
        executions = _run_schedule([(0.0, work) for __ in works])
        latencies = {round(e.latency_s, 6) for e in executions}
        assert len(latencies) == 1
