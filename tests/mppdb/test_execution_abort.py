"""Execution-engine abort semantics (fault-tolerance plane)."""

from repro.mppdb.execution import ExecutionEngine
from repro.simulation.engine import Simulator


class TestAbortAll:
    def test_abort_empty_engine_is_noop(self):
        engine = ExecutionEngine(Simulator())
        assert engine.abort_all() == []

    def test_abort_marks_and_clears(self):
        sim = Simulator()
        engine = ExecutionEngine(sim)
        q1 = engine.submit(1, 100.0)
        q2 = engine.submit(2, 100.0)
        sim.run(until=10.0)
        aborted = engine.abort_all()
        assert [q.query_id for q in aborted] == [q1.query_id, q2.query_id]
        assert all(q.aborted and not q.finished for q in aborted)
        assert all(q.abort_time == sim.now for q in aborted)
        assert engine.concurrency == 0
        assert not engine.busy

    def test_abort_settles_progress_first(self):
        sim = Simulator()
        engine = ExecutionEngine(sim)
        query = engine.submit(1, 100.0)
        sim.run(until=30.0)
        engine.abort_all()
        # Ran alone for 30 s, so 70 s of dedicated work remains at abort.
        assert query.remaining_work_s == 70.0

    def test_abort_callbacks_fire_in_query_order(self):
        sim = Simulator()
        engine = ExecutionEngine(sim)
        seen = []
        engine.on_abort(lambda q: seen.append(q.query_id))
        a = engine.submit(1, 50.0)
        b = engine.submit(2, 50.0)
        engine.abort_all()
        assert seen == [a.query_id, b.query_id]

    def test_aborted_queries_never_complete(self):
        sim = Simulator()
        engine = ExecutionEngine(sim)
        completions = []
        engine.on_complete(lambda q: completions.append(q.query_id))
        engine.submit(1, 10.0)
        engine.abort_all()
        sim.run(until=100.0)
        assert completions == []
        assert engine.completed == []

    def test_engine_usable_after_abort(self):
        sim = Simulator()
        engine = ExecutionEngine(sim)
        engine.submit(1, 10.0)
        engine.abort_all()
        replay = engine.submit(2, 10.0)
        sim.run(until=100.0)
        assert replay.finished
        assert replay.latency_s == 10.0
