"""Provisioner tests: timed startup + bulk load, pool wiring, retirement."""

import pytest

from repro.cluster.pool import MachinePool
from repro.errors import MPPDBError
from repro.mppdb.catalog import TenantData
from repro.mppdb.loading import LoadTimeModel
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator


def _tenants(*sizes_gb):
    return [TenantData(tenant_id=i, data_gb=gb) for i, gb in enumerate(sizes_gb)]


class TestTimedProvisioning:
    def test_ready_after_startup_plus_load(self):
        sim = Simulator()
        prov = Provisioner(sim)
        instance = prov.provision(parallelism=2, tenants=_tenants(100.0, 100.0))
        assert not instance.is_ready
        expected = prov.load_model.provision_seconds(2, 200.0)
        sim.run()
        assert instance.is_ready
        assert instance.ready_time == pytest.approx(expected)

    def test_instant_provisioning(self):
        sim = Simulator()
        prov = Provisioner(sim)
        instance = prov.provision(parallelism=2, tenants=_tenants(100.0), instant=True)
        assert instance.is_ready
        assert instance.ready_time == 0.0

    def test_on_ready_callback(self):
        sim = Simulator()
        prov = Provisioner(sim)
        seen = []
        prov.provision(
            parallelism=2,
            tenants=_tenants(50.0),
            on_ready=lambda inst, t: seen.append((inst.name, t)),
        )
        sim.run()
        assert len(seen) == 1
        assert seen[0][1] == pytest.approx(prov.load_model.provision_seconds(2, 50.0))

    def test_on_ready_with_instant(self):
        sim = Simulator()
        prov = Provisioner(sim)
        seen = []
        prov.provision(
            parallelism=2,
            tenants=_tenants(50.0),
            instant=True,
            on_ready=lambda inst, t: seen.append(t),
        )
        assert seen == [0.0]

    def test_provision_time_prediction(self):
        prov = Provisioner(Simulator(), load_model=LoadTimeModel())
        predicted = prov.provision_time_s(4, _tenants(100.0, 300.0))
        assert predicted == pytest.approx(
            LoadTimeModel().provision_seconds(4, 400.0)
        )

    def test_duplicate_name_rejected(self):
        sim = Simulator()
        prov = Provisioner(sim)
        prov.provision(parallelism=1, tenants=[], name="x", instant=True)
        with pytest.raises(MPPDBError):
            prov.provision(parallelism=1, tenants=[], name="x", instant=True)

    def test_generated_names_unique(self):
        sim = Simulator()
        prov = Provisioner(sim)
        a = prov.provision(parallelism=1, tenants=[], instant=True)
        b = prov.provision(parallelism=1, tenants=[], instant=True)
        assert a.name != b.name

    def test_lookup(self):
        sim = Simulator()
        prov = Provisioner(sim)
        instance = prov.provision(parallelism=1, tenants=[], name="m", instant=True)
        assert prov.get("m") is instance
        with pytest.raises(MPPDBError):
            prov.get("missing")


class TestPoolIntegration:
    def test_nodes_allocated_and_running(self):
        sim = Simulator()
        pool = MachinePool(8)
        prov = Provisioner(sim, pool)
        instance = prov.provision(parallelism=4, tenants=_tenants(100.0))
        assert len(instance.node_ids) == 4
        assert pool.in_use_count == 4
        sim.run()
        assert all(pool.node(i).state.value == "running" for i in instance.node_ids)

    def test_retire_releases_nodes(self):
        sim = Simulator()
        pool = MachinePool(8)
        prov = Provisioner(sim, pool)
        instance = prov.provision(parallelism=4, tenants=[], instant=True)
        prov.retire(instance)
        assert pool.in_use_count == 0
        assert instance.state.value == "retired"
        assert prov.live_instances() == []

    def test_elastic_pool_growth(self):
        sim = Simulator()
        pool = MachinePool(2, elastic=True)
        prov = Provisioner(sim, pool)
        prov.provision(parallelism=6, tenants=[], instant=True)
        assert len(pool) == 6
