"""Execution engine tests: processor sharing is the interference model.

The key behaviours are the ones Figure 1.1a measures: sequential
submissions see no slowdown; k concurrent equal queries each run k times
slower.
"""

import pytest

from repro.errors import MPPDBError
from repro.mppdb.execution import ExecutionEngine
from repro.simulation.engine import Simulator


@pytest.fixture
def engine():
    sim = Simulator()
    return sim, ExecutionEngine(sim)


class TestSingleQuery:
    def test_runs_at_full_speed(self, engine):
        sim, eng = engine
        execution = eng.submit(tenant_id=1, work_s=100.0)
        sim.run()
        assert execution.finished
        assert execution.latency_s == pytest.approx(100.0)
        assert execution.slowdown == pytest.approx(1.0)

    def test_zero_work_completes_instantly(self, engine):
        sim, eng = engine
        execution = eng.submit(tenant_id=1, work_s=0.0)
        assert execution.finished
        assert execution.latency_s == 0.0

    def test_negative_work_rejected(self, engine):
        __, eng = engine
        with pytest.raises(MPPDBError):
            eng.submit(tenant_id=1, work_s=-1.0)

    def test_latency_before_finish_rejected(self, engine):
        __, eng = engine
        execution = eng.submit(tenant_id=1, work_s=10.0)
        with pytest.raises(MPPDBError):
            __ = execution.latency_s


class TestSequentialSubmissions:
    def test_no_slowdown(self, engine):
        # 2T-SEQ in Figure 1.1a: back-to-back queries keep isolated latency.
        sim, eng = engine
        first = eng.submit(tenant_id=1, work_s=50.0)
        sim.run()
        second = eng.submit(tenant_id=2, work_s=50.0)
        sim.run()
        assert first.latency_s == pytest.approx(50.0)
        assert second.latency_s == pytest.approx(50.0)


class TestConcurrentSubmissions:
    def test_two_equal_queries_2x_slower(self, engine):
        # 2T-CON in Figure 1.1a.
        sim, eng = engine
        a = eng.submit(tenant_id=1, work_s=100.0)
        b = eng.submit(tenant_id=2, work_s=100.0)
        sim.run()
        assert a.latency_s == pytest.approx(200.0)
        assert b.latency_s == pytest.approx(200.0)

    def test_four_equal_queries_4x_slower(self, engine):
        # 4T-CON in Figure 1.1a.
        sim, eng = engine
        executions = [eng.submit(tenant_id=t, work_s=100.0) for t in range(4)]
        sim.run()
        for execution in executions:
            assert execution.latency_s == pytest.approx(400.0)

    def test_unequal_queries_processor_sharing(self, engine):
        # Works 10 and 30 started together: the short one finishes at 20
        # (half speed), the long one at 20 + 20 remaining at full speed = 40.
        sim, eng = engine
        short = eng.submit(tenant_id=1, work_s=10.0)
        long = eng.submit(tenant_id=2, work_s=30.0)
        sim.run()
        assert short.latency_s == pytest.approx(20.0)
        assert long.latency_s == pytest.approx(40.0)

    def test_late_arrival(self, engine):
        # Query B (work 10) arrives at t=10 while A (work 20) is halfway.
        # They share until B finishes at t=30; A has 10-10=... A progressed
        # 10 by t=10, then shares: each gets 10 more by t=30 -> B done, A
        # remaining 0 -> A also done at t=30.
        sim, eng = engine
        a = eng.submit(tenant_id=1, work_s=20.0)
        sim.schedule(10.0, lambda t: eng.submit(tenant_id=2, work_s=10.0))
        sim.run()
        assert a.finish_time == pytest.approx(30.0)

    def test_simultaneous_equal_completions(self, engine):
        sim, eng = engine
        a = eng.submit(tenant_id=1, work_s=10.0)
        b = eng.submit(tenant_id=2, work_s=10.0)
        sim.run()
        assert a.finish_time == pytest.approx(b.finish_time)
        assert eng.concurrency == 0


class TestEngineState:
    def test_busy_and_active_tenants(self, engine):
        sim, eng = engine
        assert not eng.busy
        eng.submit(tenant_id=5, work_s=10.0)
        eng.submit(tenant_id=5, work_s=10.0)
        eng.submit(tenant_id=7, work_s=10.0)
        assert eng.busy
        assert eng.concurrency == 3
        assert eng.active_tenants == {5, 7}
        sim.run()
        assert not eng.busy
        assert eng.active_tenants == set()

    def test_completed_in_completion_order(self, engine):
        sim, eng = engine
        eng.submit(tenant_id=1, work_s=30.0)
        eng.submit(tenant_id=2, work_s=10.0)
        sim.run()
        completed = eng.completed
        assert [q.tenant_id for q in completed] == [2, 1]

    def test_on_complete_callback(self, engine):
        sim, eng = engine
        seen = []
        eng.on_complete(lambda q: seen.append(q.tenant_id))
        eng.submit(tenant_id=3, work_s=5.0)
        sim.run()
        assert seen == [3]

    def test_work_conservation(self, engine):
        # Total busy time equals total work regardless of interleaving.
        sim, eng = engine
        works = [7.0, 13.0, 20.0]
        for i, w in enumerate(works):
            eng.submit(tenant_id=i, work_s=w)
        sim.run()
        assert sim.now == pytest.approx(sum(works))
