"""Deterministic RNG stream tests."""

from repro.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_64_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64


class TestRngFactory:
    def test_same_stream_same_draws(self):
        factory = RngFactory(7)
        a = factory.stream("tenant", 3).random(5)
        b = factory.stream("tenant", 3).random(5)
        assert (a == b).all()

    def test_different_streams_differ(self):
        factory = RngFactory(7)
        a = factory.stream("tenant", 3).random(5)
        b = factory.stream("tenant", 4).random(5)
        assert not (a == b).all()

    def test_streams_independent_of_creation_order(self):
        first = RngFactory(7)
        a1 = first.stream("a").random(3)
        __ = first.stream("b").random(3)
        second = RngFactory(7)
        __ = second.stream("b").random(3)
        a2 = second.stream("a").random(3)
        assert (a1 == a2).all()

    def test_spawn_is_namespaced(self):
        factory = RngFactory(7)
        child = factory.spawn("composition")
        direct = factory.stream("composition", "x").random(3)
        via_child = child.stream("x").random(3)
        # spawn() re-roots the derivation, so the paths differ by design.
        assert not (direct == via_child).all()

    def test_spawn_deterministic(self):
        a = RngFactory(7).spawn("c").stream("x").random(3)
        b = RngFactory(7).spawn("c").stream("x").random(3)
        assert (a == b).all()

    def test_seed_property(self):
        assert RngFactory(99).seed == 99
