"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.command == "plan"
        assert args.tenants == 300
        assert args.replication == 3

    def test_sweep_requires_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "theta"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_replay_scaling_choices(self):
        args = build_parser().parse_args(["replay", "--scaling", "disabled"])
        assert args.scaling == "disabled"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--scaling", "magic"])

    def test_replay_obs_out(self):
        args = build_parser().parse_args(["replay", "--obs-out", "out/"])
        assert args.obs_out == "out/"
        assert build_parser().parse_args(["replay"]).obs_out is None

    def test_obs_requires_directory(self):
        args = build_parser().parse_args(["obs", "report/", "--top", "3"])
        assert args.directory == "report/"
        assert args.top == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestCommands:
    _FAST = ["--tenants", "30", "--days", "7", "--sessions", "2", "--seed", "5"]

    def test_loadtimes(self, capsys):
        assert main(["loadtimes"]) == 0
        out = capsys.readouterr().out
        assert "2-node / 200GB" in out
        assert "10-node / 1.0TB" in out

    def test_plan(self, capsys):
        assert main(["plan", *self._FAST]) == 0
        out = capsys.readouterr().out
        assert "effectiveness" in out
        assert "tenant groups" in out

    def test_plan_with_groups(self, capsys):
        assert main(["plan", "--groups", *self._FAST]) == 0
        out = capsys.readouterr().out
        assert "Per-group detail" in out
        assert "tg0" in out

    def test_plan_ffd(self, capsys):
        assert main(["plan", "--grouping", "ffd", *self._FAST]) == 0
        assert "ffd" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "replication_factor", "1", "2", *self._FAST]) == 0
        out = capsys.readouterr().out
        assert "Sweep over replication_factor" in out
        assert "2step_eff" in out

    def test_replay(self, capsys):
        assert main(["replay", "--replay-days", "0.5", *self._FAST]) == 0
        out = capsys.readouterr().out
        assert "SLA met" in out
        assert "queries completed" in out

    def test_replay_obs_out_writes_report_and_obs_reads_it(self, capsys, tmp_path):
        out = tmp_path / "report"
        assert main(["replay", "--replay-days", "0.25", "--obs-out", str(out), *self._FAST]) == 0
        assert "observability report written" in capsys.readouterr().out
        for filename in ("metrics.jsonl", "spans.jsonl", "summary.json"):
            assert (out / filename).exists(), filename

        assert main(["obs", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "queries submitted" in rendered
        assert "groups by queries submitted" in rendered
        assert "RT-TTP trajectory" in rendered
        assert "Routing decisions" in rendered

    def test_obs_on_missing_directory_exits_2(self, capsys, tmp_path):
        assert main(["obs", str(tmp_path / "nothing-here")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_repro_error_exits_2(self, capsys):
        # theta outside (0, 1) raises a ConfigurationError inside the
        # library; the CLI converts it to exit code 2 with a message.
        assert main(["sweep", "theta", "2.0", *self._FAST]) == 2
        assert "error:" in capsys.readouterr().err
