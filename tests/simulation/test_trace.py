"""Trace recorder tests."""

from repro.simulation.trace import TraceRecorder


class TestTraceRecorder:
    def test_record_and_iterate(self):
        trace = TraceRecorder()
        trace.record(1.0, "route", tenant=4, instance="tg0/mppdb0")
        trace.record(2.0, "scale", group="tg0")
        assert len(trace) == 2
        kinds = [entry.kind for entry in trace]
        assert kinds == ["route", "scale"]

    def test_of_kind(self):
        trace = TraceRecorder()
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        trace.record(3.0, "a")
        assert [e.time for e in trace.of_kind("a")] == [1.0, 3.0]

    def test_between(self):
        trace = TraceRecorder()
        for t in (1.0, 2.0, 3.0):
            trace.record(t, "x")
        assert [e.time for e in trace.between(1.5, 3.0)] == [2.0]

    def test_kinds(self):
        trace = TraceRecorder()
        trace.record(0.0, "a")
        trace.record(0.0, "b")
        assert trace.kinds() == {"a", "b"}

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "a")
        trace.clear()
        assert len(trace) == 0

    def test_str_rendering(self):
        trace = TraceRecorder()
        entry = trace.record(12.5, "route", tenant=4)
        text = str(entry)
        assert "route" in text
        assert "tenant=4" in text
