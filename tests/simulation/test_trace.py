"""Trace recorder tests."""

import json

from repro.simulation.trace import TraceRecorder


class TestTraceRecorder:
    def test_record_and_iterate(self):
        trace = TraceRecorder()
        trace.record(1.0, "route", tenant=4, instance="tg0/mppdb0")
        trace.record(2.0, "scale", group="tg0")
        assert len(trace) == 2
        kinds = [entry.kind for entry in trace]
        assert kinds == ["route", "scale"]

    def test_of_kind(self):
        trace = TraceRecorder()
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        trace.record(3.0, "a")
        assert [e.time for e in trace.of_kind("a")] == [1.0, 3.0]

    def test_between(self):
        trace = TraceRecorder()
        for t in (1.0, 2.0, 3.0):
            trace.record(t, "x")
        assert [e.time for e in trace.between(1.5, 3.0)] == [2.0]

    def test_kinds(self):
        trace = TraceRecorder()
        trace.record(0.0, "a")
        trace.record(0.0, "b")
        assert trace.kinds() == {"a", "b"}

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "a")
        trace.clear()
        assert len(trace) == 0

    def test_str_rendering(self):
        trace = TraceRecorder()
        entry = trace.record(12.5, "route", tenant=4)
        text = str(entry)
        assert "route" in text
        assert "tenant=4" in text

    def test_filter_by_kind_and_window(self):
        trace = TraceRecorder()
        trace.record(1.0, "scale")
        trace.record(2.0, "route")
        trace.record(3.0, "scale")
        trace.record(4.0, "scale")
        # kind alone
        assert [e.time for e in trace.filter(kind="scale")] == [1.0, 3.0, 4.0]
        # half-open window [2.0, 4.0): the end is excluded
        assert [e.time for e in trace.filter(start=2.0, end=4.0)] == [2.0, 3.0]
        # combined
        assert [e.time for e in trace.filter(kind="scale", start=2.0, end=4.0)] == [3.0]
        # no criteria: the whole log, as a copy
        everything = trace.filter()
        assert [e.time for e in everything] == [1.0, 2.0, 3.0, 4.0]
        everything.pop()
        assert len(trace) == 4

    def test_to_jsonl_row_shape(self, tmp_path):
        trace = TraceRecorder()
        trace.record(1.5, "elastic-scaling", policy="lightweight", over_active=(3, 7))
        trace.record(2.0, "route", instance="tg0/mppdb1")
        path = trace.to_jsonl(tmp_path / "sub" / "trace.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0] == {
            "t": 1.5,
            "kind": "elastic-scaling",
            "attrs": {"policy": "lightweight", "over_active": [3, 7]},
        }
        assert rows[1]["attrs"]["instance"] == "tg0/mppdb1"
