"""Simulator engine tests: scheduling, run bounds, cancellation, clock."""

import pytest

from repro.errors import SimulationError
from repro.simulation.clock import Clock
from repro.simulation.engine import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance(self):
        clock = Clock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_same_time_ok(self):
        clock = Clock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_no_time_travel(self):
        clock = Clock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            Clock(-1.0)


class TestSimulator:
    def test_runs_events_in_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, lambda t: seen.append(("b", t)))
        sim.schedule(1.0, lambda t: seen.append(("a", t)))
        fired = sim.run()
        assert fired == 2
        assert seen == [("a", 1.0), ("b", 3.0)]
        assert sim.now == 3.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda t: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda t: None)

    def test_schedule_after(self):
        sim = Simulator()
        times = []
        sim.schedule(10.0, lambda t: sim.schedule_after(5.0, times.append))
        sim.run()
        assert times == [15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda t: None)

    def test_run_until_bound(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, seen.append)
        sim.run(until=2.0)
        assert seen == [1.0, 2.0]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_run_max_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda _t: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending == 1

    def test_cancellation(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, seen.append)
        sim.schedule(2.0, seen.append)
        sim.cancel(handle)
        sim.run()
        assert seen == [2.0]

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def chain(t):
            seen.append(t)
            if t < 5.0:
                sim.schedule(t + 1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter(t):
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule(t, lambda _t: None)
        sim.run()
        assert sim.events_fired == 2

    def test_event_accounting_off_by_default(self):
        sim = Simulator()
        sim.schedule(1.0, lambda _t: None, label="tick")
        sim.run()
        assert sim.event_counts == {}

    def test_event_accounting_counts_by_label(self):
        sim = Simulator()
        sim.enable_event_accounting()
        sim.enable_event_accounting()  # idempotent
        sim.schedule(1.0, lambda _t: None, label="tick")
        sim.schedule(2.0, lambda _t: None, label="tick")
        sim.schedule(3.0, lambda _t: None)
        sim.run()
        assert sim.event_counts == {"tick": 2, "(unlabeled)": 1}
        # event_counts returns a copy, not live state
        counts = sim.event_counts
        counts["tick"] = 99
        assert sim.event_counts["tick"] == 2
