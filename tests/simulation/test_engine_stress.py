"""Determinism and scale sanity for the event engine."""

import numpy as np

from repro.simulation.engine import Simulator


class TestEngineAtScale:
    def test_ten_thousand_events_in_order(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 1e6, size=10_000)
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule(float(t), fired.append)
        count = sim.run()
        assert count == 10_000
        assert fired == sorted(fired)

    def test_cascading_schedules(self):
        # Each event schedules two more until a depth limit: 2^12 - 1 events.
        sim = Simulator()
        counter = [0]

        def spawn(depth):
            def _cb(t):
                counter[0] += 1
                if depth < 11:
                    sim.schedule_after(1.0, spawn(depth + 1))
                    sim.schedule_after(2.0, spawn(depth + 1))

            return _cb

        sim.schedule(0.0, spawn(0))
        sim.run()
        assert counter[0] == 2**12 - 1

    def test_mass_cancellation(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(float(i), fired.append) for i in range(2_000)]
        for handle in handles[::2]:
            sim.cancel(handle)
        sim.run()
        assert len(fired) == 1_000
        assert all(int(t) % 2 == 1 for t in fired)

    def test_determinism_across_runs(self):
        def run_once():
            rng = np.random.default_rng(7)
            sim = Simulator()
            order = []
            for i in range(3_000):
                sim.schedule(float(rng.uniform(0, 100)), lambda t, _i=i: order.append(_i))
            sim.run()
            return order

        assert run_once() == run_once()
