"""TimeSeries / StepSeries tests — RT-TTP math depends on these."""

import pytest

from repro.errors import SimulationError
from repro.simulation.metrics import StepSeries, TimeSeries


class TestTimeSeries:
    def test_add_and_iterate(self):
        series = TimeSeries()
        series.add(1.0, 10.0)
        series.add(2.0, 20.0)
        assert list(series) == [(1.0, 10.0), (2.0, 20.0)]
        assert len(series) == 2

    def test_order_enforced(self):
        series = TimeSeries()
        series.add(5.0, 1.0)
        with pytest.raises(SimulationError):
            series.add(4.0, 1.0)

    def test_same_time_allowed(self):
        series = TimeSeries()
        series.add(1.0, 1.0)
        series.add(1.0, 2.0)
        assert len(series) == 2

    def test_stats(self):
        series = TimeSeries()
        for i, v in enumerate([1.0, 3.0, 2.0, 4.0]):
            series.add(float(i), v)
        assert series.mean() == pytest.approx(2.5)
        assert series.max() == 4.0
        assert series.percentile(50) == 2.0
        assert series.percentile(100) == 4.0
        assert series.fraction_above(2.5) == pytest.approx(0.5)

    def test_empty_stats_raise(self):
        series = TimeSeries()
        for method in (series.mean, series.max):
            with pytest.raises(SimulationError):
                method()
        with pytest.raises(SimulationError):
            series.percentile(50)
        with pytest.raises(SimulationError):
            series.fraction_above(1.0)

    def test_percentile_bounds(self):
        series = TimeSeries()
        series.add(0.0, 1.0)
        with pytest.raises(SimulationError):
            series.percentile(101)
        with pytest.raises(SimulationError):
            series.percentile(-0.1)

    def test_percentile_zero_is_minimum(self):
        # Nearest-rank gives rank ceil(0 * n) = 0; the documented clamp to
        # rank 1 makes percentile(0) the minimum, mirroring percentile(100)
        # as the maximum.
        series = TimeSeries()
        for i, v in enumerate([5.0, 1.0, 3.0]):
            series.add(float(i), v)
        assert series.percentile(0) == 1.0
        assert series.percentile(50) == 3.0
        assert series.percentile(100) == 5.0
        # Sub-rank-1 percentiles also clamp to the minimum.
        assert series.percentile(10) == 1.0

    def test_percentiles_on_single_sample(self):
        series = TimeSeries()
        series.add(0.0, 2.5)
        assert series.percentile(0) == 2.5
        assert series.percentile(50) == 2.5
        assert series.percentile(100) == 2.5

    def test_fraction_above_single_sample(self):
        series = TimeSeries()
        series.add(0.0, 1.0)
        # Strictly above: the sample itself does not count at its own value.
        assert series.fraction_above(0.5) == 1.0
        assert series.fraction_above(1.0) == 0.0
        assert series.fraction_above(1.5) == 0.0

    def test_window(self):
        series = TimeSeries()
        for t in range(5):
            series.add(float(t), float(t))
        windowed = series.window(1.0, 4.0)
        assert windowed.times == [1.0, 2.0, 3.0]


class TestStepSeries:
    def test_value_at(self):
        series = StepSeries(0.0)
        series.set(10.0, 2.0)
        series.set(20.0, 1.0)
        assert series.value_at(5.0) == 0.0
        assert series.value_at(10.0) == 2.0
        assert series.value_at(15.0) == 2.0
        assert series.value_at(25.0) == 1.0

    def test_value_before_start_rejected(self):
        series = StepSeries(0.0, start_time=5.0)
        with pytest.raises(SimulationError):
            series.value_at(4.0)

    def test_increment(self):
        series = StepSeries(0.0)
        series.increment(1.0)
        series.increment(2.0)
        series.increment(3.0, -1.0)
        assert series.value_at_end() == 1.0

    def test_same_instant_update_overrides(self):
        series = StepSeries(0.0)
        series.set(1.0, 5.0)
        series.set(1.0, 7.0)
        assert series.value_at(1.0) == 7.0

    def test_order_enforced(self):
        series = StepSeries(0.0)
        series.set(5.0, 1.0)
        with pytest.raises(SimulationError):
            series.set(4.0, 1.0)

    def test_time_weighted_mean(self):
        series = StepSeries(0.0)
        series.set(10.0, 4.0)
        # [0,10): 0; [10,20): 4 -> mean 2 over [0,20)
        assert series.time_weighted_mean(0.0, 20.0) == pytest.approx(2.0)

    def test_fraction_time_above(self):
        series = StepSeries(0.0)
        series.set(10.0, 4.0)
        series.set(15.0, 1.0)
        # above 3: only [10,15) of [0,20) -> 25%
        assert series.fraction_time_above(3.0, 0.0, 20.0) == pytest.approx(0.25)

    def test_fraction_time_at_most_is_complement(self):
        series = StepSeries(0.0)
        series.set(10.0, 4.0)
        above = series.fraction_time_above(3.0, 0.0, 20.0)
        at_most = series.fraction_time_at_most(3.0, 0.0, 20.0)
        assert above + at_most == pytest.approx(1.0)

    def test_rt_ttp_semantics(self):
        # Concurrency 0 -> 4 tenants during [100, 101) -> 0, R = 3:
        # one second of violation in a 1000-second window.
        series = StepSeries(0.0)
        series.set(100.0, 4.0)
        series.set(101.0, 0.0)
        ttp = series.fraction_time_at_most(3.0, 0.0, 1000.0)
        assert ttp == pytest.approx(0.999)

    def test_max_over(self):
        series = StepSeries(1.0)
        series.set(10.0, 5.0)
        series.set(20.0, 2.0)
        assert series.max_over(0.0, 30.0) == 5.0
        assert series.max_over(0.0, 5.0) == 1.0
        assert series.max_over(25.0, 30.0) == 2.0

    def test_empty_window_rejected(self):
        series = StepSeries(0.0)
        with pytest.raises(SimulationError):
            series.time_weighted_mean(5.0, 5.0)

    def test_zero_width_windows_raise_everywhere(self):
        # Every time-weighted aggregate treats [t, t) as an error rather
        # than returning 0/0-flavoured garbage.
        series = StepSeries(1.0)
        series.set(5.0, 3.0)
        for call in (
            lambda: series.time_weighted_mean(5.0, 5.0),
            lambda: series.fraction_time_above(2.0, 5.0, 5.0),
            lambda: series.fraction_time_at_most(2.0, 5.0, 5.0),
            lambda: series.max_over(5.0, 5.0),
            lambda: series.time_weighted_mean(6.0, 5.0),  # inverted, too
        ):
            with pytest.raises(SimulationError):
                call()

    def test_window_beyond_last_change_uses_final_value(self):
        series = StepSeries(0.0)
        series.set(10.0, 2.0)
        assert series.time_weighted_mean(20.0, 30.0) == pytest.approx(2.0)
