"""Event queue tests: determinism, ordering, cancellation."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import Event, EventQueue


def _noop(_t: float) -> None:
    pass


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_time_ordering(self):
        queue = EventQueue()
        for t in (5.0, 1.0, 3.0):
            queue.push(Event(time=t, callback=_noop, label=str(t)))
        assert [queue.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        for name in ("first", "second", "third"):
            queue.push(Event(time=1.0, callback=_noop, label=name))
        assert [queue.pop().label for _ in range(3)] == ["first", "second", "third"]

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(time=-1.0, callback=_noop))

    def test_cancellation(self):
        queue = EventQueue()
        keep = queue.push(Event(time=1.0, callback=_noop, label="keep"))
        drop = queue.push(Event(time=0.5, callback=_noop, label="drop"))
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.peek_time() == 1.0
        assert queue.pop().label == "keep"
        assert keep.event.label == "keep"

    def test_cancel_idempotent(self):
        queue = EventQueue()
        entry = queue.push(Event(time=1.0, callback=_noop))
        queue.cancel(entry)
        queue.cancel(entry)
        assert len(queue) == 0

    def test_clear(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, callback=_noop))
        queue.push(Event(time=2.0, callback=_noop))
        queue.clear()
        assert not queue
        assert queue.peek_time() is None

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        entries = [queue.push(Event(time=float(i), callback=_noop)) for i in range(5)]
        queue.cancel(entries[2])
        assert len(queue) == 4
        queue.pop()
        assert len(queue) == 3
