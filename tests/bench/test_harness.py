"""Bench records, baselines, and the regression gate (no scenario runs)."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchRecord,
    baseline_path,
    compare_records,
    default_baseline_dir,
    git_sha,
    load_baseline,
    run_scenarios,
    update_baselines,
    write_records,
)
from repro.errors import BenchError


def record(scenario="headline", scale="ci", wall_s=10.0, epochs_per_s=1000.0, **extra):
    metrics = {"wall_s": wall_s, "epochs_per_s": epochs_per_s}
    metrics.update(extra)
    return BenchRecord(
        scenario=scenario,
        scale=scale,
        workers=2,
        git_sha="deadbee",
        wall_s=wall_s,
        metrics=metrics,
        detail={"tenants": 60},
    )


class TestRecordRoundTrip:
    def test_as_dict_from_dict(self):
        original = record()
        clone = BenchRecord.from_dict(json.loads(json.dumps(original.as_dict())))
        assert clone == original

    def test_malformed_record_raises(self):
        with pytest.raises(BenchError):
            BenchRecord.from_dict({"scenario": "x"})

    def test_write_records_emits_bench_json(self, tmp_path):
        paths = write_records([record("fig7"), record("headline")], tmp_path)
        assert [p.name for p in paths] == ["BENCH_fig7.json", "BENCH_headline.json"]
        data = json.loads(paths[0].read_text())
        assert data["scenario"] == "fig7"
        assert data["metrics"]["wall_s"] == 10.0


class TestBaselines:
    def test_update_then_load_round_trips(self, tmp_path):
        original = record()
        update_baselines([original], tmp_path)
        assert baseline_path(tmp_path, "headline", "ci").is_file()
        assert load_baseline(tmp_path, "headline", "ci") == original

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_baseline(tmp_path, "headline", "ci") is None

    def test_corrupt_baseline_raises(self, tmp_path):
        baseline_path(tmp_path, "headline", "ci").write_text("{not json")
        with pytest.raises(BenchError):
            load_baseline(tmp_path, "headline", "ci")

    def test_default_baseline_dir_is_the_committed_one(self):
        path = default_baseline_dir()
        assert path.name == "baseline"
        assert path.parent.name == "benchmarks"


class TestRegressionGate:
    def test_within_threshold_is_clean(self, tmp_path):
        update_baselines([record()], tmp_path)
        findings, warnings = compare_records(
            [record(wall_s=11.0, epochs_per_s=950.0)], tmp_path, threshold=0.15
        )
        assert findings == []
        assert warnings == []

    def test_wall_time_regression_fires(self, tmp_path):
        update_baselines([record()], tmp_path)
        findings, _ = compare_records([record(wall_s=12.0)], tmp_path, threshold=0.15)
        assert [f.metric for f in findings] == ["wall_s"]
        assert findings[0].ratio == pytest.approx(1.2)
        assert "rose" in findings[0].message()

    def test_throughput_regression_fires(self, tmp_path):
        update_baselines([record()], tmp_path)
        findings, _ = compare_records(
            [record(epochs_per_s=500.0)], tmp_path, threshold=0.15
        )
        assert [f.metric for f in findings] == ["epochs_per_s"]
        assert "fell" in findings[0].message()

    def test_faster_is_never_a_regression(self, tmp_path):
        update_baselines([record()], tmp_path)
        findings, _ = compare_records(
            [record(wall_s=1.0, epochs_per_s=9999.0)], tmp_path, threshold=0.15
        )
        assert findings == []

    def test_missing_baseline_warns_but_passes(self, tmp_path):
        findings, warnings = compare_records([record()], tmp_path)
        assert findings == []
        assert len(warnings) == 1
        assert "--update-baseline" in warnings[0]

    def test_ungated_metrics_are_informational(self, tmp_path):
        update_baselines([record(obs_overhead=0.1)], tmp_path)
        findings, _ = compare_records(
            [record(obs_overhead=5.0)], tmp_path, threshold=0.15
        )
        assert findings == []

    def test_nonpositive_threshold_raises(self, tmp_path):
        with pytest.raises(BenchError):
            compare_records([record()], tmp_path, threshold=0.0)


class TestRunScenarios:
    def test_unknown_scenario_raises(self):
        with pytest.raises(BenchError):
            run_scenarios(["nope"], "ci", 0)

    def test_unknown_scale_raises(self):
        with pytest.raises(BenchError):
            run_scenarios(["headline"], "galactic", 0)

    def test_nonpositive_repeat_raises(self):
        with pytest.raises(BenchError):
            run_scenarios(["headline"], "ci", 0, repeat=0)

    def test_git_sha_is_nonempty(self):
        assert git_sha()
