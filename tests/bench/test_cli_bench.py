"""The ``thrifty bench`` subcommand: records, gating, exit codes."""

from __future__ import annotations

import json

from repro.cli import main


def run_bench(tmp_path, *extra):
    args = [
        "bench",
        "--scenario",
        "headline",
        "--scale",
        "ci",
        "--out",
        str(tmp_path / "out"),
        "--baseline",
        str(tmp_path / "baseline"),
        *extra,
    ]
    return main(args)


def test_update_baseline_then_gate_passes(tmp_path, capsys):
    assert run_bench(tmp_path, "--update-baseline") == 0
    assert (tmp_path / "baseline" / "headline_ci.json").is_file()
    record = json.loads((tmp_path / "out" / "BENCH_headline.json").read_text())
    assert record["scenario"] == "headline"
    assert record["scale"] == "ci"
    assert record["metrics"]["epochs_per_s"] > 0
    assert record["git_sha"]

    # Immediately re-running against the fresh baseline must pass the gate
    # (generous threshold: the workload cache makes the second run faster,
    # and faster never regresses; the threshold covers jitter upward).
    assert run_bench(tmp_path, "--threshold", "3.0") == 0
    out = capsys.readouterr().out
    assert "bench gate passed" in out


def test_regression_exits_nonzero(tmp_path, capsys):
    assert run_bench(tmp_path, "--update-baseline") == 0
    # Doctor the baseline into an impossibly fast machine: any real run
    # is now a >15% regression on both gated metrics.
    path = tmp_path / "baseline" / "headline_ci.json"
    record = json.loads(path.read_text())
    record["metrics"]["wall_s"] /= 1000.0
    record["metrics"]["epochs_per_s"] *= 1000.0
    path.write_text(json.dumps(record))

    assert run_bench(tmp_path) == 1
    err = capsys.readouterr().err
    assert "REGRESSION" in err
    assert "epochs_per_s" in err


def test_missing_baseline_warns_but_passes(tmp_path, capsys):
    assert run_bench(tmp_path) == 0
    captured = capsys.readouterr()
    assert "no baseline" in captured.err
    assert "bench gate passed" in captured.out


def test_unknown_scenario_is_usage_error(tmp_path, capsys):
    code = main(
        ["bench", "--scenario", "nope", "--out", str(tmp_path), "--baseline", str(tmp_path)]
    )
    assert code == 2
    assert "unknown bench scenario" in capsys.readouterr().err
