"""Scenario registry and a real headline/fig7 run at test scale."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import BenchScale
from repro.bench import (
    BENCH_SCALES,
    get_scenario,
    register_scenario,
    resolve_scale,
    scenario_names,
)
from repro.errors import BenchError

TEST_SCALE = BenchScale(
    num_tenants=40, horizon_days=7, holiday_weekdays=0, sessions_per_size=4, seed=7
)


class TestRegistry:
    def test_standard_scenarios_registered(self):
        assert {"headline", "fig7", "replay"} <= set(scenario_names())

    def test_unknown_scenario_raises(self):
        with pytest.raises(BenchError):
            get_scenario("nope")

    def test_duplicate_registration_raises(self):
        with pytest.raises(BenchError):
            register_scenario("headline", "twice")(lambda scale, workers: None)

    def test_standard_scales_registered(self):
        assert {"ci", "smoke", "default", "large"} <= set(BENCH_SCALES)
        assert resolve_scale("ci").num_tenants <= resolve_scale("default").num_tenants

    def test_unknown_scale_raises(self):
        with pytest.raises(BenchError):
            resolve_scale("galactic")


class TestHeadlineScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return get_scenario("headline").run(TEST_SCALE, 0)

    def test_gated_metrics_present(self, result):
        assert result.wall_s > 0.0
        assert result.metrics["wall_s"] == result.wall_s
        assert result.metrics["epochs_per_s"] > 0.0

    def test_reports_pipeline_outputs(self, result):
        assert 0.0 < result.metrics["effectiveness"] < 1.0
        assert result.metrics["solver_s"] >= 0.0
        assert result.detail["tenants"] == TEST_SCALE.num_tenants
        assert result.detail["nodes_used"] <= result.detail["nodes_requested"]


class TestFig7Scenario:
    @pytest.fixture(scope="class")
    def result(self):
        return get_scenario("fig7").run(TEST_SCALE, 0)

    def test_sweeps_the_ci_epoch_ladder(self, result):
        assert result.detail["epoch_sizes"] == [1.0, 30.0, 600.0]
        assert result.detail["shards"] == 3
        assert len(result.detail["rows"]) == 3

    def test_solver_time_is_shard_aggregate(self, result):
        assert result.metrics["solver_s"] > 0.0
        assert result.metrics["workload_s"] >= 0.0
        # Shard-internal solver time can never exceed the scenario wall.
        assert result.metrics["solver_s"] <= result.wall_s
