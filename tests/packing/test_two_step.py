"""Algorithm 2 tests, including the hand-verified Figure 5.3-style walkthrough."""

import numpy as np

from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import initial_groups, two_step_grouping
from tests.conftest import make_item, paper_example_problem


class TestInitialGroups:
    def test_groups_by_node_size(self):
        items = [make_item(1, 2, []), make_item(2, 4, []), make_item(3, 2, [])]
        groups = initial_groups(items)
        assert sorted(groups) == [2, 4]
        assert [i.tenant_id for i in groups[2]] == [1, 3]

    def test_homogeneity_is_step_one(self):
        # "it should put tenants of the same size into the same
        # tenant-group" — the 2-step heuristic never mixes sizes.
        items = [make_item(i, 2 if i % 2 else 8, []) for i in range(1, 9)]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=3, sla_fraction=0.99
        )
        solution = two_step_grouping(problem)
        for group in solution.groups:
            sizes = {problem.item(t).nodes_requested for t in group.tenant_ids}
            assert len(sizes) == 1


class TestWalkthrough:
    def test_paper_style_walkthrough(self):
        """Hand-checked trace (see conftest.paper_example_problem):

        seed T6, then insert T4, T3, T2, T5; T1 is rejected because it
        would push epoch 4 to four concurrent actives (TTP 0.9 < 0.99).
        """
        problem = paper_example_problem(replication_factor=3, sla_percent=99.0)
        solution = two_step_grouping(problem)
        solution.validate()
        groups = [set(g.tenant_ids) for g in solution.groups]
        assert {2, 3, 4, 5, 6} in groups
        assert {1} in groups
        assert len(groups) == 2

    def test_big_group_saturates_at_r(self):
        problem = paper_example_problem()
        solution = two_step_grouping(problem)
        main = solution.group_of(6)
        assert main.max_concurrent_active == 3  # = R, fully packed

    def test_looser_sla_admits_t1(self):
        # At P = 90 %, one violating epoch of ten is tolerable, so the
        # whole six-tenant set fits in a single group.
        problem = paper_example_problem(sla_percent=90.0)
        solution = two_step_grouping(problem)
        assert len(solution.groups) == 1

    def test_r1_strict_gives_disjoint_groups(self):
        # R = 1, P = 100 %: no epoch may have two active tenants, so each
        # group's members must have pairwise-disjoint activity.
        problem = paper_example_problem(replication_factor=1, sla_percent=100.0)
        solution = two_step_grouping(problem)
        solution.validate()
        for group in solution.groups:
            epochs = [problem.item(t).epochs for t in group.tenant_ids]
            combined = np.concatenate(epochs) if epochs else np.empty(0)
            assert len(np.unique(combined)) == len(combined)


class TestAlgorithmProperties:
    def test_partition_and_feasibility(self, matrix, config):
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        solution = two_step_grouping(problem)
        solution.validate()  # raises on any violation

    def test_seed_is_least_active(self):
        # "for all tenants in the same initial group, it first inserts the
        # least active tenant into a tenant-group".
        items = [
            make_item(1, 2, list(range(8))),
            make_item(2, 2, [0]),
            make_item(3, 2, [1, 2, 3]),
        ]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=1, sla_fraction=1.0
        )
        solution = two_step_grouping(problem)
        # The least-active tenant (T2) must be in the first-created group.
        assert 2 in solution.groups[0].tenant_ids

    def test_close_on_first_infeasible_best(self):
        # Algorithm 2 literal behaviour: when T_best does not fit, the
        # group closes without probing other candidates — even if another
        # candidate would fit.
        items = [
            make_item(1, 2, [0]),          # seed (least active)
            make_item(2, 2, [0, 1]),       # T_best by histogram (overlaps least... )
            make_item(3, 2, [5, 6, 7]),    # disjoint, would fit
        ]
        # R = 1, P = 100 %: T2 overlaps T1 at epoch 0 -> infeasible.
        # Keys after seeding T1: T2 hist over its epochs {0,1}: one epoch at
        # level 1 -> (1, 1); T3: (0, 3). T3 is actually best here, so to
        # force the scenario use activity making T2 best: give T3 more
        # epochs at level 0 than T2.
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=1, sla_fraction=1.0
        )
        solution = two_step_grouping(problem)
        solution.validate()
        # T3 (0,3) < T2 (1,1)? Lexicographic from top: (1,...) vs (0,...):
        # T3 wins and fits; then T2 becomes best but is infeasible -> new
        # group. Final: {1,3}, {2}.
        groups = [set(g.tenant_ids) for g in solution.groups]
        assert {1, 3} in groups
        assert {2} in groups

    def test_deterministic(self, matrix):
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        a = two_step_grouping(problem)
        b = two_step_grouping(problem)
        assert [g.tenant_ids for g in a.groups] == [g.tenant_ids for g in b.groups]

    def test_single_tenant_problem(self):
        problem = LIVBPwFCProblem(
            items=(make_item(1, 4, [0, 1, 2]),),
            num_epochs=10,
            replication_factor=3,
            sla_fraction=0.999,
        )
        solution = two_step_grouping(problem)
        assert len(solution.groups) == 1
        assert solution.total_nodes_used == 12

    def test_never_active_tenants_pack_together(self):
        items = [make_item(i, 2, []) for i in range(20)]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=3, sla_fraction=0.999
        )
        solution = two_step_grouping(problem)
        assert len(solution.groups) == 1
        assert solution.average_group_size == 20.0

    def test_solver_label_and_timing(self, matrix):
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        solution = two_step_grouping(problem)
        assert solution.solver == "2-step"
        assert solution.solve_seconds > 0
