"""MINLP formulation tests (Appendix 9.1 semantics)."""

import numpy as np
import pytest

from repro.errors import PackingError
from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.minlp import MINLPFormulation
from tests.conftest import make_item, paper_example_problem


@pytest.fixture
def formulation():
    return MINLPFormulation(paper_example_problem())


class TestDimensions:
    def test_num_groups_is_ceil_t_over_r(self, formulation):
        # Appendix 9.1: at most ceil(T/R) tenant-groups.
        assert formulation.num_groups == 2  # ceil(6/3)

    def test_single_tenant_instance(self):
        problem = LIVBPwFCProblem(
            items=(make_item(1, 2, [0]),),
            num_epochs=10,
            replication_factor=3,
            sla_fraction=0.999,
        )
        assert MINLPFormulation(problem).num_groups == 1


class TestObjective:
    def test_equation_9_1(self, formulation):
        # One group with all six 4-node tenants: R * max(n_i) = 12.
        assert formulation.objective([0] * 6) == 12
        # Two groups: 12 + 12.
        assert formulation.objective([0, 0, 0, 1, 1, 1]) == 24

    def test_empty_groups_cost_nothing(self, formulation):
        assert formulation.objective([1] * 6) == 12

    def test_assignment_shape_checked(self, formulation):
        with pytest.raises(PackingError):
            formulation.objective([0, 0])
        with pytest.raises(PackingError):
            formulation.objective([0, 0, 0, 0, 0, 5])


class TestConstraint:
    def test_feasible_assignment(self, formulation):
        # Tenants are ordered by problem.items: ids 1..6 -> indices 0..5.
        # Group {T2..T6} with T1 alone is feasible.
        assignment = [1, 0, 0, 0, 0, 0]
        assert formulation.constraint_short_epochs(assignment) == 0
        evaluation = formulation.evaluate(assignment)
        assert evaluation.feasible
        assert evaluation.objective == 24

    def test_infeasible_assignment_counts_shortfall(self, formulation):
        # All six together: epoch 4 has 4 actives; P = 99 % of 10 epochs
        # requires 10 ok epochs, only 9 are -> shortfall 1.
        assignment = [0] * 6
        assert formulation.constraint_short_epochs(assignment) == 1
        assert not formulation.evaluate(assignment).feasible

    def test_penalized_combines(self, formulation):
        feasible = formulation.penalized([1, 0, 0, 0, 0, 0])
        infeasible = formulation.penalized([0] * 6)
        assert feasible == 24
        assert infeasible == 12 + 1000.0


class TestDecoding:
    def test_random_key_decoding(self, formulation):
        point = np.array([0.1, 0.6, 0.4, 0.9, 0.0, 0.5])
        decoded = formulation.decode(point)
        assert decoded.tolist() == [0, 1, 0, 1, 0, 1]

    def test_boundary_value_clipped(self, formulation):
        decoded = formulation.decode(np.ones(6))
        assert decoded.max() == formulation.num_groups - 1

    def test_out_of_box_rejected(self, formulation):
        with pytest.raises(PackingError):
            formulation.decode(np.full(6, 1.5))

    def test_continuous_objective(self, formulation):
        value = formulation.continuous_objective(np.full(6, 0.0))
        assert value == formulation.penalized([0] * 6)


class TestSolutionMaterialization:
    def test_solution_from_assignment(self, formulation):
        solution = formulation.solution_from_assignment(
            [1, 0, 0, 0, 0, 0], solver="test", solve_seconds=0.1
        )
        solution.validate()
        assert solution.total_nodes_used == 24

    def test_penalty_validation(self):
        with pytest.raises(PackingError):
            MINLPFormulation(paper_example_problem(), penalty_per_epoch=0.0)
