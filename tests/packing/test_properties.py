"""Property-based tests (hypothesis) on the core packing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packing.exact import exact_grouping
from repro.packing.ffd import ffd_grouping
from repro.packing.livbp import LIVBPwFCProblem, group_ttp
from repro.packing.two_step import two_step_grouping
from tests.conftest import make_item

_NODE_SIZES = (2, 4, 8)
_D = 24


@st.composite
def problems(draw, max_tenants=10, sla_choices=(0.9, 0.95, 1.0), r_max=3):
    """Random small LIVBPwFC instances."""
    count = draw(st.integers(min_value=1, max_value=max_tenants))
    items = []
    for tenant_id in range(count):
        nodes = draw(st.sampled_from(_NODE_SIZES))
        epochs = draw(
            st.lists(st.integers(min_value=0, max_value=_D - 1), max_size=_D, unique=True)
        )
        items.append(make_item(tenant_id, nodes, sorted(epochs)))
    return LIVBPwFCProblem(
        items=tuple(items),
        num_epochs=_D,
        replication_factor=draw(st.integers(min_value=1, max_value=r_max)),
        sla_fraction=draw(st.sampled_from(sla_choices)),
    )


class TestSolverInvariants:
    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_two_step_produces_valid_partition(self, problem):
        two_step_grouping(problem).validate()

    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_ffd_produces_valid_partition(self, problem):
        ffd_grouping(problem).validate()

    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_solutions_never_beat_lower_bound(self, problem):
        # Any solution uses at least R * (largest tenant's nodes) and at
        # most R * sum(n_i) nodes (each tenant alone).
        r = problem.replication_factor
        largest = max(item.nodes_requested for item in problem.items)
        upper = r * sum(item.nodes_requested for item in problem.items)
        for solution in (two_step_grouping(problem), ffd_grouping(problem)):
            assert r * largest <= solution.total_nodes_used <= upper

    @given(problems(max_tenants=7))
    @settings(max_examples=25, deadline=None)
    def test_exact_is_lower_bound_for_heuristics(self, problem):
        optimal = exact_grouping(problem).total_nodes_used
        assert optimal <= two_step_grouping(problem).total_nodes_used
        assert optimal <= ffd_grouping(problem).total_nodes_used

    @given(problems())
    @settings(max_examples=40, deadline=None)
    def test_two_step_groups_are_size_homogeneous(self, problem):
        solution = two_step_grouping(problem)
        for group in solution.groups:
            sizes = {problem.item(t).nodes_requested for t in group.tenant_ids}
            assert len(sizes) == 1


class TestTTPInvariants:
    @given(problems())
    @settings(max_examples=40, deadline=None)
    def test_ttp_monotone_in_r(self, problem):
        items = list(problem.items)
        ttps = [group_ttp(items, problem.num_epochs, r) for r in range(1, 6)]
        assert all(b >= a for a, b in zip(ttps, ttps[1:]))

    @given(problems())
    @settings(max_examples=40, deadline=None)
    def test_ttp_decreases_when_adding_tenants(self, problem):
        items = list(problem.items)
        r = problem.replication_factor
        for k in range(1, len(items) + 1):
            prefix = items[:k]
            if k > 1:
                assert group_ttp(prefix, problem.num_epochs, r) <= group_ttp(
                    prefix[:-1], problem.num_epochs, r
                ) + 1e-12

    @given(problems())
    @settings(max_examples=40, deadline=None)
    def test_singleton_always_feasible(self, problem):
        # R >= 1 means any tenant alone satisfies the fuzzy capacity.
        for item in problem.items:
            assert problem.fits([item])

    @given(problems())
    @settings(max_examples=40, deadline=None)
    def test_audited_ttp_matches_recomputation(self, problem):
        solution = two_step_grouping(problem)
        for group in solution.groups:
            items = [problem.item(t) for t in group.tenant_ids]
            recomputed = group_ttp(items, problem.num_epochs, problem.replication_factor)
            assert group.ttp == recomputed


class TestEpochDiscretizationProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=5000, allow_nan=False),
                st.floats(min_value=0, max_value=500, allow_nan=False),
            ),
            max_size=20,
        ),
        st.sampled_from([1.0, 10.0, 30.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_epoch_count_bounds(self, raw_intervals, epoch_size):
        from repro.workload.activity import active_epoch_indices

        intervals = [(s, s + d) for s, d in raw_intervals]
        epochs = active_epoch_indices(intervals, epoch_size)
        assert (np.diff(epochs) > 0).all() if epochs.size > 1 else True
        # Every interval start's epoch is present; counts bounded by the
        # total span in epochs.
        for start, end in intervals:
            assert int(start // epoch_size) in epochs
        total_span_epochs = sum(
            int(np.ceil((end) / epoch_size)) - int(start // epoch_size)
            for start, end in intervals
        ) + len(intervals)
        assert epochs.size <= total_span_epochs
