"""LIVBPwFC problem / solution container tests."""

import pytest

from repro.errors import PackingError
from repro.packing.livbp import (
    GroupingSolution,
    LIVBPwFCProblem,
    group_concurrency,
    group_ttp,
)
from tests.conftest import make_item, paper_example_problem


class TestGroupMath:
    def test_concurrency(self):
        items = [make_item(1, 2, [0, 1]), make_item(2, 2, [1, 2])]
        assert group_concurrency(items, 4).tolist() == [1, 2, 1, 0]

    def test_ttp_counts_idle_epochs(self):
        # Epochs with zero active tenants satisfy <= R.
        items = [make_item(1, 2, [0])]
        assert group_ttp(items, 10, 1) == 1.0

    def test_ttp_with_violations(self):
        items = [make_item(i, 2, [0]) for i in range(4)]
        # Epoch 0 has 4 active > R = 3 -> 9 of 10 epochs ok.
        assert group_ttp(items, 10, 3) == pytest.approx(0.9)

    def test_paper_fuzzy_capacity_example(self):
        # Ch.5's worked example: a sum vector with one epoch above R = 3
        # yields COUNT<=3 = 9 of 10.
        problem = paper_example_problem()
        items = [problem.item(i) for i in (1, 2, 3, 4, 5, 6)]
        assert group_ttp(items, 10, 3) == pytest.approx(0.9)

    def test_ttp_validation(self):
        with pytest.raises(PackingError):
            group_ttp([], 0, 3)
        with pytest.raises(PackingError):
            group_ttp([], 10, 0)


class TestProblem:
    def test_fits(self):
        problem = paper_example_problem()
        assert problem.fits([problem.item(i) for i in (2, 3, 4, 5, 6)])
        assert not problem.fits([problem.item(i) for i in (1, 2, 3, 4, 5, 6)])

    def test_group_cost(self):
        problem = paper_example_problem()
        assert problem.group_cost([problem.item(1)]) == 3 * 4

    def test_empty_group_cost_rejected(self):
        with pytest.raises(PackingError):
            paper_example_problem().group_cost([])

    def test_total_nodes(self):
        assert paper_example_problem().total_nodes_requested() == 24

    def test_item_lookup(self):
        problem = paper_example_problem()
        assert problem.item(3).tenant_id == 3
        with pytest.raises(PackingError):
            problem.item(42)

    def test_validation(self):
        items = (make_item(1, 2, [0]),)
        with pytest.raises(PackingError):
            LIVBPwFCProblem(items=items, num_epochs=0, replication_factor=3, sla_fraction=0.99)
        with pytest.raises(PackingError):
            LIVBPwFCProblem(items=items, num_epochs=10, replication_factor=0, sla_fraction=0.99)
        with pytest.raises(PackingError):
            LIVBPwFCProblem(items=items, num_epochs=10, replication_factor=3, sla_fraction=0.0)
        with pytest.raises(PackingError):
            LIVBPwFCProblem(
                items=(make_item(1, 2, [0]), make_item(1, 2, [1])),
                num_epochs=10,
                replication_factor=3,
                sla_fraction=0.99,
            )


class TestGroupingSolution:
    def test_toy_example_metrics(self):
        # Figure 4.1: ten tenants, 42 requested nodes, A = 3 groups sized
        # to the largest (6-node) tenant -> 18 nodes, saving 24.
        items = [
            make_item(i, n, [])
            for i, n in enumerate([6, 6, 5, 5, 5, 4, 4, 3, 2, 2], start=1)
        ]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=3, sla_fraction=0.999
        )
        solution = GroupingSolution(problem, [[i for i, __ in enumerate(items, start=1)]])
        assert problem.total_nodes_requested() == 42
        assert solution.total_nodes_used == 18
        assert solution.nodes_saved == 24
        assert solution.consolidation_effectiveness == pytest.approx(24 / 42)
        assert solution.average_group_size == 10.0

    def test_audited_group_stats(self):
        problem = paper_example_problem()
        solution = GroupingSolution(problem, [[2, 3, 4, 5, 6], [1]])
        group = solution.group_of(3)
        assert group.largest_nodes == 4
        assert group.nodes_used == 12
        assert group.ttp == 1.0
        assert group.max_concurrent_active == 3
        assert solution.group_of(1).tenant_ids == (1,)

    def test_validate_accepts_partition(self):
        problem = paper_example_problem()
        GroupingSolution(problem, [[2, 3, 4, 5, 6], [1]]).validate()

    def test_validate_rejects_missing_tenant(self):
        problem = paper_example_problem()
        with pytest.raises(PackingError):
            GroupingSolution(problem, [[2, 3, 4, 5]]).validate()

    def test_validate_rejects_duplicates(self):
        problem = paper_example_problem()
        with pytest.raises(PackingError):
            GroupingSolution(problem, [[1, 2, 3], [3, 4, 5, 6]]).validate()

    def test_validate_rejects_capacity_violation(self):
        problem = paper_example_problem(sla_percent=99.9)
        # All six together has TTP 0.9 < 0.999.
        with pytest.raises(PackingError):
            GroupingSolution(problem, [[1, 2, 3, 4, 5, 6]]).validate()

    def test_unknown_tenant_in_group_rejected(self):
        with pytest.raises(PackingError):
            GroupingSolution(paper_example_problem(), [[99]])

    def test_empty_group_rejected(self):
        with pytest.raises(PackingError):
            GroupingSolution(paper_example_problem(), [[]])

    def test_group_of_unknown_tenant(self):
        solution = GroupingSolution(paper_example_problem(), [[1, 2, 3, 4, 5, 6]])
        with pytest.raises(PackingError):
            solution.group_of(42)

    def test_summary_keys(self):
        solution = GroupingSolution(paper_example_problem(), [[1, 2, 3, 4, 5, 6]])
        summary = solution.summary()
        assert set(summary) == {
            "tenants",
            "groups",
            "nodes_requested",
            "nodes_used",
            "effectiveness",
            "avg_group_size",
            "solve_seconds",
        }
