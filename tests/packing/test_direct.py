"""DIRECT optimizer tests: classic test functions plus the MINLP route."""

import numpy as np
import pytest

from repro.errors import PackingError
from repro.packing.direct import DirectOptimizer, solve_livbp_with_direct
from repro.packing.exact import exact_grouping
from tests.conftest import paper_example_problem


class TestDirectOnTestFunctions:
    def test_quadratic_1d(self):
        # min (x - 0.7)^2 on [0, 1].
        optimizer = DirectOptimizer(lambda x: (x[0] - 0.7) ** 2, dims=1)
        result = optimizer.minimize(max_evals=200)
        assert result.best_point[0] == pytest.approx(0.7, abs=0.02)
        assert result.best_value < 5e-4

    def test_quadratic_3d(self):
        target = np.array([0.2, 0.5, 0.9])

        def sphere(x):
            return float(((x - target) ** 2).sum())

        result = DirectOptimizer(sphere, dims=3).minimize(max_evals=600)
        assert result.best_value < 0.01

    def test_rastrigin_like_multimodal(self):
        # DIRECT is a global method: it must escape the local minimum at
        # the centre of the box.
        def bumpy(x):
            z = x[0]
            return float((z - 0.9) ** 2 + 0.1 * np.sin(20 * z) ** 2)

        result = DirectOptimizer(bumpy, dims=1).minimize(max_evals=300)
        assert result.best_point[0] == pytest.approx(0.9, abs=0.05)

    def test_history_is_non_increasing(self):
        result = DirectOptimizer(lambda x: float(x[0]), dims=1).minimize(max_evals=100)
        history = list(result.history)
        assert all(b <= a for a, b in zip(history, history[1:]))

    def test_respects_eval_budget(self):
        calls = []

        def counting(x):
            calls.append(1)
            return float(x.sum())

        result = DirectOptimizer(counting, dims=2).minimize(max_evals=50)
        assert result.evaluations <= 50
        assert len(calls) == result.evaluations

    def test_max_iters(self):
        result = DirectOptimizer(lambda x: float(x[0]), dims=2).minimize(
            max_evals=10_000, max_iters=3
        )
        assert result.iterations <= 3

    def test_validation(self):
        with pytest.raises(PackingError):
            DirectOptimizer(lambda x: 0.0, dims=0)
        with pytest.raises(PackingError):
            DirectOptimizer(lambda x: 0.0, dims=1, epsilon=-1.0)
        with pytest.raises(PackingError):
            DirectOptimizer(lambda x: 0.0, dims=1).minimize(max_evals=0)

    def test_nan_rejected(self):
        optimizer = DirectOptimizer(lambda x: float("nan"), dims=1)
        with pytest.raises(PackingError):
            optimizer.minimize(max_evals=10)


class TestMINLPRoute:
    def test_finds_feasible_solution(self):
        problem = paper_example_problem()
        solution, result = solve_livbp_with_direct(problem, max_evals=800)
        solution.validate()
        assert result.evaluations <= 800

    def test_close_to_optimal_on_tiny_instance(self):
        # The paper uses DIRECT as the optimal reference on tiny inputs;
        # with a decent budget it should match the exact optimum here.
        problem = paper_example_problem()
        optimal = exact_grouping(problem).total_nodes_used
        solution, __ = solve_livbp_with_direct(problem, max_evals=2000)
        assert solution.total_nodes_used <= optimal + 12  # within one group

    def test_repair_guarantees_feasibility_even_with_tiny_budget(self):
        problem = paper_example_problem()
        solution, __ = solve_livbp_with_direct(problem, max_evals=3)
        solution.validate()
