"""Exact branch-and-bound tests: optimality on tiny instances."""

import pytest

from repro.errors import PackingError
from repro.packing.exact import exact_grouping
from repro.packing.ffd import ffd_grouping
from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import two_step_grouping
from tests.conftest import make_item, paper_example_problem


class TestExact:
    def test_optimal_on_paper_example(self):
        problem = paper_example_problem()
        solution = exact_grouping(problem)
        solution.validate()
        # Five tenants pack into one group, T1 alone: 2 groups x R=3 x 4
        # nodes; no feasible single-group solution exists at P = 99 %.
        assert solution.total_nodes_used == 24

    def test_never_worse_than_heuristics(self):
        problem = paper_example_problem()
        exact = exact_grouping(problem)
        assert exact.total_nodes_used <= two_step_grouping(problem).total_nodes_used
        assert exact.total_nodes_used <= ffd_grouping(problem).total_nodes_used

    def test_mixed_sizes_beats_homogeneous_split_when_useful(self):
        # An inactive 8-node tenant and an inactive 2-node tenant: optimal
        # merges them (cost 3x8), the 2-step's homogeneity splits them
        # (cost 3x8 + 3x2). The exact solver must find the merge.
        items = [make_item(1, 8, []), make_item(2, 2, [])]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=3, sla_fraction=0.999
        )
        exact = exact_grouping(problem)
        assert exact.total_nodes_used == 24
        assert two_step_grouping(problem).total_nodes_used == 30

    def test_capacity_forces_split(self):
        # Two tenants with identical always-on activity at R = 1, P=100 %:
        # they cannot share a group.
        items = [make_item(1, 2, list(range(10))), make_item(2, 2, list(range(10)))]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=1, sla_fraction=1.0
        )
        exact = exact_grouping(problem)
        assert len(exact.groups) == 2

    def test_size_limit_enforced(self):
        items = tuple(make_item(i, 2, []) for i in range(20))
        problem = LIVBPwFCProblem(
            items=items, num_epochs=10, replication_factor=3, sla_fraction=0.999
        )
        with pytest.raises(PackingError):
            exact_grouping(problem)

    def test_single_tenant(self):
        problem = LIVBPwFCProblem(
            items=(make_item(1, 4, [0]),),
            num_epochs=10,
            replication_factor=3,
            sla_fraction=0.999,
        )
        solution = exact_grouping(problem)
        assert len(solution.groups) == 1

    def test_solver_label(self):
        solution = exact_grouping(paper_example_problem())
        assert solution.solver == "exact-bb"
