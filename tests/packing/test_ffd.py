"""FFD baseline tests."""

import pytest

from repro.errors import PackingError
from repro.packing.ffd import FFD_SORT_KEYS, ffd_grouping
from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import two_step_grouping
from tests.conftest import make_item, paper_example_problem


class TestFFD:
    def test_partition_and_feasibility(self, matrix):
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        solution = ffd_grouping(problem)
        solution.validate()

    def test_decreasing_order(self):
        # The largest-volume tenant must land in the first bin.
        items = [
            make_item(1, 2, [0]),
            make_item(2, 32, list(range(8))),
            make_item(3, 4, [1, 2]),
        ]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=3, sla_fraction=0.99
        )
        solution = ffd_grouping(problem)
        assert 2 in solution.groups[0].tenant_ids

    def test_mixes_sizes_unlike_two_step(self):
        # FFD is size-oblivious: inactive tenants of different sizes land
        # in one bin, paying for the largest — the structural weakness the
        # 2-step heuristic fixes.
        items = [make_item(1, 32, []), make_item(2, 2, []), make_item(3, 2, [])]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=3, sla_fraction=0.999
        )
        ffd = ffd_grouping(problem)
        assert len(ffd.groups) == 1
        assert ffd.total_nodes_used == 3 * 32
        two_step = two_step_grouping(problem)
        assert two_step.total_nodes_used == 3 * 32 + 3 * 2

    def test_respects_fuzzy_capacity(self):
        problem = paper_example_problem(sla_percent=99.0)
        solution = ffd_grouping(problem)
        solution.validate()
        for group in solution.groups:
            assert group.ttp >= 0.99

    def test_sort_key_variants(self, matrix):
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        for key in FFD_SORT_KEYS:
            solution = ffd_grouping(problem, sort_key=key)
            solution.validate()
            assert solution.solver == f"ffd:{key}"

    def test_unknown_sort_key_rejected(self, matrix):
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        with pytest.raises(PackingError):
            ffd_grouping(problem, sort_key="nope")

    def test_hard_capacity_variant_is_more_conservative(self, matrix):
        # The classic-VBP full test (no epoch above R) can only produce
        # smaller (or equal) bins than the fuzzy test.
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        fuzzy = ffd_grouping(problem, fuzzy=True)
        hard = ffd_grouping(problem, fuzzy=False)
        hard.validate()
        assert hard.solver == "ffd-hard:activity"
        assert len(hard.groups) >= len(fuzzy.groups)
        # Hard bins truly never exceed R concurrent actives.
        for group in hard.groups:
            assert group.max_concurrent_active <= problem.replication_factor

    def test_size_blind_sorting_is_the_baseline(self):
        # Paper: FFD "did not take into account ... the largest item" —
        # the default ordering ignores node counts, so a highly active
        # small tenant is placed before a quiet huge one.
        items = [make_item(1, 32, [0]), make_item(2, 2, [1, 2, 3, 4])]
        problem = LIVBPwFCProblem(
            items=tuple(items), num_epochs=10, replication_factor=1, sla_fraction=1.0
        )
        solution = ffd_grouping(problem)
        assert 2 in solution.groups[0].tenant_ids

    def test_deterministic(self, matrix):
        problem = LIVBPwFCProblem.from_activity_matrix(matrix, 3, 99.9)
        a = ffd_grouping(problem)
        b = ffd_grouping(problem)
        assert [g.tenant_ids for g in a.groups] == [g.tenant_ids for g in b.groups]

    def test_single_item(self):
        problem = LIVBPwFCProblem(
            items=(make_item(1, 4, [0]),),
            num_epochs=10,
            replication_factor=2,
            sla_fraction=0.999,
        )
        solution = ffd_grouping(problem)
        assert len(solution.groups) == 1
        assert solution.total_nodes_used == 8
