"""Unit tests for DIRECT's internal mechanics (rectangles, selection)."""

import numpy as np
import pytest

from repro.packing.direct import DirectOptimizer, _Rect


def _rect(levels, value):
    levels = np.asarray(levels, dtype=np.int64)
    return _Rect(center=np.full(len(levels), 0.5), levels=levels, value=value)


class TestRectGeometry:
    def test_unit_cube_measure(self):
        # Half-diagonal of the unit square: sqrt(2)/2.
        rect = _rect([0, 0], 1.0)
        assert rect.measure() == pytest.approx(np.sqrt(2) / 2)

    def test_trisection_shrinks_measure(self):
        parent = _rect([0, 0], 1.0)
        child = _rect([1, 0], 1.0)
        assert child.measure() < parent.measure()

    def test_max_side_dims(self):
        rect = _rect([1, 0, 0, 2], 1.0)
        assert rect.max_side_dims().tolist() == [1, 2]

    def test_all_equal_sides(self):
        rect = _rect([1, 1], 1.0)
        assert rect.max_side_dims().tolist() == [0, 1]


class TestPotentiallyOptimalSelection:
    def _select(self, rects, best_value):
        optimizer = DirectOptimizer(lambda x: 0.0, dims=2)
        return optimizer._potentially_optimal(rects, best_value)

    def test_single_rect_selected(self):
        rects = [_rect([0, 0], 5.0)]
        assert self._select(rects, 5.0) == [0]

    def test_best_per_measure_wins(self):
        # Two rects of identical measure: only the better value can be
        # potentially optimal.
        rects = [_rect([0, 0], 5.0), _rect([0, 0], 3.0)]
        selected = self._select(rects, 3.0)
        assert selected == [1]

    def test_largest_rect_always_selected(self):
        # The largest rectangle anchors the hull regardless of value.
        rects = [_rect([0, 0], 100.0), _rect([1, 1], 1.0)]
        selected = self._select(rects, 1.0)
        assert 0 in selected

    def test_dominated_mid_size_rect_skipped(self):
        # A mid-measure rect lying above the hull between a better small
        # and the big anchor is never selected.
        big = _rect([0, 0], 10.0)       # largest, selected by rule
        mid = _rect([1, 0], 50.0)       # bad value, above the hull
        small = _rect([1, 1], 1.0)      # best value
        selected = self._select([big, mid, small], 1.0)
        assert 1 not in selected

    def test_hull_includes_improving_small_rect(self):
        big = _rect([0, 0], 10.0)
        small = _rect([1, 1], 2.0)
        selected = self._select([big, small], 2.0)
        # The small rect can improve on the best value along the hull.
        assert set(selected) == {0, 1}


class TestConvergenceBehaviour:
    def test_refines_around_minimum(self):
        # After a run, the best point's rectangle has been trisected more
        # than average: evaluations cluster near the optimum.
        target = 0.83

        def f(x):
            return (x[0] - target) ** 2

        optimizer = DirectOptimizer(f, dims=1)
        result = optimizer.minimize(max_evals=150)
        assert abs(result.best_point[0] - target) < 0.02

    def test_deterministic(self):
        def f(x):
            return float(np.sin(7 * x[0]) + x[1] ** 2)

        a = DirectOptimizer(f, dims=2).minimize(max_evals=200)
        b = DirectOptimizer(f, dims=2).minimize(max_evals=200)
        assert a.best_value == b.best_value
        assert (a.best_point == b.best_point).all()
        assert a.evaluations == b.evaluations
