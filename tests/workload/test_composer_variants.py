"""Composer configuration-variant edge cases."""

import pytest

from repro.units import HOUR
from repro.workload.composer import MultiTenantLogComposer
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def shared_library():
    from repro.workload.generator import SessionLogGenerator

    config = tiny_config(num_tenants=12, seed=23)
    return config, SessionLogGenerator(config, sessions_per_size=2).generate()


class TestNoEveningSession:
    def test_two_sessions_per_workday(self, shared_library):
        base, library = shared_library
        from dataclasses import replace

        config = base.scaled(logs=replace(base.logs, include_evening_session=False))
        workload = MultiTenantLogComposer(config, library).compose()
        logs = config.logs
        workdays = sum(
            1 for d in range(logs.horizon_days) if d % 7 < logs.workdays_per_week
        )
        for tenant_id in workload.tenant_ids[:4]:
            assert len(workload.picks_of(tenant_id)) == workdays * 2

    def test_less_activity_than_default(self, shared_library):
        base, library = shared_library
        from dataclasses import replace

        config = base.scaled(logs=replace(base.logs, include_evening_session=False))
        with_evening = MultiTenantLogComposer(base, library).compose()
        without = MultiTenantLogComposer(config, library).compose()
        tid = with_evening.tenant_ids[0]
        assert (
            without.tenant_log(tid).total_busy_seconds()
            < with_evening.tenant_log(tid).total_busy_seconds()
        )


class TestNoLunchOffsets:
    def test_afternoon_directly_after_morning(self, shared_library):
        base, library = shared_library
        config = base.scaled(logs=base.logs.without_lunch())
        workload = MultiTenantLogComposer(config, library).compose()
        tenant = workload.tenants[0]
        picks = workload.picks_of(tenant.tenant_id)
        first_day = sorted(p.shift_s for p in picks)[:3]
        base_offset = tenant.tz_offset_hours * HOUR
        # Morning at O, afternoon at O+3h (no 2h lunch), evening at O+12h.
        assert first_day[0] == pytest.approx(base_offset)
        assert first_day[1] == pytest.approx(base_offset + 3 * HOUR)
        assert first_day[2] == pytest.approx(base_offset + 12 * HOUR)


class TestWeekendOnlyConfig:
    def test_zero_workdays_means_empty_logs(self, shared_library):
        base, library = shared_library
        from dataclasses import replace

        config = base.scaled(logs=replace(base.logs, workdays_per_week=0))
        workload = MultiTenantLogComposer(config, library).compose()
        assert all(len(workload.picks_of(t)) == 0 for t in workload.tenant_ids)
        assert workload.activity_epochs(workload.tenant_ids[0], 60.0).size == 0


class TestSevenDayWeek:
    def test_every_day_active(self, shared_library):
        base, library = shared_library
        from dataclasses import replace

        config = base.scaled(logs=replace(base.logs, workdays_per_week=7))
        workload = MultiTenantLogComposer(config, library).compose()
        expected = config.logs.horizon_days * 3
        assert len(workload.picks_of(workload.tenant_ids[0])) == expected
