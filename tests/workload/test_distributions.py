"""Zipf tenant-size distribution tests (§7.1 Step 2)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.distributions import sample_node_sizes, zipf_pmf


class TestZipfPmf:
    def test_sums_to_one(self):
        assert zipf_pmf(5, 0.8).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(5, 0.8)
        assert all(a > b for a, b in zip(pmf, pmf[1:]))

    def test_small_theta_tends_uniform(self):
        pmf = zipf_pmf(5, 0.01)
        assert pmf.max() - pmf.min() < 0.02

    def test_large_theta_tends_skew(self):
        mild = zipf_pmf(5, 0.1)
        heavy = zipf_pmf(5, 0.99)
        assert heavy[0] > mild[0]
        assert heavy[-1] < mild[-1]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_pmf(0, 0.8)
        with pytest.raises(WorkloadError):
            zipf_pmf(5, 0.0)
        with pytest.raises(WorkloadError):
            zipf_pmf(5, 1.0)


class TestSampleNodeSizes:
    def test_samples_from_menu(self):
        sizes = sample_node_sizes([2, 4, 8, 16, 32], 1000, 0.8, np.random.default_rng(0))
        assert set(np.unique(sizes)) <= {2, 4, 8, 16, 32}
        assert len(sizes) == 1000

    def test_smallest_size_most_common(self):
        # Figure 5.2 shape: most tenants request the smallest MPPDB.
        sizes = sample_node_sizes([2, 4, 8, 16, 32], 5000, 0.8, np.random.default_rng(0))
        counts = {s: int((sizes == s).sum()) for s in (2, 4, 8, 16, 32)}
        assert counts[2] > counts[4] > counts[8]
        assert counts[8] >= counts[16] >= counts[32]

    def test_deterministic_given_rng(self):
        a = sample_node_sizes([2, 4], 50, 0.8, np.random.default_rng(3))
        b = sample_node_sizes([2, 4], 50, 0.8, np.random.default_rng(3))
        assert (a == b).all()

    def test_unsorted_menu_rejected(self):
        with pytest.raises(WorkloadError):
            sample_node_sizes([4, 2], 10, 0.8, np.random.default_rng(0))

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            sample_node_sizes([2, 4], -1, 0.8, np.random.default_rng(0))

    def test_zero_count(self):
        assert len(sample_node_sizes([2, 4], 0, 0.8, np.random.default_rng(0))) == 0
