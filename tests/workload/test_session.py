"""User-session behaviour tests (§7.1 Step 1 semantics)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.queries import QueryTemplate
from repro.workload.session import SessionConfig, run_user_session

_TEMPLATES = [
    QueryTemplate("tpch.q1", "tpch", 0.01),
    QueryTemplate("tpch.q6", "tpch", 0.005),
]


def _work_of(template):
    return template.dedicated_latency_s(200.0, 2)


def _run(num_users=2, seed=0, **config_overrides):
    config = SessionConfig(duration_s=1800.0, **config_overrides)
    return run_user_session(
        num_users=num_users,
        config=config,
        templates=_TEMPLATES,
        work_of=_work_of,
        rng=np.random.default_rng(seed),
    )


class TestSessionConfig:
    def test_paper_defaults(self):
        config = SessionConfig()
        assert config.duration_s == 3 * 3600.0
        assert config.max_batch == 10
        assert config.min_think_s == 3.0
        assert config.max_think_s == 600.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("duration_s", 0.0),
            ("batch_probability", 1.5),
            ("max_batch", 0),
            ("min_think_s", -1.0),
            ("max_initial_stagger_s", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(WorkloadError):
            SessionConfig(**{field: value})


class TestRunUserSession:
    def test_produces_completed_queries(self):
        completed, attribution = _run()
        assert len(completed) > 0
        assert all(q.finished for q in completed)
        assert set(attribution) == {q.query_id for q in completed}

    def test_attribution_fields(self):
        completed, attribution = _run(num_users=3)
        users = {attribution[q.query_id][0] for q in completed}
        assert users <= {0, 1, 2}
        templates = {attribution[q.query_id][1] for q in completed}
        assert templates <= {"tpch.q1", "tpch.q6"}

    def test_deterministic_given_seed(self):
        a, __ = _run(seed=5)
        b, __ = _run(seed=5)
        assert [(q.submit_time, q.work_s) for q in a] == [
            (q.submit_time, q.work_s) for q in b
        ]

    def test_different_seeds_differ(self):
        a, __ = _run(seed=1)
        b, __ = _run(seed=2)
        assert [(q.submit_time, q.work_s) for q in a] != [
            (q.submit_time, q.work_s) for q in b
        ]

    def test_batches_share_batch_id(self):
        completed, attribution = _run(num_users=1, seed=3, batch_probability=1.0)
        batch_ids = [attribution[q.query_id][2] for q in completed]
        assert all(b >= 0 for b in batch_ids)
        # At least one batch has more than one query (max_batch = 10).
        from collections import Counter

        sizes = Counter(batch_ids)
        assert max(sizes.values()) > 1

    def test_single_mode_has_no_batch_ids(self):
        completed, attribution = _run(num_users=1, seed=3, batch_probability=0.0)
        assert all(attribution[q.query_id][2] == -1 for q in completed)

    def test_no_submissions_after_session_end(self):
        completed, __ = _run()
        assert all(q.submit_time < 1800.0 for q in completed)

    def test_think_time_between_user_events(self):
        # A single user never overlaps its own single queries: each event
        # waits for completion plus think time.
        completed, attribution = _run(num_users=1, seed=4, batch_probability=0.0)
        ordered = sorted(completed, key=lambda q: q.submit_time)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.submit_time >= earlier.finish_time + 3.0 - 1e-9

    def test_multi_user_interference_inflates_latency(self):
        # With several users on one dedicated engine, some query must
        # observe slowdown > 1 (this is what makes the collected logs
        # "real" in the paper's sense).
        completed, __ = _run(num_users=5, seed=0, max_initial_stagger_s=0.0)
        assert any(q.slowdown > 1.001 for q in completed)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            run_user_session(0, SessionConfig(), _TEMPLATES, _work_of, np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            run_user_session(1, SessionConfig(), [], _work_of, np.random.default_rng(0))
