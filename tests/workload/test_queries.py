"""Query template and TPC-H/DS set tests."""

import pytest

from repro.errors import WorkloadError
from repro.mppdb.scaleout import AmdahlScaleOut, LinearScaleOut
from repro.workload.queries import QueryTemplate, template_by_name
from repro.workload.tpcds import TPCDS_TEMPLATES, tpcds_template
from repro.workload.tpch import TPCH_TEMPLATES, tpch_template


class TestQueryTemplate:
    def test_dedicated_latency(self):
        template = QueryTemplate("t", "tpch", seconds_per_gb=0.01)
        # 0.01 s/GB x 200 GB / 2 nodes = 1 s.
        assert template.dedicated_latency_s(200.0, 2) == pytest.approx(1.0)

    def test_linear_flag(self):
        linear = QueryTemplate("a", "tpch", 0.01, LinearScaleOut())
        amdahl = QueryTemplate("b", "tpch", 0.01, AmdahlScaleOut(0.2))
        assert linear.is_linear_scale_out
        assert not amdahl.is_linear_scale_out

    def test_validation(self):
        with pytest.raises(WorkloadError):
            QueryTemplate("", "tpch", 0.01)
        with pytest.raises(WorkloadError):
            QueryTemplate("x", "mysql", 0.01)
        with pytest.raises(WorkloadError):
            QueryTemplate("x", "tpch", 0.0)
        with pytest.raises(WorkloadError):
            QueryTemplate("x", "tpch", 0.01).dedicated_latency_s(-1.0, 2)


class TestTPCH:
    def test_all_22_queries(self):
        assert sorted(TPCH_TEMPLATES) == list(range(1, 23))

    def test_q1_is_linear(self):
        # Figure 1.1a: Q1 scales out linearly.
        assert tpch_template(1).is_linear_scale_out

    def test_q19_is_non_linear(self):
        # Figure 1.1c: Q19 does not scale out linearly.
        q19 = tpch_template(19)
        assert not q19.is_linear_scale_out
        assert isinstance(q19.curve, AmdahlScaleOut)

    def test_names_and_benchmark(self):
        for number, template in TPCH_TEMPLATES.items():
            assert template.name == f"tpch.q{number}"
            assert template.benchmark == "tpch"

    def test_unknown_query_rejected(self):
        with pytest.raises(WorkloadError):
            tpch_template(23)

    def test_q1_latency_order_of_magnitude(self):
        # ~1 s on a 2-node / 200 GB tenant (the calibration note in the
        # module docstring).
        latency = tpch_template(1).dedicated_latency_s(200.0, 2)
        assert 0.3 < latency < 3.0


class TestTPCDS:
    def test_twenty_queries(self):
        assert len(TPCDS_TEMPLATES) == 20

    def test_names_and_benchmark(self):
        for number, template in TPCDS_TEMPLATES.items():
            assert template.name == f"tpcds.q{number}"
            assert template.benchmark == "tpcds"

    def test_q72_is_heaviest(self):
        # TPC-DS Q72 is the notorious catalog/inventory join.
        costs = {n: t.seconds_per_gb for n, t in TPCDS_TEMPLATES.items()}
        assert max(costs, key=costs.get) == 72

    def test_unknown_query_rejected(self):
        with pytest.raises(WorkloadError):
            tpcds_template(1)


class TestTemplateByName:
    def test_resolves_both_benchmarks(self):
        assert template_by_name("tpch.q19") is tpch_template(19)
        assert template_by_name("tpcds.q72") is tpcds_template(72)

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            template_by_name("tpch.q99")
