"""Session library / Step 1 generator tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.generator import SessionLibrary, SessionLogGenerator
from tests.conftest import tiny_config


class TestSessionLogGenerator:
    def test_library_covers_all_sizes(self, library, config):
        assert library.node_sizes == tuple(sorted(config.node_sizes))
        for size in config.node_sizes:
            assert len(library.sessions_for(size)) == 4

    def test_sessions_have_paper_shape(self, library, config):
        for size in config.node_sizes:
            for session in library.sessions_for(size):
                assert session.node_size == size
                assert session.benchmark in ("tpch", "tpcds")
                assert 1 <= session.num_users <= config.logs.max_users
                assert session.duration_s == config.logs.session_seconds
                assert all(
                    r.submit_time_s < session.duration_s for r in session.records
                )

    def test_sessions_are_nonempty(self, library):
        sizes = library.node_sizes
        assert all(
            len(session.records) > 0
            for size in sizes
            for session in library.sessions_for(size)
        )

    def test_deterministic(self):
        config = tiny_config(seed=99)
        a = SessionLogGenerator(config, sessions_per_size=2).generate()
        b = SessionLogGenerator(config, sessions_per_size=2).generate()
        for size in config.node_sizes:
            ra = a.sessions_for(size)[0].records
            rb = b.sessions_for(size)[0].records
            assert [(r.submit_time_s, r.template) for r in ra] == [
                (r.submit_time_s, r.template) for r in rb
            ]

    def test_mean_busy_fraction_in_calibrated_band(self, library):
        # The calibration target: sessions are mostly thinking, not
        # executing (see the TPC-H module docstring and EXPERIMENTS.md).
        busy = library.mean_busy_fraction()
        assert 0.02 < busy < 0.35

    def test_invalid_sessions_per_size(self):
        with pytest.raises(WorkloadError):
            SessionLogGenerator(tiny_config(), sessions_per_size=0)


class TestSessionLibrary:
    def test_epoch_indices_cached_and_sorted(self, library, config):
        size = config.node_sizes[0]
        a = library.epoch_indices(size, 0, 10.0)
        b = library.epoch_indices(size, 0, 10.0)
        assert a is b  # cached
        assert (np.diff(a) > 0).all()

    def test_epoch_indices_consistent_with_intervals(self, library, config):
        size = config.node_sizes[0]
        session = library.session(size, 0)
        epochs = set(library.epoch_indices(size, 0, 10.0).tolist())
        for start, end in session.busy_intervals():
            assert int(start // 10.0) in epochs

    def test_finer_epochs_give_fewer_busy_seconds_estimate(self, library, config):
        # Epoch inflation: coarse epochs over-count activity, so the
        # epoch-count x size estimate shrinks as E shrinks.
        size = config.node_sizes[0]
        coarse = len(library.epoch_indices(size, 0, 60.0)) * 60.0
        fine = len(library.epoch_indices(size, 0, 1.0)) * 1.0
        assert fine <= coarse

    def test_unknown_size_rejected(self, library):
        with pytest.raises(WorkloadError):
            library.sessions_for(3)

    def test_bad_index_rejected(self, library, config):
        with pytest.raises(WorkloadError):
            library.session(config.node_sizes[0], 999)

    def test_empty_library_rejected(self):
        with pytest.raises(WorkloadError):
            SessionLibrary({})

    def test_mismatched_sizes_rejected(self, library, config):
        size = config.node_sizes[0]
        other = config.node_sizes[1]
        with pytest.raises(WorkloadError):
            SessionLibrary({other: library.sessions_for(size)})
