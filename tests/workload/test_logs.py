"""Query record / tenant log / interval algebra tests."""

import pytest

from repro.errors import WorkloadError
from repro.workload.logs import QueryRecord, TenantLog, merge_intervals
from repro.workload.tenant import TenantSpec


def _spec(tenant_id=1, nodes=2):
    return TenantSpec(tenant_id=tenant_id, nodes_requested=nodes, data_gb=200.0)


class TestQueryRecord:
    def test_finish_time(self):
        record = QueryRecord(submit_time_s=10.0, latency_s=5.0, template="tpch.q1")
        assert record.finish_time_s == 15.0

    def test_shifted(self):
        record = QueryRecord(submit_time_s=10.0, latency_s=5.0, template="tpch.q1")
        moved = record.shifted(100.0)
        assert moved.submit_time_s == 110.0
        assert moved.latency_s == 5.0
        assert record.submit_time_s == 10.0  # original untouched

    def test_validation(self):
        with pytest.raises(WorkloadError):
            QueryRecord(submit_time_s=-1.0, latency_s=1.0, template="x")
        with pytest.raises(WorkloadError):
            QueryRecord(submit_time_s=1.0, latency_s=-1.0, template="x")


class TestMergeIntervals:
    def test_disjoint_kept(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0.0, 1.0), (2.0, 3.0)]

    def test_overlapping_merged(self):
        assert merge_intervals([(0, 5), (3, 8)]) == [(0.0, 8.0)]

    def test_touching_merged(self):
        assert merge_intervals([(0, 2), (2, 4)]) == [(0.0, 4.0)]

    def test_contained_absorbed(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0.0, 10.0)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0.0, 1.0), (5.0, 6.0)]

    def test_empty(self):
        assert merge_intervals([]) == []

    def test_reversed_interval_rejected(self):
        with pytest.raises(WorkloadError):
            merge_intervals([(5, 3)])


class TestTenantLog:
    def _log(self):
        records = [
            QueryRecord(submit_time_s=0.0, latency_s=10.0, template="tpch.q1"),
            QueryRecord(submit_time_s=5.0, latency_s=10.0, template="tpch.q6"),
            QueryRecord(submit_time_s=100.0, latency_s=20.0, template="tpch.q19"),
        ]
        return TenantLog(_spec(), records)

    def test_records_sorted(self):
        records = [
            QueryRecord(submit_time_s=50.0, latency_s=1.0, template="b"),
            QueryRecord(submit_time_s=10.0, latency_s=1.0, template="a"),
        ]
        log = TenantLog(_spec(), records)
        assert [r.submit_time_s for r in log.records] == [10.0, 50.0]

    def test_busy_intervals_merge_overlaps(self):
        log = self._log()
        assert log.busy_intervals() == [(0.0, 15.0), (100.0, 120.0)]

    def test_total_busy_seconds(self):
        assert self._log().total_busy_seconds() == pytest.approx(35.0)

    def test_strong_notion_of_activity(self):
        # §4.3: inactive means no query running anywhere, even between
        # queries of the same interactive session.
        log = self._log()
        assert log.is_active_at(7.0)
        assert not log.is_active_at(15.0)  # half-open
        assert not log.is_active_at(50.0)
        assert log.is_active_at(100.0)
        assert not log.is_active_at(500.0)

    def test_is_active_before_first_record(self):
        log = self._log()
        assert not log.is_active_at(-0.0) or log.is_active_at(0.0)

    def test_window(self):
        log = self._log()
        windowed = log.window(0.0, 50.0)
        assert len(windowed) == 2
        assert windowed.tenant_id == 1

    def test_horizon(self):
        assert self._log().horizon_s() == 120.0
        assert TenantLog(_spec(), []).horizon_s() == 0.0
