"""Tenant descriptor tests."""

import pytest

from repro.errors import WorkloadError
from repro.workload.tenant import TenantSpec


class TestTenantSpec:
    def test_fields(self):
        spec = TenantSpec(tenant_id=7, nodes_requested=4, data_gb=400.0, benchmark="tpcds")
        assert spec.tenant_id == 7
        assert spec.nodes_requested == 4
        assert spec.benchmark == "tpcds"

    def test_as_tenant_data(self):
        spec = TenantSpec(tenant_id=7, nodes_requested=4, data_gb=400.0)
        data = spec.as_tenant_data()
        assert data.tenant_id == 7
        assert data.data_gb == 400.0
        assert "lineitem" in data.tables  # TPC-H schema

    def test_tpcds_tables(self):
        spec = TenantSpec(tenant_id=1, nodes_requested=2, data_gb=200.0, benchmark="tpcds")
        assert "store_sales" in spec.as_tenant_data().tables

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tenant_id", -1),
            ("nodes_requested", 0),
            ("data_gb", -1.0),
            ("benchmark", "oracle"),
            ("max_users", 0),
            ("tz_offset_hours", 24),
        ],
    )
    def test_validation(self, field, value):
        kwargs = dict(tenant_id=1, nodes_requested=2, data_gb=200.0)
        kwargs[field] = value
        with pytest.raises(WorkloadError):
            TenantSpec(**kwargs)
