"""Multi-tenant log composition tests (§7.1 Step 2)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import DAY, HOUR
from repro.workload.composer import MultiTenantLogComposer, SessionPick
from repro.workload.generator import SessionLogGenerator
from tests.conftest import tiny_config


class TestComposition:
    def test_tenant_count(self, workload, config):
        assert len(workload) == config.num_tenants

    def test_tenant_specs_follow_config(self, workload, config):
        for tenant in workload.tenants:
            assert tenant.nodes_requested in config.node_sizes
            assert tenant.data_gb == tenant.nodes_requested * config.data_gb_per_node
            assert tenant.benchmark in ("tpch", "tpcds")
            assert tenant.tz_offset_hours in config.logs.tz_offsets_hours

    def test_deterministic(self, config, library):
        a = MultiTenantLogComposer(config, library).compose()
        b = MultiTenantLogComposer(config, library).compose()
        assert [t.nodes_requested for t in a.tenants] == [
            t.nodes_requested for t in b.tenants
        ]
        assert a.picks_of(0) == b.picks_of(0)

    def test_three_sessions_per_workday(self, workload, config):
        # morning + afternoon + evening on every non-holiday workday.
        logs = config.logs
        workdays = sum(
            1 for d in range(logs.horizon_days) if d % 7 < logs.workdays_per_week
        )
        expected = workdays * 3  # holiday_weekdays = 0 in the tiny config
        for tenant_id in workload.tenant_ids[:5]:
            assert len(workload.picks_of(tenant_id)) == expected

    def test_session_start_offsets(self, workload, config):
        # Morning at O, afternoon at O + 5 h (3 h session + 2 h lunch),
        # evening at O + 14 h.
        tenant = workload.tenants[0]
        picks = workload.picks_of(tenant.tenant_id)
        day_starts = sorted({p.shift_s // DAY for p in picks})
        first_day = [p for p in picks if p.shift_s // DAY == day_starts[0]]
        offsets = sorted((p.shift_s % DAY) / HOUR for p in first_day)
        base = tenant.tz_offset_hours
        assert offsets == [base, base + 5, base + 14]

    def test_weekends_inactive(self, workload, config):
        # Each pick is scheduled on a workday at one of the three session
        # offsets (morning O, afternoon O+5h, evening O+14h); sessions may
        # spill past midnight, so recover the *scheduled* day first.
        logs = config.logs
        for tenant_id in workload.tenant_ids[:5]:
            tenant = workload.tenant(tenant_id)
            base = tenant.tz_offset_hours
            session_offsets = {base, base + 5, base + 14}
            for pick in workload.picks_of(tenant_id):
                hours_total = pick.shift_s / HOUR
                matched = [
                    (hours_total - off) / 24
                    for off in session_offsets
                    if (hours_total - off) % 24 == 0 and hours_total >= off
                ]
                assert matched, f"pick at {pick.shift_s} matches no session offset"
                day = int(matched[0])
                assert day % 7 < logs.workdays_per_week

    def test_tenant_log_materialization(self, workload):
        log = workload.tenant_log(0)
        assert len(log) > 0
        assert log.tenant_id == 0
        assert log.horizon_s() <= workload.horizon_s

    def test_unknown_tenant_rejected(self, workload):
        with pytest.raises(WorkloadError):
            workload.tenant(10**6)
        with pytest.raises(WorkloadError):
            workload.tenant_log(10**6)

    def test_subset(self, workload):
        sub = workload.subset([0, 1, 2])
        assert len(sub) == 3
        assert sub.picks_of(1) == workload.picks_of(1)

    def test_total_nodes_requested(self, workload):
        assert workload.total_nodes_requested() == sum(
            t.nodes_requested for t in workload.tenants
        )


class TestActivityEpochs:
    def test_matches_materialized_log(self, workload):
        # The fast epoch-shift path must agree with discretizing the fully
        # materialized log.
        from repro.workload.activity import active_epoch_indices

        for tenant_id in workload.tenant_ids[:3]:
            fast = workload.activity_epochs(tenant_id, 10.0)
            log = workload.tenant_log(tenant_id)
            slow = active_epoch_indices(log.busy_intervals(), 10.0)
            slow = slow[slow < workload.num_epochs(10.0)]
            assert np.array_equal(fast, slow)

    def test_unaligned_epoch_size_fallback(self, workload):
        # 7.0 s does not divide an hour; the fallback path must still
        # agree with the materialized log.
        from repro.workload.activity import active_epoch_indices

        tenant_id = workload.tenant_ids[0]
        fast = workload.activity_epochs(tenant_id, 7.0)
        log = workload.tenant_log(tenant_id)
        slow = active_epoch_indices(log.busy_intervals(), 7.0)
        slow = slow[slow < workload.num_epochs(7.0)]
        assert np.array_equal(fast, slow)

    def test_concurrency_profile_sums(self, workload):
        counts = workload.concurrency_profile(60.0)
        total = sum(
            len(workload.activity_epochs(t, 60.0)) for t in workload.tenant_ids
        )
        assert counts.sum() == total

    def test_active_ratio_definitions(self, workload):
        cond = workload.active_tenant_ratio(60.0, conditional=True)
        uncond = workload.active_tenant_ratio(60.0, conditional=False)
        assert 0.0 < uncond <= cond <= 1.0


class TestHigherActiveRatioVariants:
    """§7.4: squeezing activity raises the (conditional) active ratio."""

    @pytest.fixture(scope="class")
    def variants(self):
        base = tiny_config(num_tenants=60, seed=11)
        library = SessionLogGenerator(base, sessions_per_size=3).generate()
        ratios = {}
        for name, logs in [
            ("default", base.logs),
            ("na", base.logs.north_america_only()),
            ("na-nolunch", base.logs.north_america_only().without_lunch()),
            ("single-tz", base.logs.single_timezone().without_lunch()),
        ]:
            config = base.scaled(logs=logs)
            workload = MultiTenantLogComposer(config, library).compose()
            ratios[name] = workload.active_tenant_ratio(60.0, conditional=True)
        return ratios

    def test_variants_increase_ratio(self, variants):
        assert variants["na"] > variants["default"]
        assert variants["single-tz"] > variants["na"]

    def test_no_lunch_increases_over_na(self, variants):
        assert variants["na-nolunch"] >= variants["na"] * 0.95


class TestSessionPick:
    def test_negative_shift_rejected(self):
        with pytest.raises(WorkloadError):
            SessionPick(node_size=2, session_index=0, shift_s=-1.0)


class TestComposerValidation:
    def test_library_must_cover_sizes(self, library):
        config = tiny_config(node_sizes=(2, 4, 8, 16))
        with pytest.raises(WorkloadError):
            MultiTenantLogComposer(config, library)

    def test_compose_zero_tenants_rejected(self, config, library):
        composer = MultiTenantLogComposer(config, library)
        with pytest.raises(WorkloadError):
            composer.compose(num_tenants=0)
