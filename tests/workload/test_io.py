"""Workload persistence tests (JSONL logs, session-library JSON)."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workload.io import (
    load_session_library,
    read_tenant_log,
    save_session_library,
    write_tenant_log,
)
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.tenant import TenantSpec


def _log(records=3):
    spec = TenantSpec(
        tenant_id=7,
        nodes_requested=4,
        data_gb=400.0,
        benchmark="tpcds",
        max_users=3,
        tz_offset_hours=8,
    )
    return TenantLog(
        spec,
        [
            QueryRecord(
                submit_time_s=10.0 * i,
                latency_s=1.5,
                template="tpcds.q72",
                user=i % 2,
                batch_id=i,
            )
            for i in range(records)
        ],
    )


class TestTenantLogRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        original = _log()
        path = write_tenant_log(original, tmp_path / "t7.jsonl")
        loaded = read_tenant_log(path)
        assert loaded.tenant == original.tenant
        assert loaded.records == original.records

    def test_empty_log_roundtrip(self, tmp_path):
        original = _log(records=0)
        loaded = read_tenant_log(write_tenant_log(original, tmp_path / "t.jsonl"))
        assert len(loaded) == 0
        assert loaded.tenant.tenant_id == 7

    def test_composed_log_roundtrip(self, tmp_path, workload):
        original = workload.tenant_log(0)
        loaded = read_tenant_log(write_tenant_log(original, tmp_path / "t0.jsonl"))
        assert loaded.records == original.records
        assert loaded.busy_intervals() == original.busy_intervals()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(WorkloadError):
            read_tenant_log(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(WorkloadError):
            read_tenant_log(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = write_tenant_log(_log(1), tmp_path / "t.jsonl")
        with path.open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(WorkloadError):
            read_tenant_log(path)

    def test_record_count_checked(self, tmp_path):
        path = write_tenant_log(_log(3), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one record
        with pytest.raises(WorkloadError):
            read_tenant_log(path)

    def test_version_checked(self, tmp_path):
        path = write_tenant_log(_log(1), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(WorkloadError):
            read_tenant_log(path)


class TestSessionLibraryRoundtrip:
    def test_roundtrip(self, tmp_path, library):
        path = save_session_library(library, tmp_path / "library.json")
        loaded = load_session_library(path)
        assert loaded.node_sizes == library.node_sizes
        for size in library.node_sizes:
            original_sessions = library.sessions_for(size)
            loaded_sessions = loaded.sessions_for(size)
            assert len(loaded_sessions) == len(original_sessions)
            assert loaded_sessions[0].records == original_sessions[0].records
            assert loaded_sessions[0].benchmark == original_sessions[0].benchmark

    def test_loaded_library_usable_for_composition(self, tmp_path, config, library):
        from repro.workload.composer import MultiTenantLogComposer

        loaded = load_session_library(save_session_library(library, tmp_path / "l.json"))
        workload = MultiTenantLogComposer(config, loaded).compose(num_tenants=5)
        assert len(workload) == 5

    def test_epoch_cache_rebuilt(self, tmp_path, library, config):
        loaded = load_session_library(save_session_library(library, tmp_path / "l.json"))
        size = config.node_sizes[0]
        a = library.epoch_indices(size, 0, 10.0)
        b = loaded.epoch_indices(size, 0, 10.0)
        assert (a == b).all()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(WorkloadError):
            load_session_library(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{{")
        with pytest.raises(WorkloadError):
            load_session_library(path)
