"""Epoch discretization tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.activity import (
    ActivityItem,
    ActivityMatrix,
    active_epoch_indices,
    active_tenant_ratio,
    concurrency_profile,
)
from tests.conftest import make_item


class TestActiveEpochIndices:
    def test_single_interval(self):
        assert active_epoch_indices([(5.0, 25.0)], 10.0).tolist() == [0, 1, 2]

    def test_boundary_exclusive(self):
        assert active_epoch_indices([(0.0, 10.0)], 10.0).tolist() == [0]

    def test_zero_length_interval(self):
        # The strong activity notion: an instantaneous query still marks
        # its epoch.
        assert active_epoch_indices([(15.0, 15.0)], 10.0).tolist() == [1]

    def test_overlapping_intervals_deduped(self):
        epochs = active_epoch_indices([(0.0, 20.0), (5.0, 15.0)], 10.0)
        assert epochs.tolist() == [0, 1]

    def test_empty(self):
        assert active_epoch_indices([], 10.0).size == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            active_epoch_indices([(5.0, 1.0)], 10.0)
        with pytest.raises(WorkloadError):
            active_epoch_indices([(-1.0, 1.0)], 10.0)
        with pytest.raises(WorkloadError):
            active_epoch_indices([(0.0, 1.0)], 0.0)


class TestActivityItem:
    def test_fields(self):
        item = make_item(1, 4, [0, 3, 7])
        assert item.active_epoch_count == 3
        assert item.nodes_requested == 4

    def test_unsorted_epochs_rejected(self):
        with pytest.raises(WorkloadError):
            ActivityItem(tenant_id=1, nodes_requested=2, epochs=np.array([3, 1]))

    def test_duplicate_epochs_rejected(self):
        with pytest.raises(WorkloadError):
            ActivityItem(tenant_id=1, nodes_requested=2, epochs=np.array([1, 1]))

    def test_negative_epochs_rejected(self):
        with pytest.raises(WorkloadError):
            ActivityItem(tenant_id=1, nodes_requested=2, epochs=np.array([-1, 1]))

    def test_zero_nodes_rejected(self):
        with pytest.raises(WorkloadError):
            make_item(1, 0, [0])

    def test_empty_epochs_ok(self):
        assert make_item(1, 2, []).active_epoch_count == 0


class TestActivityMatrix:
    def _matrix(self):
        items = [
            make_item(1, 2, [0, 1]),
            make_item(2, 4, [1, 2]),
            make_item(3, 2, []),
        ]
        return ActivityMatrix(items, num_epochs=4)

    def test_concurrency_profile(self):
        counts = self._matrix().concurrency_profile()
        assert counts.tolist() == [1, 2, 1, 0]

    def test_dense_vector(self):
        matrix = self._matrix()
        assert matrix.dense_vector(1).tolist() == [1, 1, 0, 0]
        assert matrix.dense_vector(3).tolist() == [0, 0, 0, 0]

    def test_total_nodes(self):
        assert self._matrix().total_nodes_requested() == 8

    def test_lookup(self):
        matrix = self._matrix()
        assert matrix.item(2).nodes_requested == 4
        with pytest.raises(WorkloadError):
            matrix.item(99)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(WorkloadError):
            ActivityMatrix([make_item(1, 2, [0]), make_item(1, 2, [1])], 4)

    def test_epochs_beyond_d_rejected(self):
        with pytest.raises(WorkloadError):
            ActivityMatrix([make_item(1, 2, [10])], 4)

    def test_active_tenant_ratio(self):
        matrix = self._matrix()
        # Counts [1,2,1,0]: unconditional mean = 1 active of 3 tenants;
        # conditional over the 3 busy epochs = (1+2+1)/3 / 3.
        assert active_tenant_ratio(matrix, conditional=False) == pytest.approx(
            (1 + 2 + 1 + 0) / 4 / 3
        )
        assert active_tenant_ratio(matrix, conditional=True) == pytest.approx(
            (1 + 2 + 1) / 3 / 3
        )

    def test_ratio_of_empty_activity(self):
        matrix = ActivityMatrix([make_item(1, 2, [])], 4)
        assert active_tenant_ratio(matrix, conditional=True) == 0.0

    def test_concurrency_profile_function(self):
        items = [make_item(1, 2, [0]), make_item(2, 2, [0, 1])]
        assert concurrency_profile(items, 3).tolist() == [2, 1, 0]

    def test_from_workload(self, workload):
        matrix = ActivityMatrix.from_workload(workload, 30.0)
        assert len(matrix) == len(workload)
        assert matrix.num_epochs == workload.num_epochs(30.0)
