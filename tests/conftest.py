"""Shared fixtures.

The expensive artifacts (session library, composed workload) are generated
once per test session at a tiny scale; tests that need different parameters
build their own via the factories here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EvaluationConfig, LogGenerationConfig
from repro.packing.livbp import LIVBPwFCProblem
from repro.simulation.engine import Simulator
from repro.workload.activity import ActivityItem, ActivityMatrix
from repro.workload.composer import ComposedWorkload, MultiTenantLogComposer
from repro.workload.generator import SessionLibrary, SessionLogGenerator


def tiny_config(**overrides) -> EvaluationConfig:
    """A fast EvaluationConfig for tests (7-day logs, few tenants)."""
    defaults = dict(
        num_tenants=40,
        logs=LogGenerationConfig(horizon_days=7, holiday_weekdays=0),
        node_sizes=(2, 4, 8),
        seed=7,
    )
    defaults.update(overrides)
    return EvaluationConfig(**defaults)


@pytest.fixture(scope="session")
def config() -> EvaluationConfig:
    return tiny_config()


@pytest.fixture(scope="session")
def library(config) -> SessionLibrary:
    return SessionLogGenerator(config, sessions_per_size=4).generate()


@pytest.fixture(scope="session")
def workload(config, library) -> ComposedWorkload:
    return MultiTenantLogComposer(config, library).compose()


@pytest.fixture(scope="session")
def matrix(workload) -> ActivityMatrix:
    return ActivityMatrix.from_workload(workload, epoch_size=10.0)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


def make_item(tenant_id: int, nodes: int, epochs) -> ActivityItem:
    """Convenience ActivityItem builder."""
    return ActivityItem(
        tenant_id=tenant_id,
        nodes_requested=nodes,
        epochs=np.asarray(sorted(epochs), dtype=np.int64),
    )


def paper_example_problem(replication_factor: int = 3, sla_percent: float = 99.0) -> LIVBPwFCProblem:
    """A Figure 5.1-style toy instance: six tenants over ten epochs.

    Activities (0-indexed epochs):
      T1: {0,1,2,3,4,5}   the heavy tenant (like the thesis's T1, active t1..t6)
      T2: {4,5,6}
      T3: {1,2,3}
      T4: {0,7}
      T5: {2,4,8}
      T6: {4}

    Hand-checked walkthrough of Algorithm 2 at R = 3, P = 99 % (so, with
    d = 10, no epoch may exceed 3 concurrently active tenants):
    the least-active tenant T6 seeds the group, then the histogram rule
    inserts T4, T3, T2, T5 in that order; adding T1 would push epoch 4 to
    four active tenants, dropping the <=3-active time percentage to 90 %,
    so — exactly as in the thesis's example — T1 is rejected and lands in
    its own group.  Final grouping: {T2,T3,T4,T5,T6}, {T1}.
    """
    items = [
        make_item(1, 4, [0, 1, 2, 3, 4, 5]),
        make_item(2, 4, [4, 5, 6]),
        make_item(3, 4, [1, 2, 3]),
        make_item(4, 4, [0, 7]),
        make_item(5, 4, [2, 4, 8]),
        make_item(6, 4, [4]),
    ]
    return LIVBPwFCProblem(
        items=tuple(items),
        num_epochs=10,
        replication_factor=replication_factor,
        sla_fraction=sla_percent / 100.0,
    )
