"""Unit-helper tests: epoch arithmetic is the foundation of the grouping."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    DAY,
    HOUR,
    MINUTE,
    TB,
    approx_eq,
    approx_ge,
    days,
    epoch_span,
    epoch_to_seconds,
    format_duration,
    format_size_gb,
    gb,
    hours,
    minutes,
    num_epochs,
    seconds_to_epoch,
    tb,
)


class TestConversions:
    def test_data_units(self):
        assert gb(5) == 5.0
        assert tb(2) == 2 * TB == 2048.0

    def test_time_units(self):
        assert minutes(2) == 120.0
        assert hours(1.5) == 1.5 * HOUR == 5400.0
        assert days(2) == 2 * DAY

    def test_minute_hour_day_relations(self):
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR


class TestEpochMapping:
    def test_seconds_to_epoch_floor(self):
        assert seconds_to_epoch(0.0, 10.0) == 0
        assert seconds_to_epoch(9.999, 10.0) == 0
        assert seconds_to_epoch(10.0, 10.0) == 1

    def test_epoch_to_seconds_roundtrip(self):
        for k in (0, 1, 17, 100):
            assert seconds_to_epoch(epoch_to_seconds(k, 30.0), 30.0) == k

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            seconds_to_epoch(-1.0, 10.0)

    def test_bad_epoch_size_rejected(self):
        for bad in (0.0, -5.0, float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                seconds_to_epoch(1.0, bad)

    def test_negative_epoch_index_rejected(self):
        with pytest.raises(ConfigurationError):
            epoch_to_seconds(-1, 10.0)


class TestEpochSpan:
    def test_interval_within_one_epoch(self):
        assert list(epoch_span(1.0, 4.0, 10.0)) == [0]

    def test_interval_spanning_epochs(self):
        assert list(epoch_span(5.0, 25.0, 10.0)) == [0, 1, 2]

    def test_boundary_end_excluded(self):
        # An interval ending exactly at an epoch boundary does not touch
        # the next epoch.
        assert list(epoch_span(0.0, 10.0, 10.0)) == [0]

    def test_zero_length_interval_marks_one_epoch(self):
        assert list(epoch_span(15.0, 15.0, 10.0)) == [1]

    def test_reversed_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            epoch_span(10.0, 5.0, 10.0)


class TestNumEpochs:
    def test_exact_division(self):
        assert num_epochs(100.0, 10.0) == 10

    def test_rounds_up(self):
        assert num_epochs(101.0, 10.0) == 11

    def test_positive_horizon_required(self):
        with pytest.raises(ConfigurationError):
            num_epochs(0.0, 10.0)


class TestFormatting:
    def test_duration_seconds(self):
        assert format_duration(45) == "45s"

    def test_duration_minutes(self):
        assert format_duration(125) == "2m 05s"

    def test_duration_hours(self):
        assert format_duration(2 * HOUR + 5 * MINUTE) == "2h 05m"

    def test_duration_days(self):
        assert format_duration(2 * DAY + 3 * HOUR) == "2d 03h"

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            format_duration(-1)

    def test_size_gb(self):
        assert format_size_gb(200) == "200GB"

    def test_size_tb(self):
        assert format_size_gb(3276.8) == "3.2TB"

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            format_size_gb(-1)


class TestApproxComparisons:
    def test_approx_eq_absorbs_float_noise(self):
        assert approx_eq(0.1 + 0.2, 0.3)
        assert approx_eq(sum([0.999] * 1000) / 1000, 0.999)

    def test_approx_eq_distinguishes_real_differences(self):
        assert not approx_eq(0.999, 0.9989)
        assert not approx_eq(1.0, 1.0 + 1e-6)

    def test_approx_ge_tolerates_shortfall_by_noise_only(self):
        assert approx_ge(0.3, 0.1 + 0.2)
        assert approx_ge(0.31, 0.3)
        assert not approx_ge(0.2999, 0.3)
