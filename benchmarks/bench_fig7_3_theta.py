"""Figure 7.3 — varying the tenant-size distribution skew theta.

Paper shape: the 2-step heuristic's effectiveness is insensitive to theta
(its first step isolates the size classes), while FFD — whose ordering
ignores the largest item — moves around much more; theta also mildly
affects the 2-step run time through the size of the biggest initial group.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import GROUPING_HEADERS, sweep_parameter
from repro.config import PAPER_THETAS


def test_fig7_3_varying_theta(benchmark, scale):
    def experiment():
        return sweep_parameter("theta", list(PAPER_THETAS), scale=scale)

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            GROUPING_HEADERS,
            [r.as_list() for r in rows],
            title="Figure 7.3: varying tenant distribution theta",
        )
    )
    two_step = [r.two_step_effectiveness for r in rows]
    ffd = [r.ffd_effectiveness for r in rows]
    # (a) the 2-step heuristic is less influenced by theta than FFD.
    assert np.std(two_step) <= np.std(ffd) + 0.01
    assert max(two_step) - min(two_step) < 0.12
    # 2-step beats FFD at every theta.
    assert all(r.advantage_points > 0.0 for r in rows)
