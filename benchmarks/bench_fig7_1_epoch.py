"""Figure 7.1 — varying epoch size E.

Panels: (a) consolidation effectiveness, (b) average tenant-group size,
(c) grouping execution time, for the 2-step heuristic vs FFD.

Paper shape: effectiveness grows as E shrinks and plateaus once E drops
below the query duration (the paper's queries run ~10 s on its testbed, so
its plateau is at E = 10 s; this substrate's queries run ~1 s, so the
plateau shifts to E ≈ 1 s — see EXPERIMENTS.md).  The 2-step heuristic
saves more nodes than FFD away from the plateau; FFD is faster to run.
"""

from __future__ import annotations

from conftest import bench_profile, run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import GROUPING_HEADERS, sweep_parameter

_EPOCH_SIZES = (0.5, 1.0, 3.0, 10.0, 30.0, 90.0, 600.0, 1800.0)


def test_fig7_1_varying_epoch_size(benchmark, small_scale):
    def experiment():
        return sweep_parameter("epoch_size_s", _EPOCH_SIZES, scale=small_scale)

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            GROUPING_HEADERS,
            [r.as_list() for r in rows],
            title=f"Figure 7.1: varying epoch size E (T={small_scale.num_tenants})",
        )
    )
    by_e = {r.value: r for r in rows}
    # (a) effectiveness is better at the plateau than at 1800 s.
    assert by_e[1.0].two_step_effectiveness > by_e[1800.0].two_step_effectiveness
    # Plateau: going below 1 s buys almost nothing.
    assert abs(by_e[0.5].two_step_effectiveness - by_e[1.0].two_step_effectiveness) < 0.05
    # (b) group size follows effectiveness.
    assert by_e[1.0].two_step_group_size > by_e[1800.0].two_step_group_size
    # §7.3: the 2-step heuristic saves more nodes than FFD at every epoch
    # size (paper: 5.1–9.4 points over its E range).  At smoke scale the
    # size classes are too small for the claim to hold at the plateau, so
    # only the default/large profiles assert it strictly.
    if bench_profile() == "smoke":
        assert all(r.advantage_points > -2.0 for r in rows)
        assert max(r.advantage_points for r in rows) > 3.0
    else:
        assert all(r.advantage_points > 0.0 for r in rows)
