"""Figure 7.2 — varying the number of tenants T.

Paper shape: consolidation effectiveness is not strongly influenced by T
but improves slightly with more tenants (79.3 % at T = 1000 to 83.3 % at
T = 10000 for the 2-step heuristic) because a larger candidate pool gives
the grouping more complementary activity patterns to pick from; average
group size grows accordingly; FFD stays several points behind; the 2-step
run time grows quadratically per initial group, FFD stays fast.
"""

from __future__ import annotations

from conftest import bench_profile, run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import GROUPING_HEADERS, sweep_parameter


def test_fig7_2_varying_tenants(benchmark, scale):
    tenant_counts = [
        max(100, scale.num_tenants // 4),
        scale.num_tenants,
        scale.num_tenants * 2,
    ]

    def experiment():
        return sweep_parameter("num_tenants", tenant_counts, scale=scale)

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            GROUPING_HEADERS,
            [r.as_list() for r in rows],
            title="Figure 7.2: varying number of tenants T",
        )
    )
    small, mid, large = rows
    # (a) more tenants -> (weakly) better effectiveness.
    assert large.two_step_effectiveness >= small.two_step_effectiveness - 0.02
    # (b) group size grows (or holds) with T.
    assert large.two_step_group_size >= small.two_step_group_size - 0.5
    # 2-step beats FFD at every T (§7.3: 3.6–11.1 points); at smoke scale
    # only the largest T has enough tenants per size class.
    if bench_profile() == "smoke":
        assert large.advantage_points > 0.0
    else:
        assert all(r.advantage_points > 0.0 for r in rows)
    # (c) FFD is the faster algorithm.
    assert large.ffd_seconds < large.two_step_seconds
