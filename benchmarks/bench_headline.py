"""The headline claim (abstract / Chapter 1).

"In a MPPDBaaS with 5000 tenants, where each tenant requests 2 to 32 nodes
MPPDB to query against 200GB to 3.2TB of data, Thrifty can serve all the
tenants with a 99.9% performance SLA guarantee and a high availability
replication factor of 3, using only 18.7% of the nodes requested by the
tenants."

This bench runs the full pipeline — log generation, composition, grouping,
TDD cluster design — at the bench profile's scale and default parameters
(R = 3, P = 99.9 %, theta = 0.8, plateau epoch size) and reports the
fraction of requested nodes actually used.
"""

from __future__ import annotations

import statistics
import time

import pytest
from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload
from repro.config import EvaluationConfig, LogGenerationConfig
from repro.core.advisor import DeploymentAdvisor
from repro.core.service import ThriftyService
from repro.obs import MemorySink, Observer
from repro.units import HOUR
from repro.workload.activity import ActivityMatrix, active_tenant_ratio
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator


def test_headline_consolidation(benchmark, scale):
    config = scale.config()

    def experiment():
        workload = build_workload(config, scale.sessions_per_size)
        advice = DeploymentAdvisor(config).plan_from_workload(workload)
        matrix = ActivityMatrix.from_workload(workload, config.epoch_size_s)
        return workload, advice, matrix

    workload, advice, matrix = run_once(benchmark, experiment)
    plan = advice.plan
    used_fraction = plan.total_nodes_used / plan.total_nodes_requested
    print()
    print(
        format_table(
            ["metric", "measured", "paper"],
            [
                ["tenants", len(workload), 5000],
                ["node menu", "2..32", "2..32"],
                ["replication factor R", config.replication_factor, 3],
                ["SLA guarantee P", f"{config.sla_percent}%", "99.9%"],
                ["nodes requested", plan.total_nodes_requested, "-"],
                ["nodes used", plan.total_nodes_used, "-"],
                ["fraction of requested nodes used", f"{used_fraction:.1%}", "18.7%"],
                ["consolidation effectiveness", f"{plan.consolidation_effectiveness:.1%}", "81.3%"],
                [
                    "active tenant ratio (uncond.)",
                    f"{active_tenant_ratio(matrix, conditional=False):.1%}",
                    "~11.9% (coarse)",
                ],
                ["tenant groups", len(plan), "-"],
            ],
            title="Headline: MPPDBaaS consolidation at default parameters",
        )
    )
    # Who wins and by roughly what factor: Thrifty serves everyone with a
    # small fraction of the requested nodes (paper: 18.7 %; bench scale
    # lands in the same region).
    assert used_fraction < 0.35
    # Every group satisfies the fuzzy capacity (validated by the advisor),
    # and replication is 3x throughout.
    for group in plan:
        assert group.design.num_instances == 3


_OBS_REPLAY_HORIZON = 12 * HOUR
_OBS_REPS = 3
_GUARD_LOOP = 1_000_000


def _replay_seconds(config, workload, observer):
    """Wall-clock seconds for one instrumented replay (deploy excluded)."""
    service = ThriftyService(config, observer=observer)
    service.deploy(workload)
    t0 = time.perf_counter()
    service.replay(until=_OBS_REPLAY_HORIZON)
    return time.perf_counter() - t0


def _guard_seconds():
    """Per-evaluation cost of the ``observer.enabled`` site guard.

    Measured with the loop overhead *included*, so this overestimates what
    an inlined guard costs inside the replay.
    """
    from repro.obs import NULL_OBSERVER

    hits = 0
    t0 = time.perf_counter()
    for _ in range(_GUARD_LOOP):
        if NULL_OBSERVER.enabled:
            hits += 1
    elapsed = time.perf_counter() - t0
    assert hits == 0
    return elapsed / _GUARD_LOOP


def test_headline_obs_overhead(benchmark, obs_mode):
    """--obs mode: the null-sink instrumentation must be (near) free.

    Replays an identical small scenario with the default null observer and
    with a fully enabled MemorySink observer, then bounds the null-sink
    cost *quantitatively*: (guard evaluations the scenario performs) x
    (measured per-guard cost) must stay under 5 % of the replay's wall
    time.  The count of guard evaluations is taken from the enabled run's
    sink — every emission is one guard that evaluated true — doubled for
    safety (sites that guard without emitting).
    """
    if not obs_mode:
        pytest.skip("observability overhead mode: pass --obs or set REPRO_BENCH_OBS=1")

    config = EvaluationConfig(
        num_tenants=40, logs=LogGenerationConfig(horizon_days=3, holiday_weekdays=0), seed=5
    )
    library = SessionLogGenerator(config, sessions_per_size=3).generate()
    workload = MultiTenantLogComposer(config, library).compose()

    def experiment():
        null_times, enabled_times = [], []
        emissions = 0
        _replay_seconds(config, workload, observer=None)  # warm-up, untimed
        for _ in range(_OBS_REPS):
            null_times.append(_replay_seconds(config, workload, observer=None))
            obs = Observer(MemorySink())
            enabled_times.append(_replay_seconds(config, workload, observer=obs))
            sink = obs.memory_sink()
            emissions = len(sink.metrics) + len(sink.spans) + len(sink.events)
        return null_times, enabled_times, emissions, _guard_seconds()

    null_times, enabled_times, emissions, per_guard = run_once(benchmark, experiment)
    median = statistics.median
    t_null, t_enabled = median(null_times), median(enabled_times)
    guard_cost = 2 * emissions * per_guard
    guard_fraction = guard_cost / t_null
    print()
    print(
        format_table(
            ["variant", "median_s", "reps_s"],
            [
                ["null sink (default)", f"{t_null:.3f}", [f"{t:.3f}" for t in null_times]],
                ["MemorySink enabled", f"{t_enabled:.3f}", [f"{t:.3f}" for t in enabled_times]],
            ],
            title="Observability overhead (identical deterministic replay)",
        )
    )
    print(
        f"guard: {per_guard * 1e9:.0f} ns/site x {2 * emissions} evaluations "
        f"= {guard_cost * 1e3:.2f} ms = {guard_fraction:.2%} of the null replay "
        f"({emissions} emissions when enabled); "
        f"enabled-observer wall overhead: {t_enabled / t_null - 1.0:+.1%}"
    )
    # The 5% gate: the entire null-sink instrumentation budget — every
    # guard the replay evaluates, at its measured cost — is far below 5%
    # of the replay, and the disabled run never beats the enabled run's
    # wall time by more than noise allows.
    assert guard_fraction < 0.05
    assert t_null <= t_enabled * 1.10
