"""The headline claim (abstract / Chapter 1).

"In a MPPDBaaS with 5000 tenants, where each tenant requests 2 to 32 nodes
MPPDB to query against 200GB to 3.2TB of data, Thrifty can serve all the
tenants with a 99.9% performance SLA guarantee and a high availability
replication factor of 3, using only 18.7% of the nodes requested by the
tenants."

This bench runs the full pipeline — log generation, composition, grouping,
TDD cluster design — at the bench profile's scale and default parameters
(R = 3, P = 99.9 %, theta = 0.8, plateau epoch size) and reports the
fraction of requested nodes actually used.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload
from repro.core.advisor import DeploymentAdvisor
from repro.workload.activity import ActivityMatrix, active_tenant_ratio


def test_headline_consolidation(benchmark, scale):
    config = scale.config()

    def experiment():
        workload = build_workload(config, scale.sessions_per_size)
        advice = DeploymentAdvisor(config).plan_from_workload(workload)
        matrix = ActivityMatrix.from_workload(workload, config.epoch_size_s)
        return workload, advice, matrix

    workload, advice, matrix = run_once(benchmark, experiment)
    plan = advice.plan
    used_fraction = plan.total_nodes_used / plan.total_nodes_requested
    print()
    print(
        format_table(
            ["metric", "measured", "paper"],
            [
                ["tenants", len(workload), 5000],
                ["node menu", "2..32", "2..32"],
                ["replication factor R", config.replication_factor, 3],
                ["SLA guarantee P", f"{config.sla_percent}%", "99.9%"],
                ["nodes requested", plan.total_nodes_requested, "-"],
                ["nodes used", plan.total_nodes_used, "-"],
                ["fraction of requested nodes used", f"{used_fraction:.1%}", "18.7%"],
                ["consolidation effectiveness", f"{plan.consolidation_effectiveness:.1%}", "81.3%"],
                [
                    "active tenant ratio (uncond.)",
                    f"{active_tenant_ratio(matrix, conditional=False):.1%}",
                    "~11.9% (coarse)",
                ],
                ["tenant groups", len(plan), "-"],
            ],
            title="Headline: MPPDBaaS consolidation at default parameters",
        )
    )
    # Who wins and by roughly what factor: Thrifty serves everyone with a
    # small fraction of the requested nodes (paper: 18.7 %; bench scale
    # lands in the same region).
    assert used_fraction < 0.35
    # Every group satisfies the fuzzy capacity (validated by the advisor),
    # and replication is 3x throughout.
    for group in plan:
        assert group.design.num_instances == 3
