"""Shared benchmark fixtures and scales.

Every bench prints the rows/series its figure or table reports, then runs
its computation once under pytest-benchmark (rounds=1 — these are
experiments, not micro-benchmarks).

Scale: the paper's evaluation uses T = 5000 tenants and 30-day logs on an
EC2 cluster; the committed benches default to a laptop scale (documented
per experiment in EXPERIMENTS.md).  Set ``REPRO_BENCH_PROFILE=smoke`` for
a fast sanity pass or ``REPRO_BENCH_PROFILE=large`` to push closer to the
paper's scale.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.sweeps import BenchScale

def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--obs",
        action="store_true",
        default=False,
        help="run the repro.obs instrumentation-overhead bench (bench_headline)",
    )


@pytest.fixture(scope="session")
def obs_mode(pytestconfig: pytest.Config) -> bool:
    """Whether the observability-overhead bench was requested."""
    return bool(pytestconfig.getoption("--obs") or os.environ.get("REPRO_BENCH_OBS"))


_PROFILES = {
    "smoke": BenchScale(num_tenants=150, horizon_days=7, holiday_weekdays=0, sessions_per_size=6),
    "default": BenchScale(num_tenants=800, horizon_days=14, holiday_weekdays=1, sessions_per_size=16),
    "large": BenchScale(num_tenants=2000, horizon_days=21, holiday_weekdays=1, sessions_per_size=24),
}


def bench_profile() -> str:
    """The active profile name."""
    profile = os.environ.get("REPRO_BENCH_PROFILE", "default")
    if profile not in _PROFILES:
        raise ValueError(f"REPRO_BENCH_PROFILE must be one of {sorted(_PROFILES)}")
    return profile


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The bench scale for this run."""
    return _PROFILES[bench_profile()]


@pytest.fixture(scope="session")
def small_scale(scale: BenchScale) -> BenchScale:
    """A reduced scale for quadratic-cost sweeps (fine epochs, DIRECT)."""
    return BenchScale(
        num_tenants=max(100, scale.num_tenants // 2),
        horizon_days=scale.horizon_days,
        holiday_weekdays=scale.holiday_weekdays,
        sessions_per_size=scale.sessions_per_size,
        seed=scale.seed,
    )


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
