"""Ablation — elastic scaling policies (Chapter 5.1).

The same over-active scenario handled three ways:

* ``lightweight`` — the paper's policy: new MPPDB for the deviating
  tenant(s) only, loading a fraction of the data;
* ``whole-group`` — the pessimistic A+1 approach: a full replica of the
  group (the paper rejects it because loading everything takes ~14.5 h for
  a 10-node/1 TB group, exhausting the monthly SLA grace period);
* ``proactive`` — the trend-extrapolating variant the paper weighs and
  rejects (prediction error and spike-susceptibility);
* ``disabled`` — no reaction.

Reported: what each policy loaded, how long until ready, and the SLA
violations accumulated after the lightweight instance would have been
ready.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload
from repro.core.advisor import DeploymentAdvisor
from repro.core.master import DeploymentMaster
from repro.core.runtime import GroupRuntime
from repro.core.scaling import (
    DisabledScaling,
    LightweightScaling,
    ProactiveScaling,
    WholeGroupScaling,
)
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.units import DAY, HOUR, MINUTE, format_duration
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.queries import template_by_name

_TAKEOVER_START = 6 * HOUR
_HORIZON = 3 * DAY
_TEMPLATE = "tpcds.q72"


def _over_active_log(workload, tenant_id):
    spec = workload.tenant(tenant_id)
    template = template_by_name(_TEMPLATE)
    latency = template.dedicated_latency_s(spec.data_gb, spec.nodes_requested)
    original = workload.tenant_log(tenant_id)
    records = [r for r in original.records if r.submit_time_s < _TAKEOVER_START]
    t = _TAKEOVER_START
    while t < _HORIZON:
        records.append(QueryRecord(submit_time_s=t, latency_s=latency, template=_TEMPLATE))
        t += latency * 1.05 + 0.5
    return TenantLog(spec, records)


def _replay(workload, group, policy_name):
    sim = Simulator()
    provisioner = Provisioner(sim)
    master = DeploymentMaster(provisioner)
    deployed = master.deploy_group(group, instant=True)
    over_tenant = group.placement.tenant_ids[0]
    logs = {
        tenant_id: (
            _over_active_log(workload, tenant_id)
            if tenant_id == over_tenant
            else workload.tenant_log(tenant_id)
        )
        for tenant_id in group.placement.tenant_ids
    }
    d = workload.num_epochs(10.0)
    history = {
        tenant_id: len(workload.activity_epochs(tenant_id, 10.0)) / d
        for tenant_id in group.placement.tenant_ids
    }
    policies = {
        "lightweight": lambda: LightweightScaling(
            identification_epoch_s=10.0, historical_fraction=history
        ),
        "proactive": lambda: ProactiveScaling(
            identification_epoch_s=10.0, historical_fraction=history
        ),
        "whole-group": WholeGroupScaling,
        "disabled": DisabledScaling,
    }
    runtime = GroupRuntime(
        deployed,
        logs,
        sim,
        provisioner,
        sla_fraction=0.999,
        scaling=policies[policy_name](),
        monitor_interval_s=5 * MINUTE,
    )
    return runtime.run(until=_HORIZON)


def test_ablation_scaling_policy(benchmark, scale):
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    advice = DeploymentAdvisor(config).plan_from_workload(workload)
    group = sorted(
        advice.plan.groups, key=lambda g: (g.design.parallelism, abs(len(g.tenants) - 14))
    )[0]

    def experiment():
        return {
            name: _replay(workload, group, name)
            for name in ("lightweight", "proactive", "whole-group", "disabled")
        }

    reports = run_once(benchmark, experiment)
    rows = []
    for name, report in reports.items():
        action = report.scaling_actions[0] if report.scaling_actions else None
        rows.append(
            [
                name,
                round(action.loaded_gb) if action else 0,
                format_duration(action.expected_ready_time - action.time) if action else "-",
                round(report.sla.fraction_met, 4),
                len(report.sla.violations()),
            ]
        )
    print()
    print(
        format_table(
            ["policy", "loaded_gb", "time_to_ready", "sla_met", "violations"],
            rows,
            title=f"Scaling policy ablation on {group.group_name} ({len(group.tenants)} tenants)",
        )
    )
    light = reports["lightweight"]
    proactive = reports["proactive"]
    whole = reports["whole-group"]
    disabled = reports["disabled"]
    assert light.scaling_actions and whole.scaling_actions
    assert not disabled.scaling_actions
    # The proactive policy reacts no later than the reactive one (its
    # trigger is a superset) — the paper's caveat is the false positives,
    # visible when it fires before the takeover even ramps up.
    assert proactive.scaling_actions
    assert proactive.scaling_actions[0].time <= light.scaling_actions[0].time + 1e-6
    light_action = light.scaling_actions[0]
    whole_action = whole.scaling_actions[0]
    # Lightweight loads a fraction of the data and is ready sooner.
    assert light_action.loaded_gb < whole_action.loaded_gb
    light_lead = light_action.expected_ready_time - light_action.time
    whole_lead = whole_action.expected_ready_time - whole_action.time
    assert light_lead < whole_lead
    # Any scaling beats none on violations.
    assert len(light.sla.violations()) < len(disabled.sla.violations())
