"""Ablation — manual tuning of the tuning MPPDB's size U (Chapter 6).

Four 2-node tenants submit TPC-H Q1 simultaneously; three land on
dedicated MPPDBs and the fourth overflows to MPPDB_0 (Algorithm 1 line 10),
sharing it with the tenant already there.  Sweeping U shows the Chapter 6
effect: at U = n the two sharing queries each run 2x slower and miss the
SLA; at U >= 2n (``recommended_tuning_nodes``) the extra parallelism fully
absorbs the overflow — point C of Figure 1.1b.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.core.deployment import GroupDeployment
from repro.core.master import DeployedGroup
from repro.core.runtime import GroupRuntime
from repro.core.tdd import design_for_group
from repro.core.tuning import recommended_tuning_nodes
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.units import approx_eq
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.queries import template_by_name
from repro.workload.tenant import TenantSpec

_NODES = 2
_NUM_TENANTS = 8   # group size; only the first four submit (U bound needs N)
_ACTIVE_TENANTS = 4


def _replay_with_u(tuning_parallelism: int):
    sim = Simulator()
    provisioner = Provisioner(sim)
    tenants = tuple(
        TenantSpec(tenant_id=i, nodes_requested=_NODES, data_gb=_NODES * 100.0)
        for i in range(1, _NUM_TENANTS + 1)
    )
    design, placement = design_for_group(
        "tg0", tenants, num_instances=3, tuning_parallelism=tuning_parallelism
    )
    instances = tuple(
        provisioner.provision(
            parallelism=design.instance_parallelism(i),
            tenants=[t.as_tenant_data() for t in tenants],
            name=name,
            instant=True,
        )
        for i, name in enumerate(design.instance_names())
    )
    deployed = DeployedGroup(
        deployment=GroupDeployment(design=design, placement=placement, tenants=tenants),
        instances=instances,
    )
    q1 = template_by_name("tpch.q1")
    baseline = q1.dedicated_latency_s(_NODES * 100.0, _NODES)
    logs = {
        t.tenant_id: TenantLog(
            t,
            [QueryRecord(submit_time_s=100.0, latency_s=baseline, template="tpch.q1")]
            if t.tenant_id <= _ACTIVE_TENANTS
            else [],
        )
        for t in tenants
    }
    runtime = GroupRuntime(deployed, logs, sim, provisioner, sla_fraction=0.999)
    return runtime.run(until=100_000.0)


def test_ablation_tuning_u(benchmark):
    u_values = (2, 3, 4, 6)

    def experiment():
        return {u: _replay_with_u(u) for u in u_values}

    reports = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["U", "overflow_queries", "sla_met", "worst_norm"],
            [
                [
                    u,
                    report.overflow_queries,
                    round(report.sla.fraction_met, 3),
                    round(report.sla.worst_normalized, 3),
                ]
                for u, report in reports.items()
            ],
            title="Manual tuning: U of MPPDB_0 vs overflow SLA (4 concurrent tenants, n=2, A=3)",
        )
    )
    recommended = recommended_tuning_nodes(_NODES, overflow_mpl=2)
    print(f"recommended U for MPL 2 at n={_NODES}: {recommended}")
    # The overflow happens regardless of U (Algorithm 1 line 10)...
    assert all(report.overflow_queries == 1 for report in reports.values())
    # ...and at U = n it causes SLA violations.
    assert reports[2].sla.fraction_met < 1.0
    assert reports[2].sla.worst_normalized > 1.5
    # Raising U monotonically improves the worst normalized latency.
    worsts = [reports[u].sla.worst_normalized for u in u_values]
    assert all(b <= a + 1e-9 for a, b in zip(worsts, worsts[1:]))
    # At the recommended U the overflow is fully absorbed (empirically
    # meeting the 99.9 % SLA, Chapter 6's point).
    assert approx_eq(reports[recommended].sla.fraction_met, 1.0)
