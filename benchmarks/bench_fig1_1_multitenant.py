"""Figure 1.1 — query performance in a shared-process MPPDB.

Panel (a): TPC-H Q1 speedup vs node count for 1T, 2T-SEQ, 2T-CON, 4T-SEQ,
4T-CON.  SEQ lines track the single-tenant line (shared-process overhead is
negligible for non-overlapping tenants); CON lines are 2x / 4x slower.

Panel (b): Q1 latency points A (2-node dedicated), B (one active tenant on
a shared 6-node MPPDB) and C (two active tenants on the 6-node MPPDB) with
B < C <= A — the second consolidation opportunity.

Panel (c): TPC-H Q19's non-linear scale-out.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.mppdb.execution import ExecutionEngine
from repro.simulation.engine import Simulator
from repro.workload.tpch import tpch_template

_NODES = (1, 2, 4, 8)
_DATA_GB = 100.0  # SF100 per tenant, as in §1.1


def _concurrent_latency(template, nodes: int, tenants: int) -> float:
    """Average latency when `tenants` tenants submit the query together."""
    sim = Simulator()
    engine = ExecutionEngine(sim)
    work = template.dedicated_latency_s(_DATA_GB, nodes)
    executions = [engine.submit(tenant_id=t, work_s=work) for t in range(tenants)]
    sim.run()
    return sum(e.latency_s for e in executions) / len(executions)


def _sequential_latency(template, nodes: int, tenants: int) -> float:
    """Average latency when tenants submit one after the other."""
    sim = Simulator()
    engine = ExecutionEngine(sim)
    work = template.dedicated_latency_s(_DATA_GB, nodes)
    latencies = []
    for t in range(tenants):
        execution = engine.submit(tenant_id=t, work_s=work)
        sim.run()
        latencies.append(execution.latency_s)
    return sum(latencies) / len(latencies)


def _speedup_rows(template):
    base = _concurrent_latency(template, 1, 1)
    rows = []
    for nodes in _NODES:
        rows.append(
            [
                nodes,
                round(base / _sequential_latency(template, nodes, 1), 2),
                round(base / _sequential_latency(template, nodes, 2), 2),
                round(base / _concurrent_latency(template, nodes, 2), 2),
                round(base / _sequential_latency(template, nodes, 4), 2),
                round(base / _concurrent_latency(template, nodes, 4), 2),
            ]
        )
    return rows


def test_fig1_1a_q1_speedup(benchmark):
    q1 = tpch_template(1)

    def experiment():
        return _speedup_rows(q1)

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["nodes", "1T", "2T-SEQ", "2T-CON", "4T-SEQ", "4T-CON"],
            rows,
            title="Figure 1.1a: TPC-H Q1 speedup (vs 1-node single tenant)",
        )
    )
    # Shape assertions: SEQ tracks 1T; CON is ~2x / ~4x slower.
    for row in rows:
        __, one_t, seq2, con2, seq4, con4 = row
        assert abs(seq2 - one_t) < 0.01 * one_t + 0.01
        assert abs(con2 - one_t / 2) < 0.05 * one_t
        assert abs(con4 - one_t / 4) < 0.05 * one_t


def test_fig1_1b_q1_latency_points(benchmark):
    q1 = tpch_template(1)

    def experiment():
        point_a = _concurrent_latency(q1, 2, 1)  # dedicated 2-node
        point_b = _concurrent_latency(q1, 6, 1)  # 1 active on shared 6-node
        point_c = _concurrent_latency(q1, 6, 2)  # 2 active on shared 6-node
        return point_a, point_b, point_c

    point_a, point_b, point_c = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["point", "setting", "latency_s"],
            [
                ["A", "dedicated 2-node, 1 active", round(point_a, 2)],
                ["B", "shared 6-node, 1 active", round(point_b, 2)],
                ["C", "shared 6-node, 2 active", round(point_c, 2)],
            ],
            title="Figure 1.1b: Q1 latency (SLA = A seconds)",
        )
    )
    assert point_b < point_c <= point_a + 1e-9


def test_fig1_1c_q19_nonlinear(benchmark):
    q19 = tpch_template(19)

    def experiment():
        base = _concurrent_latency(q19, 1, 1)
        return [
            [nodes, round(base / _concurrent_latency(q19, nodes, 1), 2)]
            for nodes in _NODES
        ]

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["nodes", "speedup"],
            rows,
            title="Figure 1.1c: TPC-H Q19 speedup (non-linear scale-out)",
        )
    )
    # Q19 speedup is clearly sublinear at 8 nodes.
    assert rows[-1][1] < 0.7 * _NODES[-1]
    # Consequence (Ch.1): the 6-node trick of Fig 1.1b fails for Q19 —
    # two concurrent Q19s on 6 nodes are slower than dedicated 2-node.
    assert _concurrent_latency(q19, 6, 2) > _concurrent_latency(q19, 2, 1)
