"""Figure 7.4 — varying the replication factor R.

Paper shape: a higher R lets each tenant-group tolerate more concurrent
actives, so average group size grows strongly (4.7 at R = 1 to 22.2 at
R = 4), but effectiveness grows only mildly (78.8 % to 82.0 %) because
every group also pays for R replicas; the 2-step run time grows with R
(more candidates fit per group).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import GROUPING_HEADERS, sweep_parameter
from repro.config import PAPER_REPLICATION_FACTORS


def test_fig7_4_varying_replication(benchmark, scale):
    def experiment():
        return sweep_parameter(
            "replication_factor", list(PAPER_REPLICATION_FACTORS), scale=scale
        )

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            GROUPING_HEADERS,
            [r.as_list() for r in rows],
            title="Figure 7.4: varying replication factor R",
        )
    )
    by_r = {r.value: r for r in rows}
    # (b) group size grows strongly and monotonically with R.
    sizes = [by_r[r].two_step_group_size for r in (1, 2, 3, 4)]
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    assert sizes[3] > 2.5 * sizes[0]
    # (a) effectiveness moves much less than group size (paper: ~3 points
    # across R = 1..4) because R replicas water the savings down.  Our
    # R = 1 point sits lower than the paper's (documented deviation in
    # EXPERIMENTS.md: zero tolerated concurrency bites harder on
    # fine-grained activity), so the bound is ~16-20 points rather than 3.
    efficiencies = [by_r[r].two_step_effectiveness for r in (1, 2, 3, 4)]
    assert max(efficiencies) - min(efficiencies) < 0.20
    # The R >= 2 regime matches the paper's flatness claim directly.
    assert max(efficiencies[1:]) - min(efficiencies[1:]) < 0.08
    # 2-step beats FFD at every R.
    assert all(r.advantage_points > 0.0 for r in rows)
