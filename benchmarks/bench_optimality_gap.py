"""Optimality-gap study (Chapter 5 / §7.3's MINLP remark).

The paper implements the Appendix 9.1 MINLP and solves it with DIRECT [14],
reporting ~12 days for a mere 20 tenants — which is why the evaluation
compares heuristics only.  Here, a tiny instance (sampled from the real
workload) is solved four ways: exact branch-and-bound, the 2-step
heuristic, FFD, and MINLP + DIRECT under an evaluation budget.  The
heuristics land at or near the optimum in microseconds; DIRECT burns its
budget to get (at best) the same answer.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload
from repro.packing.direct import solve_livbp_with_direct
from repro.packing.exact import exact_grouping
from repro.packing.ffd import ffd_grouping
from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import two_step_grouping
from repro.workload.activity import ActivityMatrix

_TINY_TENANTS = 9
_COARSE_EPOCH = 600.0  # keep DIRECT's evaluation affordable


def _tiny_problem(scale):
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    matrix = ActivityMatrix.from_workload(workload, _COARSE_EPOCH)
    # Sample a mixed handful of real tenants.
    chosen = matrix.items[:: max(1, len(matrix.items) // _TINY_TENANTS)][:_TINY_TENANTS]
    return LIVBPwFCProblem(
        items=tuple(chosen),
        num_epochs=matrix.num_epochs,
        replication_factor=config.replication_factor,
        sla_fraction=config.sla_fraction,
    )


def test_optimality_gap(benchmark, scale):
    problem = _tiny_problem(scale)

    def experiment():
        exact = exact_grouping(problem)
        two_step = two_step_grouping(problem)
        ffd = ffd_grouping(problem)
        direct, direct_raw = solve_livbp_with_direct(problem, max_evals=1500)
        return exact, two_step, ffd, direct, direct_raw

    exact, two_step, ffd, direct, direct_raw = run_once(benchmark, experiment)
    for solution in (exact, two_step, ffd, direct):
        solution.validate()
    print()
    print(
        format_table(
            ["solver", "nodes_used", "gap_vs_optimal", "solve_s"],
            [
                [s.solver, s.total_nodes_used,
                 s.total_nodes_used - exact.total_nodes_used,
                 round(s.solve_seconds, 4)]
                for s in (exact, two_step, ffd, direct)
            ],
            title=f"Optimality gap on {len(problem)} real tenants (d={problem.num_epochs})",
        )
    )
    print(f"DIRECT evaluations: {direct_raw.evaluations}, iterations: {direct_raw.iterations}")
    # The exact optimum lower-bounds everyone.
    assert exact.total_nodes_used <= two_step.total_nodes_used
    assert exact.total_nodes_used <= ffd.total_nodes_used
    assert exact.total_nodes_used <= direct.total_nodes_used
    # Heuristic gaps stay bounded even on this adversarial regime: with a
    # handful of mixed-size tenants, the 2-step's homogeneous first step
    # (its strength at scale) forces near-singleton groups, so tiny
    # instances are where the exact solver visibly wins — the paper's
    # point in comparing against the MINLP at 20 tenants.
    assert two_step.total_nodes_used <= 2 * exact.total_nodes_used
    assert ffd.total_nodes_used <= 2 * exact.total_nodes_used
    # DIRECT, given a budget, is no better than exact and far slower than
    # the heuristics.
    assert direct.solve_seconds > two_step.solve_seconds
