"""Ablation — why Algorithm 1's routing order matters.

Replays one real tenant group under four routing policies:

* ``tdd`` — Algorithm 1 (tenant affinity, then free MPPDB_0, then any free,
  overflow to MPPDB_0);
* ``random-free`` — a free instance at random, no tenant affinity;
* ``round-robin`` — per-query round robin, oblivious to busy state;
* ``always-tuning`` — everything on MPPDB_0 (no use of replication).

TDD's tenant-exclusive routing should meet the most SLAs; always-tuning
collapses every concurrency onto one instance and is the clear loser.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload
from repro.core.advisor import DeploymentAdvisor
from repro.core.master import DeploymentMaster
from repro.core.routing import ROUTER_POLICIES
from repro.core.runtime import GroupRuntime
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.units import DAY


def _replay_with_policy(workload, group, policy_name):
    sim = Simulator()
    provisioner = Provisioner(sim)
    master = DeploymentMaster(provisioner)
    deployed = master.deploy_group(group, instant=True)
    router_cls = ROUTER_POLICIES[policy_name]
    router = router_cls(deployed.instances)
    logs = {
        tenant_id: workload.tenant_log(tenant_id)
        for tenant_id in group.placement.tenant_ids
    }
    runtime = GroupRuntime(
        deployed, logs, sim, provisioner, sla_fraction=0.999, router=router
    )
    return runtime.run(until=2 * DAY)


def test_ablation_routing_policy(benchmark, scale):
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    advice = DeploymentAdvisor(config).plan_from_workload(workload)
    group = max(advice.plan.groups, key=lambda g: len(g.tenants))

    def experiment():
        return {
            name: _replay_with_policy(workload, group, name)
            for name in ("tdd", "random-free", "round-robin", "always-tuning")
        }

    reports = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["policy", "queries", "sla_met", "mean_norm", "worst_norm"],
            [
                [
                    name,
                    len(report.sla),
                    round(report.sla.fraction_met, 4),
                    round(report.sla.mean_normalized(), 3),
                    round(report.sla.worst_normalized, 2),
                ]
                for name, report in reports.items()
            ],
            title=f"Routing ablation on {group.group_name} ({len(group.tenants)} tenants)",
        )
    )
    tdd = reports["tdd"].sla
    # TDD meets at least as many SLAs as every ablation...
    for name in ("random-free", "round-robin", "always-tuning"):
        assert tdd.fraction_met >= reports[name].sla.fraction_met - 1e-9
    # ...and always-tuning (one shared instance) is strictly worse.
    assert tdd.fraction_met > reports["always-tuning"].sla.fraction_met
    assert reports["always-tuning"].sla.mean_normalized() > tdd.mean_normalized()
