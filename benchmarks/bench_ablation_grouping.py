"""Ablation — the design choices inside the grouping heuristics.

Four variants on the same instance:

* 2-step (homogeneous initial groups, the paper's Algorithm 2);
* 1-step (the second step run directly on the mixed tenant population —
  drops the paper's first intuition, so bins mix sizes and pay for their
  largest member);
* FFD with activity-only sorting (the paper's baseline);
* FFD with size-aware (volume) sorting and with the classic hard capacity,
  isolating each of FFD's two blind spots.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload
from repro.packing.ffd import ffd_grouping
from repro.packing.livbp import GroupingSolution, LIVBPwFCProblem
from repro.packing.two_step import pack_initial_group, two_step_grouping
from repro.workload.activity import ActivityMatrix


def _one_step_grouping(problem):
    """Algorithm 2's second step without the homogeneous first step."""
    groups = pack_initial_group(
        problem.items, problem.num_epochs, problem.replication_factor, problem.sla_fraction
    )
    return GroupingSolution(problem, groups, solver="1-step-mixed")


def test_ablation_grouping_design(benchmark, scale):
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    matrix = ActivityMatrix.from_workload(workload, config.epoch_size_s)
    problem = LIVBPwFCProblem.from_activity_matrix(
        matrix, config.replication_factor, config.sla_percent
    )

    def experiment():
        return [
            two_step_grouping(problem),
            _one_step_grouping(problem),
            ffd_grouping(problem, sort_key="activity", fuzzy=True),
            ffd_grouping(problem, sort_key="volume", fuzzy=True),
            ffd_grouping(problem, sort_key="activity", fuzzy=False),
        ]

    solutions = run_once(benchmark, experiment)
    for solution in solutions:
        solution.validate()
    print()
    print(
        format_table(
            ["variant", "nodes_used", "effectiveness", "avg_group_size"],
            [
                [
                    s.solver,
                    s.total_nodes_used,
                    round(s.consolidation_effectiveness, 4),
                    round(s.average_group_size, 2),
                ]
                for s in solutions
            ],
            title="Grouping design ablation (default parameters)",
        )
    )
    two_step, one_step, ffd_paper, ffd_volume, ffd_hard = solutions
    # Dropping the homogeneous first step costs nodes: mixed bins pay for
    # their largest tenant.
    assert two_step.total_nodes_used < one_step.total_nodes_used
    # Size-aware sorting repairs most of FFD's gap...
    assert ffd_volume.total_nodes_used <= ffd_paper.total_nodes_used
    # ...while the classic hard capacity cripples it (no fuzzy allowance).
    assert ffd_hard.total_nodes_used > ffd_paper.total_nodes_used
    # The full 2-step beats the paper's FFD baseline (§7.3).
    assert two_step.total_nodes_used < ffd_paper.total_nodes_used
