"""Ablation — the Chapter 8 divergent design for template-known tenants.

The paper's future work: tenants that never submit ad-hoc queries (their
templates are extractable) get a specialized tenant-driven *divergent*
design — ``U > n_1`` upfront plus per-replica partition schemes — so
overflow concurrency on ``MPPDB_0`` meets the SLA even for non-linear
queries, the case where plain TDD's manual tuning is provably impossible
(``recommended_tuning_nodes`` diverges for Amdahl queries at MPL >= 1/s).

The experiment runs MPL-2 overflow of each known template on ``MPPDB_0``
under the standard design (U = n) and the divergent design (sized U,
favoured-template speedup) and reports the worst normalized latency.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.core.divergent import DivergentDesigner, template_serial_fraction
from repro.errors import ConfigurationError
from repro.core.tuning import recommended_tuning_nodes
from repro.mppdb.execution import ExecutionEngine
from repro.simulation.engine import Simulator
from repro.workload.tenant import TenantSpec
from repro.workload.tpch import tpch_template

_NODES = 4
_MPL = 2
_TEMPLATES = [tpch_template(1), tpch_template(6), tpch_template(17), tpch_template(19)]


def _tenants(count=6):
    return [
        TenantSpec(tenant_id=i, nodes_requested=_NODES, data_gb=_NODES * 100.0)
        for i in range(1, count + 1)
    ]


def _worst_concurrent_normalized(template, tuning_nodes, speedup):
    """Normalized latency of MPL-2 concurrent execution on MPPDB_0."""
    sim = Simulator()
    engine = ExecutionEngine(sim)
    data_gb = _NODES * 100.0
    target = template.dedicated_latency_s(data_gb, _NODES)
    work = template.dedicated_latency_s(data_gb, tuning_nodes) / speedup
    executions = [engine.submit(tenant_id=t, work_s=work) for t in range(_MPL)]
    sim.run()
    return max(e.latency_s for e in executions) / target


def test_ablation_divergent_design(benchmark):
    designer = DivergentDesigner(divergence_speedup=1.5)

    def experiment():
        divergent = designer.design_group(
            "dg0", _tenants(), _TEMPLATES, num_instances=3, absorbed_concurrency=_MPL
        )
        rows = []
        for template in _TEMPLATES:
            serial = template_serial_fraction(template)
            standard = _worst_concurrent_normalized(template, _NODES, 1.0)
            favoured = divergent.favoured_replica(template.name) == "dg0/mppdb0"
            diverged = _worst_concurrent_normalized(
                template,
                divergent.design.tuning_parallelism,
                designer.divergence_speedup if favoured else 1.0,
            )
            try:
                plain_u = recommended_tuning_nodes(_NODES, _MPL, serial)
            except ConfigurationError:
                plain_u = None
            rows.append([template.name, round(serial, 3), round(standard, 2),
                         round(diverged, 2), plain_u if plain_u is not None else "impossible"])
        return divergent, rows

    divergent, rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["template", "serial_frac", "standard_norm", "divergent_norm", "plain_U_needed"],
            rows,
            title=(
                f"Divergent design: MPL-{_MPL} overflow on MPPDB_0 "
                f"(n={_NODES}, U={divergent.design.tuning_parallelism}, "
                f"speedup={designer.divergence_speedup})"
            ),
        )
    )
    print(f"divergent group nodes: {divergent.total_nodes} "
          f"(standard TDD: {3 * _NODES})")
    # Standard design: every template misses the SLA at MPL 2 (2x slower).
    assert all(row[2] > 1.5 for row in rows)
    # Divergent design: every template, including the Amdahl ones whose
    # plain manual tuning is impossible, meets the SLA.
    assert all(row[3] <= 1.0 + 1e-9 for row in rows)
    # And it pays for this with a bounded number of extra nodes upfront.
    assert divergent.total_nodes < 3 * _NODES + 3 * _NODES
