"""Figure 7.7 — lightweight elastic scaling in a tenant group.

Reproduces the §7.5 experiment: take one tenant group from the default
deployment, replay its composed logs, and *manually take over one tenant*
at time Y, submitting queries continuously on its behalf.  Without elastic
scaling (panels a/b) the group's RT-TTP sinks below P and queries keep
missing their SLA; with lightweight scaling enabled (panels c/d) Thrifty
identifies the over-active tenant, bulk loads only its data onto a fresh
MPPDB (hours, not the ~14.5 h a whole-group copy would take), pins the
tenant there, and the group's RT-TTP recovers.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import ascii_series, format_table
from repro.core.advisor import DeploymentAdvisor
from repro.core.master import DeploymentMaster
from repro.core.runtime import GroupRuntime
from repro.core.scaling import DisabledScaling, LightweightScaling
from repro.analysis.sweeps import build_workload
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.units import DAY, HOUR, MINUTE, format_duration
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.queries import template_by_name

_TAKEOVER_START = 6 * HOUR          # time Y
_HORIZON = 3 * DAY
_TAKEOVER_END = _HORIZON            # the takeover keeps submitting throughout
_TEMPLATE = "tpcds.q72"             # a heavy query keeps the tenant busy


def _pick_group(plan):
    """A mid-sized group of small tenants makes the excerpt readable.

    The paper's excerpt uses 14 tenants on 4-node MPPDBs; small
    parallelism also keeps the scale-up's bulk load (100 GB/node) within
    the excerpt so the recovery is visible.
    """
    candidates = sorted(
        plan.groups, key=lambda g: (g.design.parallelism, abs(len(g.tenants) - 14))
    )
    return candidates[0]


def _over_active_log(workload, tenant_id):
    """The taken-over tenant's log: continuous submissions from Y on."""
    spec = workload.tenant(tenant_id)
    template = template_by_name(_TEMPLATE)
    latency = template.dedicated_latency_s(spec.data_gb, spec.nodes_requested)
    original = workload.tenant_log(tenant_id)
    records = [r for r in original.records if r.submit_time_s < _TAKEOVER_START]
    t = _TAKEOVER_START
    while t < _TAKEOVER_END:
        records.append(QueryRecord(submit_time_s=t, latency_s=latency, template=_TEMPLATE))
        t += latency * 1.05 + 0.5  # near back-to-back: ~95 % busy
    return TenantLog(spec, records)


def _replay(workload, group, scaling_enabled: bool):
    sim = Simulator()
    provisioner = Provisioner(sim)
    master = DeploymentMaster(provisioner)
    deployed = master.deploy_group(group, instant=True)
    over_tenant = group.placement.tenant_ids[0]
    logs = {}
    for tenant_id in group.placement.tenant_ids:
        if tenant_id == over_tenant:
            logs[tenant_id] = _over_active_log(workload, tenant_id)
        else:
            logs[tenant_id] = workload.tenant_log(tenant_id)
    # The history the tenants are held against: their *composed* (pre-
    # takeover) activity, as the Tenant Activity Monitor would have it.
    d = workload.num_epochs(10.0)
    history = {
        tenant_id: len(workload.activity_epochs(tenant_id, 10.0)) / d
        for tenant_id in group.placement.tenant_ids
    }
    scaling = (
        LightweightScaling(identification_epoch_s=10.0, historical_fraction=history)
        if scaling_enabled
        else DisabledScaling()
    )
    runtime = GroupRuntime(
        deployed,
        logs,
        sim,
        provisioner,
        sla_fraction=0.999,
        scaling=scaling,
        monitor_interval_s=5 * MINUTE,
    )
    report = runtime.run(until=_HORIZON)
    return report, over_tenant


def test_fig7_7_lightweight_elastic_scaling(benchmark, scale):
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    advice = DeploymentAdvisor(config).plan_from_workload(workload)
    group = _pick_group(advice.plan)

    def experiment():
        disabled = _replay(workload, group, scaling_enabled=False)
        enabled = _replay(workload, group, scaling_enabled=True)
        return disabled, enabled

    (disabled_report, over_tenant), (enabled_report, __) = run_once(benchmark, experiment)

    print()
    print(
        f"group {group.group_name}: {len(group.tenants)} tenants x "
        f"{group.design.parallelism}-node MPPDBs, A = {group.design.num_instances}; "
        f"tenant {over_tenant} taken over at Y = {format_duration(_TAKEOVER_START)}"
    )
    for label, report in (("disabled", disabled_report), ("enabled", enabled_report)):
        ttp = [v for __, v in report.rt_ttp_samples]
        print(ascii_series(ttp, label=f"(RT-TTP, scaling {label:8s})"))
        normalized = [r.normalized for r in sorted(report.sla.records, key=lambda r: r.submit_time_s)]
        print(ascii_series(normalized, label=f"(norm.lat, scaling {label:8s})"))

    actions = enabled_report.scaling_actions
    rows = [
        [
            round(a.time / HOUR, 2),
            a.kind,
            list(a.over_active),
            a.instance_name,
            round(a.loaded_gb),
            format_duration(a.expected_ready_time - a.time),
        ]
        for a in actions
    ]
    print(
        format_table(
            ["t_hours", "kind", "over_active", "instance", "loaded_gb", "time_to_ready"],
            rows,
            title="Elastic scaling actions (enabled run)",
        )
    )

    # The §7.5 excerpt, straight from the recorded trace: every scaling
    # entry inside the takeover window, in time order.
    excerpt = enabled_report.trace.filter(
        kind="elastic-scaling", start=_TAKEOVER_START, end=_HORIZON
    )
    print("Trace excerpt (elastic-scaling entries):")
    for entry in excerpt:
        print(f"  {entry}")
    assert len(excerpt) == len(actions)
    assert [e.details["policy"] for e in excerpt] == [a.kind for a in actions]

    # Panels a/b: without scaling the RT-TTP dives below P and stays low.
    assert disabled_report.scaling_actions == []
    assert disabled_report.rt_ttp_min() < 0.999
    # Panels c/d: scaling fires, identifies the taken-over tenant, loads a
    # fraction of the group's data.
    assert len(actions) >= 1
    first = actions[0]
    assert first.kind == "lightweight"
    assert over_tenant in first.over_active
    group_gb = sum(t.data_gb for t in group.tenants)
    assert first.loaded_gb < group_gb / 2
    # After the new MPPDB is ready, the group's queries violate their SLA
    # less often than in the disabled run over the same window.
    window = (first.expected_ready_time + HOUR, _HORIZON)
    assert window[0] < window[1], "scale-up must complete within the excerpt"
    enabled_window = enabled_report.sla.window(*window)
    disabled_window = disabled_report.sla.window(*window)
    print(
        f"post-ready SLA met: enabled={enabled_window.fraction_met:.4f} "
        f"({len(enabled_window.violations())} violations) "
        f"disabled={disabled_window.fraction_met:.4f} "
        f"({len(disabled_window.violations())} violations) "
        f"(window {format_duration(window[0])}..{format_duration(window[1])})"
    )
    assert len(enabled_window.violations()) < len(disabled_window.violations())
    assert enabled_window.fraction_met >= disabled_window.fraction_met
    # The RT-TTP (which excludes the removed tenant) recovers by the end,
    # clearly above the disabled run's final level.
    final_enabled = enabled_report.rt_ttp_samples[-1][1]
    final_disabled = disabled_report.rt_ttp_samples[-1][1]
    assert final_enabled >= 0.998
    assert final_enabled > final_disabled
