"""Figure 7.5 — varying the performance SLA guarantee P.

Paper shape: a lax 95 % guarantee lets groups pack far more tenants
(effectiveness up to 86.5 %); tightening to 99.9 % costs a few points
(81.6 %), and tightening further to 99.99 % barely moves the result
(81.3 %) — 99.9 % is already nearly as strict as the activity patterns
allow.  Both heuristics pack more tenants at lax P, and the 2-step run
time grows because more insertions succeed per group.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import GROUPING_HEADERS, sweep_parameter
from repro.config import PAPER_SLA_LEVELS


def test_fig7_5_varying_sla(benchmark, scale):
    def experiment():
        return sweep_parameter("sla_percent", list(PAPER_SLA_LEVELS), scale=scale)

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            GROUPING_HEADERS,
            [r.as_list() for r in rows],
            title="Figure 7.5: varying performance SLA P",
        )
    )
    by_p = {r.value: r for r in rows}
    # (a) lax SLA packs better; stricter SLA monotonically costs nodes.
    efficiencies = [by_p[p].two_step_effectiveness for p in (95.0, 99.0, 99.9, 99.99)]
    assert all(b <= a + 1e-9 for a, b in zip(efficiencies, efficiencies[1:]))
    assert by_p[95.0].two_step_effectiveness > by_p[99.9].two_step_effectiveness
    # Deviation note (see EXPERIMENTS.md): the paper reports 99.9 % ->
    # 99.99 % as nearly free; at this substrate's fine epoch sizes the
    # 10x-smaller violation budget binds, so the drop is visible but
    # bounded.
    assert (
        by_p[99.9].two_step_effectiveness - by_p[99.99].two_step_effectiveness
        < 0.2
    )
    # (b) group size follows the same order.
    assert by_p[95.0].two_step_group_size > by_p[99.99].two_step_group_size
    # 2-step beats FFD at every P.
    assert all(r.advantage_points > 0.0 for r in rows)
