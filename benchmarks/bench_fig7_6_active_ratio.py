"""Figure 7.6 — consolidation effectiveness under higher active tenant ratios.

The §7.4 log-composition variants concentrate activity in wall-clock time:
(1) tenants only from North America (+0/+3 offsets), (2) additionally no
lunch hour, (3) a single time zone and no lunch.  Paper shape: the active
tenant ratio climbs (11.9 % -> 25.1 % -> 30.7 % -> 34.4 %) and the 2-step
effectiveness collapses (81.3 % -> ... -> 47.6 % -> 34.8 %) with average
group sizes shrinking toward ~5 (at R = 3: three MPPDBs serving five
tenants saves only two tenants' nodes).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload, run_grouping_experiment


def test_fig7_6_higher_active_ratio(benchmark, scale):
    base = scale.config()
    variants = [
        ("default", base.logs),
        ("(1) NA offsets only", base.logs.north_america_only()),
        ("(2) NA + no lunch", base.logs.north_america_only().without_lunch()),
        ("(3) single tz + no lunch", base.logs.single_timezone().without_lunch()),
    ]

    def experiment():
        rows = []
        for name, logs in variants:
            config = base.scaled(logs=logs)
            workload = build_workload(config, scale.sessions_per_size)
            row = run_grouping_experiment(
                workload,
                epoch_size=config.epoch_size_s,
                replication_factor=config.replication_factor,
                sla_percent=config.sla_percent,
                parameter="variant",
                value=name,
            )
            conditional = workload.active_tenant_ratio(
                config.epoch_size_s, conditional=True
            )
            rows.append((name, conditional, row))
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["variant", "active_ratio", "2step_eff", "ffd_eff", "2step_gsz"],
            [
                [name, round(ratio, 4), round(r.two_step_effectiveness, 4),
                 round(r.ffd_effectiveness, 4), round(r.two_step_group_size, 2)]
                for name, ratio, r in rows
            ],
            title="Figure 7.6: higher active tenant ratio (conditional ratio)",
        )
    )
    ratios = [ratio for __, ratio, __ in rows]
    efficiencies = [r.two_step_effectiveness for __, __, r in rows]
    sizes = [r.two_step_group_size for __, __, r in rows]
    # Activity concentration rises across the variants...
    assert ratios[1] > ratios[0]
    assert ratios[3] > ratios[1]
    # ...and consolidation effectiveness falls substantially.
    assert efficiencies[3] < efficiencies[0] - 0.15
    assert efficiencies[3] == min(efficiencies)
    # Group sizes shrink with the squeeze.
    assert sizes[3] < sizes[0]
