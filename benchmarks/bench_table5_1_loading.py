"""Table 5.1 — starting and bulk loading a MPPDB.

Prints the calibrated model's startup-and-init and bulk-load times next to
the paper's measurements for the five table rows, plus the aggregate load
rate (the paper reports ~1.2 GB/min).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.mppdb.loading import LoadTimeModel, PAPER_LOAD_TABLE
from repro.units import format_duration, format_size_gb


def test_table5_1_loading(benchmark):
    model = LoadTimeModel()

    def experiment():
        rows = []
        for nodes, (data_gb, paper_startup, paper_load) in sorted(PAPER_LOAD_TABLE.items()):
            rows.append(
                [
                    f"{nodes}-node / {format_size_gb(data_gb)}",
                    round(model.startup_seconds(nodes)),
                    round(paper_startup),
                    round(model.bulk_load_seconds(data_gb)),
                    round(paper_load),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["tenant/data", "start_model_s", "start_paper_s", "load_model_s", "load_paper_s"],
            rows,
            title="Table 5.1: starting and bulk loading a MPPDB (model vs paper)",
        )
    )
    rate_gb_min = model.load_rate_gb_s() * 60
    print(f"aggregate parallel load rate: {rate_gb_min:.2f} GB/min (paper: ~1.2)")
    total = model.provision_seconds(10, 1024.0)
    print(f"10-node / 1TB time-to-ready: {format_duration(total)} (paper: ~14.5h)")
    for row in rows:
        __, start_model, start_paper, load_model, load_paper = row
        assert abs(start_model - start_paper) <= 0.11 * start_paper
        assert abs(load_model - load_paper) <= 0.03 * load_paper
