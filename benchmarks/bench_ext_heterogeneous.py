"""Extension — heterogeneous clusters (Chapter 8, future work item 1).

A provider refreshes part of its fleet with faster machines.  TDD keeps
every MPPDB on uniform nodes, so heterogeneity is assigned *between*
tenant groups: the greedy planner gives the fastest class to the largest
node consumers while stock lasts.  The experiment deploys the same tenant
group on standard and fast hardware and replays the 4-concurrent-tenant
overflow scenario: on fast nodes, even the overflow query that shares
MPPDB_0 meets its (standard-hardware) SLA — hardware headroom buys the
same effect as Chapter 6's manual U tuning.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweeps import build_workload
from repro.cluster.node import NodeSpec
from repro.cluster.pool import MachinePool
from repro.core.advisor import DeploymentAdvisor
from repro.core.heterogeneous import assign_node_classes, plan_speed_summary
from repro.core.master import DeploymentMaster
from repro.core.runtime import GroupRuntime
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.units import approx_eq
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.queries import template_by_name

FAST = NodeSpec(cpu_units=16, ram_gb=30.0, relative_speed=2.0)


def _overflow_replay(group, node_class):
    """Four tenants of the group concurrently active; one overflows."""
    sim = Simulator()
    pool = MachinePool(0, elastic=True)
    pool.add_node_class("fast", FAST)
    master = DeploymentMaster(Provisioner(sim, pool))
    deployed = master.deploy_group(group, instant=True, node_class=node_class)
    q1 = template_by_name("tpch.q1")
    n = group.design.parallelism
    baseline = q1.dedicated_latency_s(n * 100.0, n)
    actives = list(group.placement.tenant_ids[:4])
    logs = {
        tid: TenantLog(
            group.tenant(tid),
            [QueryRecord(submit_time_s=100.0, latency_s=baseline, template="tpch.q1")]
            if tid in actives
            else [],
        )
        for tid in group.placement.tenant_ids
    }
    runtime = GroupRuntime(deployed, logs, sim, master.provisioner, sla_fraction=0.999)
    return runtime.run(until=100_000.0)


def test_ext_heterogeneous_cluster(benchmark, scale):
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    advice = DeploymentAdvisor(config).plan_from_workload(workload)
    plan = advice.plan

    def experiment():
        pool = MachinePool(0, elastic=True)
        # Refresh ~40% of the fleet with 2x nodes.
        pool.add_node_class("fast", FAST, count=int(0.4 * plan.total_nodes_used))
        assignment = assign_node_classes(plan, pool)
        summary = plan_speed_summary(plan, pool, assignment)
        group = sorted(
            plan.groups,
            key=lambda g: (g.design.parallelism, -len(g.tenants)),
        )[0]
        reports = {
            node_class: _overflow_replay(group, node_class)
            for node_class in ("standard", "fast")
        }
        return assignment, summary, group, reports

    assignment, summary, group, reports = run_once(benchmark, experiment)
    upgraded = [name for name, cls in assignment.items() if cls == "fast"]
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["groups upgraded to fast nodes", len(upgraded)],
                ["node-weighted mean speed", round(summary["mean_speed"], 3)],
                ["total plan nodes", int(summary["nodes"])],
            ],
            title="Heterogeneous fleet assignment (fastest class to largest groups)",
        )
    )
    rows = []
    for node_class, report in reports.items():
        rows.append(
            [
                node_class,
                report.overflow_queries,
                round(report.sla.fraction_met, 3),
                round(report.sla.worst_normalized, 3),
            ]
        )
    print(
        format_table(
            ["hardware", "overflow_queries", "sla_met", "worst_norm"],
            rows,
            title=f"4-concurrent-tenant overflow on {group.group_name} (A=3)",
        )
    )
    # The greedy planner upgrades in decreasing-size order within stock:
    # the single largest group is upgraded whenever the stock covers it,
    # total upgrades never exceed the stock, and the node-weighted mean
    # speed rises above the all-standard baseline.
    stock = int(0.4 * plan.total_nodes_used)
    upgraded_nodes = [plan.group(name).nodes_used for name in upgraded]
    largest = max(g.nodes_used for g in plan)
    if stock >= largest:
        assert largest in upgraded_nodes
    assert sum(upgraded_nodes) <= stock
    assert summary["mean_speed"] > 1.0
    # Overflow sharing misses the SLA on standard nodes but the 2x class
    # absorbs it (like point C of Fig 1.1b, bought with hardware).
    assert reports["standard"].sla.worst_normalized > 1.5
    assert approx_eq(reports["fast"].sla.fraction_met, 1.0)
