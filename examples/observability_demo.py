#!/usr/bin/env python
"""Observability end-to-end: instrument a replay, export it, read it back.

Runs a small multi-tenant replay with a :class:`repro.obs.Observer`
attached, writes the run report (``metrics.jsonl`` / ``spans.jsonl`` /
``summary.json``), then reloads the directory the way ``thrifty obs``
does and prints the top-5 busiest groups plus one group's RT-TTP
trajectory — computed *only* from the exported files, proving the export
is self-contained.

Run:  python examples/observability_demo.py [out_dir]
"""

import sys
import tempfile

from repro.analysis.report import ascii_series, format_table
from repro.config import EvaluationConfig, LogGenerationConfig
from repro.core.service import ThriftyService
from repro.obs import MemorySink, Observer, load_run_report, write_run_report
from repro.units import DAY, format_duration
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator

HORIZON = 1 * DAY


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="thrifty-obs-")

    config = EvaluationConfig(
        num_tenants=60, logs=LogGenerationConfig(horizon_days=3), seed=11
    )
    library = SessionLogGenerator(config, sessions_per_size=4).generate()
    workload = MultiTenantLogComposer(config, library).compose()

    observer = Observer(MemorySink())
    service = ThriftyService(config, observer=observer)
    advice = service.deploy(workload)
    print(
        f"deployed {config.num_tenants} tenants into {len(advice.plan)} groups "
        f"({advice.plan.consolidation_effectiveness:.1%} of nodes saved)"
    )
    service.replay(until=HORIZON)
    paths = write_run_report(
        out_dir,
        observer,
        horizon=HORIZON,
        simulator_events=service.simulator.event_counts,
        meta={"example": "observability_demo", "tenants": config.num_tenants},
    )
    print(f"run report written to {paths.directory}\n")

    # Everything below uses only the files on disk — the thrifty-obs view.
    report = load_run_report(out_dir)
    queries = report.summary["queries"]
    print(
        f"replayed {format_duration(HORIZON)}: "
        f"{queries['submitted']:.0f} submitted, {queries['completed']:.0f} completed, "
        f"{queries['sla_violations']:.0f} SLA violations"
    )

    top = report.top_groups(5)
    rows = []
    for name, submitted in top:
        info = report.summary["groups"][name]
        rows.append(
            [
                name,
                int(submitted),
                int(info["queries_completed"]),
                int(info["sla_violations"]),
                f"{info['rt_ttp_min']:.4f}",
            ]
        )
    print(
        format_table(
            ["group", "submitted", "completed", "violations", "rt_ttp_min"],
            rows,
            title="Top-5 busiest groups (by queries submitted)",
        )
    )

    busiest = top[0][0]
    trajectory = report.rt_ttp_trajectory(busiest)
    if trajectory:
        print(
            ascii_series(
                [v for __, v in trajectory], label=f"RT-TTP trajectory ({busiest})"
            )
        )
        print(
            f"  {len(trajectory)} monitor ticks, "
            f"min {min(v for __, v in trajectory):.5f}"
        )

    samples = report.metric_samples("thrifty_rt_ttp")
    print(f"\nmetrics.jsonl carries {len(report.metrics)} samples "
          f"({len(samples)} of them thrifty_rt_ttp); "
          f"spans.jsonl carries {len(report.spans)} spans")


if __name__ == "__main__":
    main()
