#!/usr/bin/env python
"""Capacity planning for an MPPDBaaS provider.

A provider deciding how much hardware to buy wants to know how the
consolidated footprint responds to its levers: the replication factor
(availability vs cost), the SLA guarantee sold to tenants, and the tenant
population mix.  This example sweeps those knobs with the two grouping
heuristics and prints a what-if table, plus a per-size-class breakdown
showing where the nodes go.

Run:  python examples/capacity_planning.py
"""

from repro.analysis.effectiveness import effectiveness_by_size_class
from repro.analysis.report import format_table
from repro.analysis.sweeps import BenchScale, build_workload, run_grouping_experiment
from repro.packing.livbp import LIVBPwFCProblem
from repro.packing.two_step import two_step_grouping
from repro.workload.activity import ActivityMatrix

SCALE = BenchScale(num_tenants=300, horizon_days=7, holiday_weekdays=0, sessions_per_size=8)


def sweep_table() -> None:
    print("=== what-if: replication factor x SLA guarantee ===")
    rows = []
    workload = build_workload(SCALE.config(), SCALE.sessions_per_size)
    for r in (1, 2, 3):
        for p in (99.0, 99.9):
            row = run_grouping_experiment(
                workload, epoch_size=1.0, replication_factor=r, sla_percent=p
            )
            rows.append(
                [
                    r,
                    f"{p}%",
                    round(row.two_step_effectiveness, 3),
                    round(row.two_step_group_size, 1),
                    round(row.ffd_effectiveness, 3),
                ]
            )
    print(
        format_table(
            ["R", "P", "2step_effectiveness", "avg_group_size", "ffd_effectiveness"],
            rows,
        )
    )
    print(
        "\nReading: higher R costs replicas but tolerates more concurrent"
        "\ntenants per group; a laxer P packs more tenants per group."
    )


def size_class_breakdown() -> None:
    print("\n=== where do the nodes go? (per size class) ===")
    config = SCALE.config()
    workload = build_workload(config, SCALE.sessions_per_size)
    matrix = ActivityMatrix.from_workload(workload, config.epoch_size_s)
    problem = LIVBPwFCProblem.from_activity_matrix(
        matrix, config.replication_factor, config.sla_percent
    )
    solution = two_step_grouping(problem)
    classes = effectiveness_by_size_class(solution)
    print(
        format_table(
            ["node_size", "tenants", "groups", "avg_group", "nodes_used", "effectiveness"],
            [
                [
                    size,
                    int(stats["tenants"]),
                    int(stats["groups"]),
                    round(stats["avg_group_size"], 1),
                    int(stats["nodes_used"]),
                    round(stats["effectiveness"], 3),
                ]
                for size, stats in sorted(classes.items())
            ],
        )
    )
    print(
        "\nReading: under Zipf sizing the 32-node class has few tenants but"
        "\ndominates the node bill; its group sizes bound the total savings."
    )


def main() -> None:
    sweep_table()
    size_class_breakdown()


if __name__ == "__main__":
    main()
