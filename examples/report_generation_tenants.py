#!/usr/bin/env python
"""The Chapter 8 special tenant class: report-generation applications.

Some tenants never submit ad-hoc queries — their applications only run
stored reporting queries, so the provider can extract the query templates.
For them the paper sketches a *tenant-driven divergent design*: pay for a
bigger tuning MPPDB (U > n) upfront and tune each replica's partition
scheme for a subset of the templates, so that overflow concurrency on
MPPDB_0 meets the SLA even for non-linear queries — the case plain manual
tuning provably cannot fix (a TPC-H Q19-style query with serial fraction
0.2 can never absorb MPL 3 on any number of nodes).

Run:  python examples/report_generation_tenants.py
"""

from repro.analysis.report import format_table
from repro.core.divergent import (
    DivergentDesigner,
    minimum_tuning_nodes_for_templates,
    template_serial_fraction,
)
from repro.core.tuning import recommended_tuning_nodes
from repro.errors import ConfigurationError
from repro.workload.tenant import TenantSpec
from repro.workload.tpch import tpch_template

NODES = 4
REPORT_TEMPLATES = [tpch_template(n) for n in (1, 6, 12, 17, 19)]


def main() -> None:
    tenants = [
        TenantSpec(tenant_id=i, nodes_requested=NODES, data_gb=NODES * 100.0)
        for i in range(1, 9)
    ]

    print("=== the problem: non-linear queries defeat plain tuning ===")
    rows = []
    for template in REPORT_TEMPLATES:
        serial = template_serial_fraction(template)
        try:
            plain = recommended_tuning_nodes(NODES, overflow_mpl=2, serial_fraction=serial)
        except ConfigurationError:
            plain = "impossible"
        rows.append([template.name, round(serial, 3), plain])
    print(format_table(["template", "serial_fraction", "plain_U_for_MPL2"], rows))

    print("\n=== the divergent design ===")
    designer = DivergentDesigner(divergence_speedup=1.5)
    design = designer.design_group(
        "reports", tenants, REPORT_TEMPLATES, num_instances=3, absorbed_concurrency=2
    )
    print(f"parallelism per replica: {design.design.parallelism}")
    print(f"tuning MPPDB size U:     {design.design.tuning_parallelism}")
    print(f"total nodes:             {design.total_nodes} "
          f"(plain TDD would use {3 * NODES})")
    print("\nper-replica template affinity (partition schemes):")
    for name, templates in design.replica_affinity.items():
        print(f"  {name}: {', '.join(templates) or '(generalist)'}")

    print("\n=== what the U sizing means ===")
    for mpl in (2, 3):
        try:
            u = minimum_tuning_nodes_for_templates(
                REPORT_TEMPLATES, NODES, concurrency=mpl,
                divergence_speedup=designer.divergence_speedup,
            )
            print(f"MPL {mpl}: U = {u} absorbs all templates within the SLA")
        except ConfigurationError as exc:
            print(f"MPL {mpl}: {exc}")


if __name__ == "__main__":
    main()
