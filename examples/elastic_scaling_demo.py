#!/usr/bin/env python
"""Lightweight elastic scaling, live (the §7.5 scenario).

Deploys one tenant group, then "takes over" one tenant at time Y and
submits queries on its behalf almost continuously — a run-time deviation
from the history the group was planned on.  Thrifty's Tenant Activity
Monitor watches the group's RT-TTP; when it drops below P, the lightweight
scaler identifies the deviating tenant, bulk loads *only its data* onto a
fresh MPPDB (a fraction of the whole group's ~hours-long load), pins the
tenant there, and the group recovers.

Run:  python examples/elastic_scaling_demo.py
"""

from repro.analysis.report import ascii_series
from repro.config import EvaluationConfig, LogGenerationConfig
from repro.core.advisor import DeploymentAdvisor
from repro.core.master import DeploymentMaster
from repro.core.runtime import GroupRuntime
from repro.core.scaling import LightweightScaling
from repro.mppdb.provisioning import Provisioner
from repro.simulation.engine import Simulator
from repro.units import DAY, HOUR, MINUTE, format_duration
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator
from repro.workload.logs import QueryRecord, TenantLog
from repro.workload.queries import template_by_name

TAKEOVER_START = 6 * HOUR
HORIZON = 2 * DAY


def main() -> None:
    config = EvaluationConfig(
        num_tenants=120,
        logs=LogGenerationConfig(horizon_days=7, holiday_weekdays=0),
        seed=7,
    )
    library = SessionLogGenerator(config, sessions_per_size=6).generate()
    workload = MultiTenantLogComposer(config, library).compose()
    advice = DeploymentAdvisor(config).plan_from_workload(workload)
    group = max(advice.plan.groups, key=lambda g: len(g.tenants))
    over_tenant = group.placement.tenant_ids[0]
    print(
        f"group {group.group_name}: {len(group.tenants)} tenants, "
        f"{group.design.num_instances} x {group.design.parallelism}-node MPPDBs"
    )
    print(f"taking over tenant {over_tenant} at Y = {format_duration(TAKEOVER_START)}\n")

    sim = Simulator()
    provisioner = Provisioner(sim)
    deployed = DeploymentMaster(provisioner).deploy_group(group, instant=True)

    template = template_by_name("tpcds.q72")
    spec = workload.tenant(over_tenant)
    latency = template.dedicated_latency_s(spec.data_gb, spec.nodes_requested)
    hammer = [
        r for r in workload.tenant_log(over_tenant).records
        if r.submit_time_s < TAKEOVER_START
    ]
    t = TAKEOVER_START
    while t < HORIZON:
        hammer.append(QueryRecord(submit_time_s=t, latency_s=latency, template=template.name))
        t += latency * 1.05 + 0.5
    logs = {
        tid: (TenantLog(spec, hammer) if tid == over_tenant else workload.tenant_log(tid))
        for tid in group.placement.tenant_ids
    }

    d = workload.num_epochs(10.0)
    history = {
        tid: len(workload.activity_epochs(tid, 10.0)) / d
        for tid in group.placement.tenant_ids
    }
    runtime = GroupRuntime(
        deployed,
        logs,
        sim,
        provisioner,
        sla_fraction=config.sla_fraction,
        scaling=LightweightScaling(identification_epoch_s=10.0, historical_fraction=history),
        monitor_interval_s=5 * MINUTE,
    )
    report = runtime.run(until=HORIZON)

    print(ascii_series([v for __, v in report.rt_ttp_samples], label="RT-TTP (24h window)"))
    if report.scaling_actions:
        for action in report.scaling_actions:
            print(
                f"\nat t = {format_duration(action.time)}: {action.kind} scaling"
                f"\n  over-active tenant(s): {list(action.over_active)}"
                f"\n  new instance:          {action.instance_name}"
                f"\n  data bulk loaded:      {action.loaded_gb:.0f} GB"
                f"\n  time to ready:         "
                f"{format_duration(action.expected_ready_time - action.time)}"
            )
        group_gb = sum(t.data_gb for t in group.tenants)
        whole_load = provisioner.load_model.provision_seconds(
            group.design.parallelism, group_gb
        )
        print(
            f"\nfor comparison, replicating the whole group ({group_gb:.0f} GB) "
            f"would have taken {format_duration(whole_load)}"
        )
    else:
        print("\nno scaling action was needed (RT-TTP never dropped below P)")
    print(f"\nqueries completed: {len(report.sla)}")
    print(f"SLA met: {report.sla.fraction_met:.2%}")


if __name__ == "__main__":
    main()
