#!/usr/bin/env python
"""Tenant-side economics: why rent a share of an MPPDBaaS?

The paper's pitch (§1.1): companies with hundreds of GB to a few TB "can
enjoy high-end parallel analytics at a cheap cost" because they pay for
requested nodes x active usage, while the provider consolidates them onto
shared hardware.  This example prices a month of service for tenants of
each size class and compares against renting the same nodes dedicated —
including a share of the MPPDB license (the paper quotes ~USD 15K per core
for a commercial product).

Run:  python examples/tenant_economics.py
"""

from repro.analysis.report import format_table
from repro.config import EvaluationConfig, LogGenerationConfig
from repro.core.pricing import PricingModel
from repro.units import HOUR
from repro.workload.composer import MultiTenantLogComposer
from repro.workload.generator import SessionLogGenerator

#: Rough monthly license amortization per node for a commercial MPPDB
#: (USD 15K/core x 8 cores, written off over 36 months).
LICENSE_PER_NODE_MONTH = 15_000 * 8 / 36


def main() -> None:
    config = EvaluationConfig(
        num_tenants=150,
        logs=LogGenerationConfig(horizon_days=28, holiday_weekdays=2),
        seed=3,
    )
    library = SessionLogGenerator(config, sessions_per_size=6).generate()
    workload = MultiTenantLogComposer(config, library).compose()
    pricing = PricingModel(node_hour_rate=4.0)
    period_hours = workload.horizon_s / HOUR

    by_size: dict[int, list] = {}
    for tenant in workload.tenants:
        by_size.setdefault(tenant.nodes_requested, []).append(tenant)

    rows = []
    for size in sorted(by_size):
        tenants = by_size[size]
        invoices = [pricing.invoice(workload.tenant_log(t.tenant_id)) for t in tenants]
        mean_bill = sum(i.amount for i in invoices) / len(invoices)
        mean_hours = sum(i.active_hours for i in invoices) / len(invoices)
        dedicated = pricing.dedicated_cost(size, period_hours)
        license_cost = size * LICENSE_PER_NODE_MONTH
        rows.append(
            [
                f"{size}-node / {size * 100}GB",
                len(tenants),
                round(mean_hours, 1),
                f"${mean_bill:,.0f}",
                f"${dedicated:,.0f}",
                f"${license_cost:,.0f}",
                f"{dedicated / mean_bill:,.0f}x" if mean_bill else "-",
            ]
        )
    print(
        format_table(
            [
                "tenant class",
                "tenants",
                "active_h",
                "MPPDBaaS bill",
                "dedicated nodes",
                "+license share",
                "savings",
            ],
            rows,
            title=f"A {period_hours / 24:.0f}-day service period, ${pricing.node_hour_rate}/node-hour",
        )
    )
    print(
        "\nReading: tenants are active ~10% of the time, so usage-based"
        "\nMPPDBaaS pricing beats renting dedicated nodes by an order of"
        "\nmagnitude before even counting the MPPDB license share."
    )


if __name__ == "__main__":
    main()
