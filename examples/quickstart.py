#!/usr/bin/env python
"""Quickstart: consolidate 200 MPPDB tenants and replay a day of queries.

Walks the whole Thrifty pipeline end to end:

1. Generate tenant workloads with the paper's two-step methodology
   (session-log collection against simulated dedicated MPPDBs, then
   multi-tenant composition across time zones).
2. Ask the Deployment Advisor for a plan (2-step tenant grouping + TDD
   cluster design with replication factor R = 3).
3. Deploy on a simulated machine pool and replay the first day of the
   composed logs through the Algorithm 1 query router.
4. Report consolidation effectiveness and SLA outcomes.

Run:  python examples/quickstart.py
"""

from repro import (
    EvaluationConfig,
    LogGenerationConfig,
    MultiTenantLogComposer,
    SessionLogGenerator,
    ThriftyService,
)
from repro.units import DAY, format_duration


def main() -> None:
    config = EvaluationConfig(
        num_tenants=200,
        logs=LogGenerationConfig(horizon_days=7, holiday_weekdays=0),
        seed=42,
    )

    print("=== 1. generate tenant workloads (§7.1 methodology) ===")
    library = SessionLogGenerator(config, sessions_per_size=8).generate()
    workload = MultiTenantLogComposer(config, library).compose()
    requested = workload.total_nodes_requested()
    print(f"tenants: {len(workload)}, requesting {requested} nodes total")
    print(f"horizon: {format_duration(workload.horizon_s)}")

    from repro.analysis import validate_workload

    report = validate_workload(workload)
    print(
        f"sanity: active ratio {report.active_ratio_unconditional:.1%}, "
        f"{'ok' if report.ok else 'warnings: ' + '; '.join(report.warnings)}"
    )

    print("\n=== 2. plan the deployment (grouping + TDD) ===")
    service = ThriftyService(config)
    advice = service.deploy(workload)
    plan = advice.plan
    print(f"tenant groups: {len(plan)}")
    print(f"nodes used:    {plan.total_nodes_used} of {requested} requested")
    print(f"effectiveness: {plan.consolidation_effectiveness:.1%} of nodes saved")
    print(f"replication:   every tenant on {config.replication_factor} MPPDBs")
    largest = max(plan.groups, key=lambda g: len(g.tenants))
    print(
        f"largest group: {len(largest.tenants)} tenants sharing "
        f"{largest.design.num_instances} x {largest.design.parallelism}-node MPPDBs"
    )

    print("\n=== 3. replay one day of queries ===")
    report = service.replay(until=1 * DAY)
    sla = report.sla
    print(f"queries completed: {len(sla)}")
    print(f"SLA met:           {sla.fraction_met:.2%} of queries")
    print(f"mean normalized:   {sla.mean_normalized():.3f} (1.0 = isolated latency)")
    print(f"scaling actions:   {len(report.scaling_actions())}")

    print("\n=== 4. tenant economics ===")
    invoices = service.invoices()
    sample = invoices[0]
    print(
        f"tenant {sample.tenant_id}: {sample.nodes_requested}-node MPPDB, "
        f"{sample.active_hours:.1f} active hours -> ${sample.amount:.2f}"
    )


if __name__ == "__main__":
    main()
