"""``repro.bench`` — the performance-bench harness behind ``thrifty bench``.

Registers the repo's benchmark experiments as named *scenarios*
(``headline``, ``fig7``, ``replay``), runs them at a chosen
:class:`~repro.analysis.sweeps.BenchScale` (``ci`` / ``smoke`` /
``default`` / ``large``) with an optional :mod:`repro.parallel` worker
pool, emits ``BENCH_<scenario>.json`` records (wall time, simulated-epoch
throughput, solver time, observability overhead, worker count, git SHA),
and gates them against the committed ``benchmarks/baseline/*.json`` with
a configurable regression threshold — non-zero exit on a >15% slowdown
by default.  See ``docs/PARALLELISM.md`` for the workflow.
"""

from __future__ import annotations

from .harness import (
    DEFAULT_REGRESSION_THRESHOLD,
    GATED_METRICS,
    BenchRecord,
    RegressionFinding,
    baseline_path,
    compare_records,
    default_baseline_dir,
    git_sha,
    load_baseline,
    run_scenarios,
    update_baselines,
    write_records,
)
from .scenarios import (
    BENCH_SCALES,
    BenchScenario,
    ScenarioResult,
    all_scenarios,
    get_scenario,
    register_scenario,
    resolve_scale,
    scenario_names,
)

__all__ = [
    "ScenarioResult",
    "BenchScenario",
    "register_scenario",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
    "BENCH_SCALES",
    "resolve_scale",
    "BenchRecord",
    "RegressionFinding",
    "GATED_METRICS",
    "DEFAULT_REGRESSION_THRESHOLD",
    "git_sha",
    "run_scenarios",
    "write_records",
    "baseline_path",
    "load_baseline",
    "compare_records",
    "update_baselines",
    "default_baseline_dir",
]
