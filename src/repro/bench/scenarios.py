"""The registered benchmark scenarios and the scales they run at.

A scenario is a named experiment the harness can run, time, and gate:
it returns a :class:`ScenarioResult` whose ``metrics`` carry the numbers
the regression gate understands (``wall_s`` lower-is-better,
``epochs_per_s`` higher-is-better) plus informational extras, and whose
``detail`` carries the row-level data a human wants in ``BENCH_*.json``.

Three scenarios cover the stack end to end:

* ``headline`` — the abstract's claim: full pipeline (log generation,
  composition, grouping, TDD design) at the scale's default parameters;
  reports consolidation effectiveness and the fraction of requested
  nodes used.
* ``fig7`` — the §7.3 epoch-size sweep run through the
  :mod:`repro.parallel` fabric (one shard per sweep point,
  ``--workers``-sized pool); solver time is the per-shard
  ``perf_counter`` aggregate, never pool wall time.
* ``replay`` — epoch simulation: a replay measured with the null
  observer and again fully instrumented (the ``obs_overhead`` metric),
  plus — with workers — Monte-Carlo replicas sharded over the pool.

Scales mirror the benchmark profiles: ``ci`` (seconds, for the
bench-smoke job), ``smoke``, ``default`` (the committed numbers), and
``large``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

from ..analysis.sweeps import DEFAULT_SCALE, SMOKE_SCALE, BenchScale, GroupingRow, build_workload
from ..core.advisor import DeploymentAdvisor
from ..core.service import ThriftyService
from ..errors import BenchError
from ..obs import MemorySink, Observer
from ..parallel.runner import ProcessPoolRunner
from ..parallel.tasks import run_replicas, run_sweep
from ..units import DAY
from ..workload.activity import ActivityMatrix

__all__ = [
    "ScenarioResult",
    "BenchScenario",
    "register_scenario",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
    "BENCH_SCALES",
    "resolve_scale",
]

#: The scales the harness accepts (``thrifty bench --scale``).
BENCH_SCALES: Dict[str, BenchScale] = {
    "ci": BenchScale(num_tenants=60, horizon_days=5, holiday_weekdays=0, sessions_per_size=4),
    "smoke": SMOKE_SCALE,
    "default": DEFAULT_SCALE,
    "large": BenchScale(num_tenants=2000, horizon_days=21, holiday_weekdays=1, sessions_per_size=24),
}


def resolve_scale(name: str) -> BenchScale:
    """The :class:`BenchScale` registered under ``name``."""
    try:
        return BENCH_SCALES[name]
    except KeyError:
        raise BenchError(
            f"unknown bench scale {name!r}; options: {sorted(BENCH_SCALES)}"
        ) from None


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario run: gateable metrics plus human-facing detail."""

    name: str
    wall_s: float
    metrics: Dict[str, float]
    detail: Dict[str, object]


@dataclass(frozen=True)
class BenchScenario:
    """A named, registered benchmark scenario."""

    name: str
    description: str
    fn: Callable[[BenchScale, int], ScenarioResult]

    def run(self, scale: BenchScale, workers: int) -> ScenarioResult:
        """Execute the scenario at ``scale`` with a ``workers``-wide pool."""
        return self.fn(scale, workers)


_SCENARIOS: Dict[str, BenchScenario] = {}


def register_scenario(
    name: str, description: str
) -> Callable[[Callable[[BenchScale, int], ScenarioResult]], Callable[[BenchScale, int], ScenarioResult]]:
    """Register a scenario function under ``name``."""

    def decorate(
        fn: Callable[[BenchScale, int], ScenarioResult]
    ) -> Callable[[BenchScale, int], ScenarioResult]:
        if name in _SCENARIOS:
            raise BenchError(f"duplicate bench scenario {name!r}")
        _SCENARIOS[name] = BenchScenario(name=name, description=description, fn=fn)
        return fn

    return decorate


def all_scenarios() -> List[BenchScenario]:
    """Every registered scenario, sorted by name."""
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]


def scenario_names() -> List[str]:
    """Sorted registered scenario names."""
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> BenchScenario:
    """The scenario registered under ``name``."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise BenchError(
            f"unknown bench scenario {name!r}; options: {scenario_names()}"
        ) from None


# -- headline --------------------------------------------------------------


@register_scenario("headline", "full pipeline: generation, composition, grouping, TDD design")
def _headline(scale: BenchScale, workers: int) -> ScenarioResult:
    config = scale.config()
    started = time.perf_counter()
    workload = build_workload(config, scale.sessions_per_size)
    advice = DeploymentAdvisor(config).plan_from_workload(workload)
    matrix = ActivityMatrix.from_workload(workload, config.epoch_size_s)
    wall = time.perf_counter() - started
    plan = advice.plan
    used_fraction = plan.total_nodes_used / plan.total_nodes_requested
    return ScenarioResult(
        name="headline",
        wall_s=wall,
        metrics={
            "wall_s": wall,
            "epochs_per_s": matrix.num_epochs / wall,
            "solver_s": advice.grouping.solve_seconds,
            "effectiveness": plan.consolidation_effectiveness,
            "used_fraction": used_fraction,
        },
        detail={
            "tenants": len(workload),
            "excluded": len(advice.excluded),
            "tenant_groups": len(plan),
            "nodes_requested": plan.total_nodes_requested,
            "nodes_used": plan.total_nodes_used,
            "num_epochs": matrix.num_epochs,
            "grouping": advice.grouping.solver,
        },
    )


# -- fig7 (epoch-size sweep through the fabric) ----------------------------

#: Epoch sizes per scale: CI takes three points, everything else the
#: full Figure 7.1 ladder.
_FIG7_EPOCHS_FULL: Tuple[float, ...] = (0.5, 1.0, 3.0, 10.0, 30.0, 90.0, 600.0, 1800.0)
_FIG7_EPOCHS_CI: Tuple[float, ...] = (1.0, 30.0, 600.0)


def _fig7_scale(scale: BenchScale) -> BenchScale:
    """The reduced scale the committed Figure 7.1 bench also uses."""
    return replace(scale, num_tenants=max(50, scale.num_tenants // 2))


@register_scenario("fig7", "Figure 7.1 epoch-size sweep, sharded over the parallel fabric")
def _fig7(scale: BenchScale, workers: int) -> ScenarioResult:
    small = _fig7_scale(scale)
    values = _FIG7_EPOCHS_CI if scale.num_tenants <= 100 else _FIG7_EPOCHS_FULL
    runner = ProcessPoolRunner(max_workers=workers)
    started = time.perf_counter()
    merged = run_sweep("epoch_size_s", values, small, runner)
    wall = time.perf_counter() - started
    rows: List[GroupingRow] = list(merged.values)
    epochs = float(sum(int(r.extras.get("num_epochs", 0)) for r in rows))
    solver_s = merged.timings.get("two_step_s", 0.0) + merged.timings.get("ffd_s", 0.0)
    return ScenarioResult(
        name="fig7",
        wall_s=wall,
        metrics={
            "wall_s": wall,
            "epochs_per_s": epochs / wall,
            "solver_s": solver_s,
            "workload_s": merged.timings.get("workload_s", 0.0),
            "advantage_points_max": max(r.advantage_points for r in rows),
        },
        detail={
            "tenants": small.num_tenants,
            "epoch_sizes": list(values),
            "shards": merged.shard_count,
            "attempts": merged.attempts,
            "rows": [r.as_list() for r in rows],
        },
    )


# -- replay (epoch simulation + observability overhead) --------------------


def _replay_scale(scale: BenchScale) -> BenchScale:
    """A replay-sized cut of the scale (replay cost ≫ grouping cost)."""
    return replace(
        scale,
        num_tenants=max(30, scale.num_tenants // 10),
        horizon_days=min(scale.horizon_days, 3),
        holiday_weekdays=0,
        sessions_per_size=min(scale.sessions_per_size, 4),
    )


def _replay_once(scale: BenchScale, observer: "Observer | None") -> float:
    """Wall seconds for one one-day replay (deploy excluded)."""
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    service = ThriftyService(config, observer=observer)
    service.deploy(workload)
    started = time.perf_counter()
    service.replay(until=1.0 * DAY)
    return time.perf_counter() - started


@register_scenario("replay", "epoch simulation: replay throughput, obs overhead, MC replicas")
def _replay(scale: BenchScale, workers: int) -> ScenarioResult:
    small = _replay_scale(scale)
    started = time.perf_counter()
    _replay_once(small, observer=None)  # warm caches, untimed baseline
    t_null = _replay_once(small, observer=None)
    t_obs = _replay_once(small, observer=Observer(MemorySink()))
    sim_epochs = (1.0 * DAY) / small.config().epoch_size_s
    metrics: Dict[str, float] = {
        "epochs_per_s": sim_epochs / t_null,
        "obs_overhead": t_obs / t_null - 1.0,
        "replay_s": t_null,
    }
    detail: Dict[str, object] = {
        "tenants": small.num_tenants,
        "sim_epochs": sim_epochs,
    }
    if workers > 0:
        replicas = max(2, workers)
        runner = ProcessPoolRunner(max_workers=workers)
        t0 = time.perf_counter()
        merged = run_replicas(small, replicas, runner=runner, replay_days=1.0)
        mc_wall = time.perf_counter() - t0
        metrics["mc_epochs_per_s"] = replicas * sim_epochs / mc_wall
        detail["mc_replicas"] = replicas
        detail["mc_wall_s"] = mc_wall
        detail["mc_sla_fraction_met"] = [
            summary["sla_fraction_met"] for summary in merged.values
        ]
    wall = time.perf_counter() - started
    metrics["wall_s"] = wall
    return ScenarioResult(name="replay", wall_s=wall, metrics=metrics, detail=detail)
