"""Bench records, ``BENCH_*.json`` emission, and the regression gate.

The harness turns scenario runs into :class:`BenchRecord` files
(``BENCH_<scenario>.json`` — wall time, simulated-epoch throughput,
solver time, observability overhead, worker count, git SHA) and compares
them against the committed ``benchmarks/baseline/<scenario>_<scale>.json``
files.  Two metrics are gated:

* ``wall_s`` — regression when measured > baseline × (1 + threshold);
* ``epochs_per_s`` — regression when measured < baseline × (1 − threshold).

Everything else in ``metrics`` is informational.  A missing baseline is a
warning, never a failure, so new scenarios can land before their first
baseline refresh (``thrifty bench --update-baseline``).
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import BenchError
from .scenarios import BenchScenario, get_scenario, resolve_scale

__all__ = [
    "BenchRecord",
    "RegressionFinding",
    "GATED_METRICS",
    "DEFAULT_REGRESSION_THRESHOLD",
    "git_sha",
    "run_scenarios",
    "write_records",
    "baseline_path",
    "load_baseline",
    "compare_records",
    "update_baselines",
    "default_baseline_dir",
]

#: Gated metrics and their good direction.
GATED_METRICS: Dict[str, str] = {"wall_s": "lower", "epochs_per_s": "higher"}

#: Default ``--threshold``: fail on >15% slowdown.
DEFAULT_REGRESSION_THRESHOLD = 0.15


@dataclass(frozen=True)
class BenchRecord:
    """One scenario run, as persisted in ``BENCH_<scenario>.json``."""

    scenario: str
    scale: str
    workers: int
    git_sha: str
    wall_s: float
    metrics: Dict[str, float]
    detail: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchRecord":
        """Parse a record dict (e.g. a loaded baseline file)."""
        try:
            return cls(
                scenario=str(data["scenario"]),
                scale=str(data["scale"]),
                workers=int(data["workers"]),  # type: ignore[call-overload]
                git_sha=str(data["git_sha"]),
                wall_s=float(data["wall_s"]),  # type: ignore[arg-type]
                metrics={k: float(v) for k, v in dict(data["metrics"]).items()},  # type: ignore[call-overload]
                detail=dict(data.get("detail", {})),  # type: ignore[call-overload]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchError(f"malformed bench record: {exc}") from exc


@dataclass(frozen=True)
class RegressionFinding:
    """One gated metric that moved past the threshold."""

    scenario: str
    scale: str
    metric: str
    measured: float
    baseline: float
    threshold: float

    @property
    def ratio(self) -> float:
        """measured / baseline."""
        return self.measured / self.baseline

    def message(self) -> str:
        """Human-readable one-liner for the CLI report."""
        direction = GATED_METRICS[self.metric]
        verb = "rose" if direction == "lower" else "fell"
        return (
            f"{self.scenario}[{self.scale}] {self.metric} {verb} to "
            f"{self.measured:.4g} vs baseline {self.baseline:.4g} "
            f"({self.ratio:.2f}x, threshold {self.threshold:.0%})"
        )


def git_sha() -> str:
    """Short git SHA of the working tree, or ``"unknown"`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() or "unknown"


def run_scenarios(
    names: Sequence[str], scale_name: str, workers: int, repeat: int = 1
) -> List[BenchRecord]:
    """Run the named scenarios at ``scale_name`` and record each one.

    With ``repeat > 1`` each scenario runs that many times and the fastest
    run (by ``wall_s``) is recorded — best-of-N damps scheduler and cache
    jitter, which on sub-second scenarios otherwise exceeds the regression
    threshold.  Deterministic metrics are identical across repeats, so only
    the timing panels differ between runs.
    """
    if repeat < 1:
        raise BenchError(f"repeat must be >= 1, got {repeat!r}")
    scale = resolve_scale(scale_name)
    scenarios: List[BenchScenario] = [get_scenario(name) for name in names]
    sha = git_sha()
    records: List[BenchRecord] = []
    for scenario in scenarios:
        best = scenario.run(scale, workers)
        for _ in range(repeat - 1):
            result = scenario.run(scale, workers)
            if result.wall_s < best.wall_s:
                best = result
        records.append(
            BenchRecord(
                scenario=best.name,
                scale=scale_name,
                workers=workers,
                git_sha=sha,
                wall_s=best.wall_s,
                metrics=dict(best.metrics),
                detail=dict(best.detail),
            )
        )
    return records


def write_records(records: Sequence[BenchRecord], out_dir: Path) -> List[Path]:
    """Write ``BENCH_<scenario>.json`` for each record; return the paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for record in records:
        path = out_dir / f"BENCH_{record.scenario}.json"
        path.write_text(json.dumps(record.as_dict(), indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def default_baseline_dir() -> Path:
    """The repo's committed baseline directory (``benchmarks/baseline``)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baseline"


def baseline_path(baseline_dir: Path, scenario: str, scale: str) -> Path:
    """Where the committed baseline for (scenario, scale) lives."""
    return baseline_dir / f"{scenario}_{scale}.json"


def load_baseline(baseline_dir: Path, scenario: str, scale: str) -> Optional[BenchRecord]:
    """The committed baseline record, or ``None`` if not yet committed."""
    path = baseline_path(baseline_dir, scenario, scale)
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BenchError(f"corrupt baseline {path}: {exc}") from exc
    return BenchRecord.from_dict(data)


def compare_records(
    records: Sequence[BenchRecord],
    baseline_dir: Path,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> tuple[List[RegressionFinding], List[str]]:
    """Gate records against baselines.

    Returns ``(regressions, warnings)``: regressions are gated metrics past
    the threshold; warnings note records with no committed baseline (those
    never fail the gate).
    """
    if threshold <= 0:
        raise BenchError(f"threshold must be positive, got {threshold!r}")
    findings: List[RegressionFinding] = []
    warnings: List[str] = []
    for record in records:
        baseline = load_baseline(baseline_dir, record.scenario, record.scale)
        if baseline is None:
            warnings.append(
                f"no baseline for {record.scenario}[{record.scale}] "
                f"(expected {baseline_path(baseline_dir, record.scenario, record.scale)}); "
                "run with --update-baseline to create it"
            )
            continue
        for metric, direction in GATED_METRICS.items():
            measured = record.metrics.get(metric)
            base = baseline.metrics.get(metric)
            if measured is None or base is None or base <= 0:
                continue
            ratio = measured / base
            slow = direction == "lower" and ratio > 1.0 + threshold
            weak = direction == "higher" and ratio < 1.0 - threshold
            if slow or weak:
                findings.append(
                    RegressionFinding(
                        scenario=record.scenario,
                        scale=record.scale,
                        metric=metric,
                        measured=measured,
                        baseline=base,
                        threshold=threshold,
                    )
                )
    return findings, warnings


def update_baselines(records: Sequence[BenchRecord], baseline_dir: Path) -> List[Path]:
    """(Re)write the committed baseline for each record; return the paths."""
    baseline_dir.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for record in records:
        path = baseline_path(baseline_dir, record.scenario, record.scale)
        path.write_text(json.dumps(record.as_dict(), indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths
