"""Exception hierarchy for the Thrifty reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors.  The
subclasses mirror the layers of the system: configuration, workload
generation, the MPPDB simulator, optimization/packing, and the run-time
service components.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "WorkloadError",
    "SimulationError",
    "ClusterError",
    "MPPDBError",
    "TenantNotHostedError",
    "InstanceNotReadyError",
    "CapacityError",
    "PackingError",
    "InfeasiblePackingError",
    "RoutingError",
    "NoHealthyInstanceError",
    "DeploymentError",
    "ScalingError",
    "FaultError",
    "RetriesExhaustedError",
    "FailoverDeadlineError",
    "ParallelError",
    "ShardFailedError",
    "BenchError",
    "BenchRegressionError",
    "LintError",
    "AnalysisError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A parameter value is out of its documented range or inconsistent."""


class WorkloadError(ReproError):
    """Tenant log generation or composition failed."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. time travel)."""


class ClusterError(ReproError):
    """Machine-pool level failure (allocation, release, failure handling)."""


class MPPDBError(ReproError):
    """MPPDB simulator level failure."""


class TenantNotHostedError(MPPDBError):
    """A query was submitted for a tenant whose data is not on the instance."""


class InstanceNotReadyError(MPPDBError):
    """An operation requires a started and loaded MPPDB instance."""


class CapacityError(ClusterError):
    """The machine pool cannot satisfy an allocation request."""


class PackingError(ReproError):
    """Tenant-grouping / bin-packing level failure."""


class InfeasiblePackingError(PackingError):
    """A tenant cannot satisfy the fuzzy-capacity constraint even alone.

    Raised when a single tenant is active in more than ``(100 - P)%`` of
    epochs at replication factor ``R`` — the paper excludes such always-on
    tenants from consolidation (Chapter 3, footnote 1); the caller is
    expected to divert them to a dedicated service plan instead.
    """


class RoutingError(ReproError):
    """The query router was asked to route against an invalid deployment."""


class NoHealthyInstanceError(RoutingError):
    """Every instance hosting the tenant is degraded, down, or provisioning.

    Distinct from the base :class:`RoutingError` (tenant not deployed at
    all) so the fault-tolerance plane can queue the query until a replica
    recovers instead of treating it as a configuration error.
    """


class DeploymentError(ReproError):
    """Deployment advisor / master level failure."""


class ScalingError(ReproError):
    """Elastic-scaling level failure."""


class FaultError(ReproError):
    """A query could not be completed despite fault handling."""


class RetriesExhaustedError(FaultError):
    """A query was aborted by node failures more times than the retry cap."""


class FailoverDeadlineError(FaultError):
    """A query queued for a healthy replica ran out its graceful-degradation deadline."""


class ParallelError(ReproError):
    """The :mod:`repro.parallel` execution fabric was misused or failed."""


class ShardFailedError(ParallelError):
    """A shard exhausted its retry budget (crash, timeout, or task error).

    Carries the :class:`~repro.parallel.shards.ShardSpec` that failed as
    ``spec`` (self-describing, so the caller can replay exactly the work
    that failed) and the number of attempts made as ``attempts``.
    """

    def __init__(self, message: str, spec: object = None, attempts: int = 0) -> None:
        super().__init__(message)
        self.spec = spec
        self.attempts = attempts


class BenchError(ReproError):
    """The :mod:`repro.bench` benchmark harness was misused."""


class BenchRegressionError(BenchError):
    """A benchmark scenario regressed beyond the configured threshold."""


class LintError(ReproError):
    """The :mod:`repro.tools.lint` static-analysis pass was misused."""


class AnalysisError(ReproError):
    """The :mod:`repro.tools.analyze` whole-program analyzer was misused."""


class ObservabilityError(ReproError):
    """The :mod:`repro.obs` metrics/tracing layer was used incorrectly."""
