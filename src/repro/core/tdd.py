"""Tenant-Driven Design: cluster design and tenant placement (Ch. 4.1–4.2).

For one tenant group of ``T`` tenants with node requests ``n_1 >= n_2 >=
... >= n_T``, TDD divides the group's machine nodes into ``A`` node groups:

* groups ``G_1 .. G_{A-1}`` each get ``n_1`` nodes (the largest request);
* the special group ``G_0`` — the *tuning MPPDB* — gets ``U`` nodes, with
  ``n_1 <= U <= N - (A - 1) n_1`` (Chapter 6 raises ``U`` to absorb
  overflow concurrency; the default is ``U = n_1``, as in §7.2).

Each node group runs one MPPDB instance, and *every* instance hosts *every*
tenant of the group — Property 1: the design enforces a replication factor
of ``A`` per tenant.  After tenant grouping, ``A = R`` (Chapter 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import DeploymentError
from ..workload.tenant import TenantSpec

__all__ = ["ClusterDesign", "TenantPlacement", "design_for_group"]


@dataclass(frozen=True)
class ClusterDesign:
    """How one tenant group's nodes are arranged into MPPDB instances."""

    group_name: str
    num_instances: int
    parallelism: int
    tuning_parallelism: int

    def __post_init__(self) -> None:
        if self.num_instances < 1:
            raise DeploymentError("a cluster design needs at least one instance (A >= 1)")
        if self.parallelism < 1:
            raise DeploymentError("parallelism must be >= 1")
        if self.tuning_parallelism < self.parallelism:
            raise DeploymentError(
                f"U = {self.tuning_parallelism} must be >= n_1 = {self.parallelism}"
            )

    @property
    def total_nodes(self) -> int:
        """Nodes consumed by this design: ``U + (A - 1) * n_1``."""
        return self.tuning_parallelism + (self.num_instances - 1) * self.parallelism

    def instance_parallelism(self, index: int) -> int:
        """Node count of instance ``index`` (index 0 is the tuning MPPDB)."""
        if not (0 <= index < self.num_instances):
            raise DeploymentError(
                f"instance index {index} out of range [0, {self.num_instances})"
            )
        return self.tuning_parallelism if index == 0 else self.parallelism

    def instance_names(self) -> list[str]:
        """Stable instance names, tuning MPPDB first."""
        return [f"{self.group_name}/mppdb{i}" for i in range(self.num_instances)]


@dataclass(frozen=True)
class TenantPlacement:
    """Which tenants go on which instances — under TDD, all on all."""

    group_name: str
    tenant_ids: tuple[int, ...]
    instance_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.tenant_ids:
            raise DeploymentError("a placement needs at least one tenant")
        if not self.instance_names:
            raise DeploymentError("a placement needs at least one instance")
        if len(set(self.tenant_ids)) != len(self.tenant_ids):
            raise DeploymentError("tenant ids must be unique")

    @property
    def replication_factor(self) -> int:
        """Property 1: every tenant is replicated on all ``A`` instances."""
        return len(self.instance_names)

    def instances_of(self, tenant_id: int) -> tuple[str, ...]:
        """Instances hosting a tenant (all of them, by design)."""
        if tenant_id not in self.tenant_ids:
            raise DeploymentError(f"tenant {tenant_id!r} is not in group {self.group_name!r}")
        return self.instance_names


def design_for_group(
    group_name: str,
    tenants: Sequence[TenantSpec],
    num_instances: int,
    tuning_parallelism: Optional[int] = None,
) -> tuple[ClusterDesign, TenantPlacement]:
    """Apply TDD to one tenant group.

    ``num_instances`` is ``A`` (after grouping, ``A = R``);
    ``tuning_parallelism`` is ``U`` (default ``n_1``).  The upper bound on
    ``U`` is ``N - (A - 1) n_1`` — raising ``U`` beyond it would use more
    nodes than the tenants requested in total, defeating consolidation.
    """
    if not tenants:
        raise DeploymentError("cannot design a cluster for an empty tenant group")
    largest = max(t.nodes_requested for t in tenants)
    total_requested = sum(t.nodes_requested for t in tenants)
    if tuning_parallelism is None:
        tuning_parallelism = largest
    upper = max(largest, total_requested - (num_instances - 1) * largest)
    if tuning_parallelism > upper:
        raise DeploymentError(
            f"U = {tuning_parallelism} exceeds its bound N - (A-1)n_1 = {upper}"
        )
    design = ClusterDesign(
        group_name=group_name,
        num_instances=num_instances,
        parallelism=largest,
        tuning_parallelism=tuning_parallelism,
    )
    placement = TenantPlacement(
        group_name=group_name,
        tenant_ids=tuple(t.tenant_id for t in tenants),
        instance_names=tuple(design.instance_names()),
    )
    return design, placement
