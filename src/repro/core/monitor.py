"""The Tenant Activity Monitor (Chapter 3, component (a); Chapter 5.1).

"The Tenant Activity Monitor automatically collects the query logs of the
deployed MPPDBs, derives the tenant activities, and summarizes the query
characteristics of individual tenants."

Per tenant group it tracks the concurrent-active-tenant count as a
piecewise-constant signal (queries starting/finishing drive the
transitions, using the strong notion of activity) and exposes:

* **RT-TTP** — the run-time TTP over a sliding window (default 24 h): the
  fraction of window time with at most ``R`` concurrently active tenants.
  Elastic scaling triggers when it drops below ``P``.
* Per-tenant busy intervals within a window, discretized into
  :class:`~repro.workload.activity.ActivityItem` s — the input of the
  over-active-tenant identification algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import DeploymentError
from ..simulation.metrics import StepSeries
from ..units import DAY
from ..workload.activity import ActivityItem, active_epoch_indices
from ..workload.logs import merge_intervals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.observer import Observer

__all__ = ["GroupActivityMonitor", "TenantActivityMonitor"]


class GroupActivityMonitor:
    """Live activity tracking for one tenant group."""

    def __init__(self, group_name: str, replication_factor: int, start_time: float = 0.0) -> None:
        if replication_factor < 1:
            raise DeploymentError("replication_factor must be >= 1")
        self.group_name = group_name
        self.replication_factor = replication_factor
        self._concurrency = StepSeries(0.0, start_time)
        self._running: dict[int, int] = {}
        self._open_since: dict[int, float] = {}
        self._closed: dict[int, list[tuple[float, float]]] = {}
        self._nodes_of: dict[int, int] = {}
        self._excluded: set[int] = set()
        self._start_time = start_time
        self._observer: Optional["Observer"] = None

    @property
    def concurrency(self) -> StepSeries:
        """The concurrent-active-tenant signal."""
        return self._concurrency

    def observe_with(self, observer: "Observer") -> None:
        """Mirror every concurrency change onto the observer's gauge."""
        self._observer = observer

    def _sample_concurrency(self, time: float) -> None:
        observer = self._observer
        if observer is not None and observer.enabled:
            observer.concurrent_active.labels(group=self.group_name).set(
                time, self._concurrency.value_at_end()
            )

    def register_tenant(self, tenant_id: int, nodes_requested: int) -> None:
        """Declare a tenant of this group (needed for activity items)."""
        self._nodes_of[tenant_id] = nodes_requested
        self._closed.setdefault(tenant_id, [])

    def exclude_tenant(self, tenant_id: int, time: float) -> None:
        """Stop counting a tenant toward the group's concurrency.

        After lightweight elastic scaling "the tenant-group excluded all
        the activities of the removed tenant" (§7.5), which is what lets
        its RT-TTP recover above ``P``.  If the tenant is active right
        now, its open interval closes at ``time``.
        """
        if tenant_id not in self._nodes_of:
            raise DeploymentError(f"tenant {tenant_id} is not registered with {self.group_name!r}")
        if tenant_id in self._excluded:
            return
        self._excluded.add(tenant_id)
        if tenant_id in self._running:
            del self._running[tenant_id]
            started = self._open_since.pop(tenant_id)
            self._closed[tenant_id].append((started, time))
            self._concurrency.increment(time, -1.0)
            self._sample_concurrency(time)

    @property
    def excluded_tenants(self) -> set[int]:
        """Tenants no longer counted toward group concurrency (copy)."""
        return set(self._excluded)

    def on_query_start(self, tenant_id: int, time: float) -> None:
        """A query of the tenant started somewhere in the group."""
        if tenant_id not in self._nodes_of:
            raise DeploymentError(f"tenant {tenant_id} is not registered with {self.group_name!r}")
        if tenant_id in self._excluded:
            return
        count = self._running.get(tenant_id, 0)
        self._running[tenant_id] = count + 1
        if count == 0:
            self._open_since[tenant_id] = time
            self._concurrency.increment(time, 1.0)
            self._sample_concurrency(time)

    def on_query_finish(self, tenant_id: int, time: float) -> None:
        """A query of the tenant finished."""
        if tenant_id in self._excluded:
            return
        count = self._running.get(tenant_id, 0)
        if count <= 0:
            raise DeploymentError(f"tenant {tenant_id} has no running queries to finish")
        if count == 1:
            del self._running[tenant_id]
            started = self._open_since.pop(tenant_id)
            self._closed[tenant_id].append((started, time))
            self._concurrency.increment(time, -1.0)
            self._sample_concurrency(time)
        else:
            self._running[tenant_id] = count - 1

    def active_tenants(self) -> set[int]:
        """Tenants with at least one query currently running."""
        return set(self._running)

    def rt_ttp(self, now: float, window_s: float = DAY) -> float:
        """Run-time TTP: fraction of the past window with <= R active tenants."""
        start = max(self._start_time, now - window_s)
        if now <= start:
            return 1.0
        return self._concurrency.fraction_time_at_most(self.replication_factor, start, now)

    def max_concurrent(self, now: float, window_s: float = DAY) -> int:
        """Maximum concurrent-active count over the past window."""
        start = max(self._start_time, now - window_s)
        if now <= start:
            return 0
        return int(self._concurrency.max_over(start, now))

    def tenant_busy_intervals(self, tenant_id: int, start: float, end: float) -> list[tuple[float, float]]:
        """A tenant's merged busy intervals clipped to ``[start, end)``."""
        if tenant_id not in self._nodes_of:
            raise DeploymentError(f"tenant {tenant_id} is not registered with {self.group_name!r}")
        intervals = list(self._closed[tenant_id])
        if tenant_id in self._open_since:
            intervals.append((self._open_since[tenant_id], end))
        clipped = [
            (max(s, start), min(e, end))
            for s, e in intervals
            if e > start and s < end
        ]
        return merge_intervals(clipped)

    def activity_items(self, start: float, end: float, epoch_size: float) -> list[ActivityItem]:
        """Discretized recent activity of all registered tenants.

        Epoch indices are relative to ``start`` — the input format of the
        over-active-tenant identification algorithm (Chapter 5.1).
        """
        items = []
        for tenant_id, nodes in sorted(self._nodes_of.items()):
            if tenant_id in self._excluded:
                continue
            intervals = [
                (s - start, e - start)
                for s, e in self.tenant_busy_intervals(tenant_id, start, end)
            ]
            items.append(
                ActivityItem(
                    tenant_id=tenant_id,
                    nodes_requested=nodes,
                    epochs=active_epoch_indices(intervals, epoch_size),
                )
            )
        return items


class TenantActivityMonitor:
    """Service-wide monitor: one :class:`GroupActivityMonitor` per group."""

    def __init__(self, replication_factor: int, start_time: float = 0.0) -> None:
        self._replication_factor = replication_factor
        self._start_time = start_time
        self._groups: dict[str, GroupActivityMonitor] = {}
        self._observer: Optional["Observer"] = None

    def observe_with(self, observer: "Observer") -> None:
        """Attach an observer to all current and future group monitors."""
        self._observer = observer
        for monitor in self._groups.values():
            monitor.observe_with(observer)

    def group(self, group_name: str) -> GroupActivityMonitor:
        """Get (or lazily create) a group's monitor."""
        monitor = self._groups.get(group_name)
        if monitor is None:
            monitor = GroupActivityMonitor(
                group_name, self._replication_factor, self._start_time
            )
            if self._observer is not None:
                monitor.observe_with(self._observer)
            self._groups[group_name] = monitor
        return monitor

    def groups(self) -> dict[str, GroupActivityMonitor]:
        """All group monitors (copy)."""
        return dict(self._groups)

    def groups_below_sla(self, now: float, sla_fraction: float, window_s: float = DAY) -> list[str]:
        """Group names whose RT-TTP over the window dropped below ``P``."""
        return [
            name
            for name, monitor in sorted(self._groups.items())
            if monitor.rt_ttp(now, window_s) < sla_fraction
        ]
