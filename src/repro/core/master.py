"""The Deployment Master (Chapter 3, component (c)).

"The Deployment Master follows the deployment plan devised by the
Deployment Advisor to start the MPPDB instances and deploy the tenants onto
them.  It also switches off/hibernates nodes that are not listed in the
deployment plan."  Nodes come from the
:class:`~repro.cluster.pool.MachinePool`; instance startup and bulk-load
delays come from the provisioner's load model — pass ``instant=True`` when
a deployment is assumed already in place (it is "static for days").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeploymentError
from ..mppdb.instance import MPPDBInstance
from ..mppdb.provisioning import Provisioner
from .deployment import DeploymentPlan, GroupDeployment

__all__ = ["DeployedGroup", "DeploymentMaster"]


@dataclass(frozen=True)
class DeployedGroup:
    """One tenant group's live instances (index 0 = tuning MPPDB)."""

    deployment: GroupDeployment
    instances: tuple[MPPDBInstance, ...]

    def __post_init__(self) -> None:
        if len(self.instances) != self.deployment.design.num_instances:
            raise DeploymentError(
                f"group {self.deployment.group_name!r}: "
                f"{len(self.instances)} instances for a design of "
                f"{self.deployment.design.num_instances}"
            )

    @property
    def group_name(self) -> str:
        """The tenant group's name."""
        return self.deployment.group_name


class DeploymentMaster:
    """Applies deployment plans to the machine pool via the provisioner."""

    def __init__(self, provisioner: Provisioner) -> None:
        self._provisioner = provisioner
        self._deployed: dict[str, DeployedGroup] = {}

    @property
    def provisioner(self) -> Provisioner:
        """The provisioning layer in use."""
        return self._provisioner

    def deployed_groups(self) -> dict[str, DeployedGroup]:
        """Currently deployed groups (copy)."""
        return dict(self._deployed)

    def deploy_group(
        self, group: GroupDeployment, instant: bool = False, node_class: str = "standard"
    ) -> DeployedGroup:
        """Start one group's instances (on ``node_class`` hardware) and
        deploy its tenants on each."""
        if group.group_name in self._deployed:
            raise DeploymentError(f"group {group.group_name!r} is already deployed")
        tenant_data = [spec.as_tenant_data() for spec in group.tenants]
        instances = []
        for index, name in enumerate(group.design.instance_names()):
            instances.append(
                self._provisioner.provision(
                    parallelism=group.design.instance_parallelism(index),
                    tenants=tenant_data,
                    name=name,
                    instant=instant,
                    node_class=node_class,
                )
            )
        deployed = DeployedGroup(deployment=group, instances=tuple(instances))
        self._deployed[group.group_name] = deployed
        return deployed

    def deploy(self, plan: DeploymentPlan, instant: bool = False) -> list[DeployedGroup]:
        """Deploy every group of the plan, in plan order."""
        return [self.deploy_group(group, instant=instant) for group in plan]

    def decommission_group(self, group_name: str) -> None:
        """Retire a group's instances and hibernate their nodes."""
        deployed = self._deployed.pop(group_name, None)
        if deployed is None:
            raise DeploymentError(f"group {group_name!r} is not deployed")
        for instance in deployed.instances:
            self._provisioner.retire(instance)
