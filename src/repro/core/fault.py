"""Fault-tolerance policy: query retry with capped exponential backoff.

Chapter 4.4 keeps Thrifty online under node failure: "Thrifty will replace
a failed node by starting a new node upon receiving node failure
notification", and the TDD design's replication factor ``A`` exists so an
active tenant can be served by a surviving replica while the replacement
loads.  This module holds the *query-side* half of that story:

* :class:`RetryPolicy` — how often and how soon an aborted query is
  resubmitted.  Delays are **simulated** seconds (the whole plane runs on
  the discrete-event clock) and grow exponentially up to a cap, with
  optional jitter drawn from a caller-supplied seeded generator so chaos
  replays stay deterministic.
* :class:`FaultRecord` — the typed terminal outcome of a query the plane
  could *not* save: retries exhausted, or the graceful-degradation queue
  deadline expired with no healthy replica (the ``R = 1`` case).  These
  count against the SLA but never crash the replay.

The machinery that applies the policy lives in
:class:`~repro.core.runtime.GroupRuntime` (abort/retry/failover/park) and
:class:`~repro.cluster.health.HealthManager` (instance health and node
replacement); see ``docs/FAULT_TOLERANCE.md`` for the full failure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import FailoverDeadlineError, FaultError, RetriesExhaustedError
from ..units import HOUR

__all__ = [
    "RetryPolicy",
    "FaultRecord",
    "DEFAULT_RETRY_POLICY",
    "REASON_RETRIES_EXHAUSTED",
    "REASON_DEADLINE_EXCEEDED",
]

#: Terminal reason: the query was aborted more times than the retry cap.
REASON_RETRIES_EXHAUSTED = "retries-exhausted"
#: Terminal reason: no healthy replica appeared before the queue deadline.
REASON_DEADLINE_EXCEEDED = "deadline-exceeded"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for queries aborted by instance failure.

    Attempt ``n`` (1-based) waits ``base_delay_s * multiplier ** (n - 1)``
    simulated seconds, capped at ``max_delay_s``.  With a non-zero
    ``jitter_fraction`` and a generator supplied to :meth:`backoff_s`, the
    delay is scaled by a uniform factor in ``1 ± jitter_fraction`` — under
    a seeded :class:`~repro.rng.RngFactory` stream the schedule is exactly
    reproducible.

    ``queue_deadline_s`` bounds graceful degradation: a query parked
    because *no* healthy replica hosts its tenant (replication factor 1,
    or every replica degraded at once) waits at most this long for a
    recovery before it fails with a :class:`~repro.errors.FailoverDeadlineError`.
    """

    max_attempts: int = 4
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0
    jitter_fraction: float = 0.0
    queue_deadline_s: float = 4 * HOUR

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_delay_s < 0:
            raise FaultError(f"base_delay_s must be non-negative, got {self.base_delay_s!r}")
        if self.multiplier < 1.0:
            raise FaultError(f"multiplier must be >= 1.0, got {self.multiplier!r}")
        if self.max_delay_s < self.base_delay_s:
            raise FaultError("max_delay_s must be >= base_delay_s")
        if not (0.0 <= self.jitter_fraction < 1.0):
            raise FaultError(f"jitter_fraction must be in [0, 1), got {self.jitter_fraction!r}")
        if self.queue_deadline_s <= 0:
            raise FaultError(f"queue_deadline_s must be positive, got {self.queue_deadline_s!r}")

    def backoff_s(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Delay before retry number ``attempt`` (1-based), in simulated seconds."""
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {attempt!r}")
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        if self.jitter_fraction > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter_fraction * float(rng.uniform(-1.0, 1.0))
        return delay


#: The policy used when a caller does not supply one.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class FaultRecord:
    """One query the fault-tolerance plane could not complete."""

    tenant_id: int
    group_name: str
    template: str
    submit_time_s: float
    failed_time_s: float
    reason: str
    attempts: int

    def as_error(self) -> FaultError:
        """The typed error corresponding to this record's terminal reason."""
        message = (
            f"tenant {self.tenant_id} query {self.template!r} failed after "
            f"{self.attempts} attempt(s): {self.reason}"
        )
        if self.reason == REASON_RETRIES_EXHAUSTED:
            return RetriesExhaustedError(message)
        if self.reason == REASON_DEADLINE_EXCEEDED:
            return FailoverDeadlineError(message)
        return FaultError(message)
