"""Adjustable security (Chapter 8, future work item 2).

"Data privacy is an important issue in DaaS.  Fortunately, privacy-aware
query processing techniques have no significant difference between
centralized databases and parallel databases.  We plan to incorporate
techniques like adjustable security (e.g., [7]) into Thrifty."

Adjustable security à la CryptDB/Relational Cloud runs queries over
encrypted data, with the encryption *onion* peeled only as far as each
query requires; stronger schemes cost more execution time.  The model
here captures what matters to Thrifty's consolidation math:

* each tenant chooses a :class:`SecurityScheme` with a latency overhead
  multiplier (the published CryptDB figures are ~1.0–1.3x for most of
  the onion; homomorphic aggregation is far costlier);
* the overhead applies on the tenant's dedicated MPPDB *and* on the
  consolidated one — "no significant difference between centralized and
  parallel" — so per-query normalized latency (and hence the SLA
  accounting) is unchanged;
* but queries run longer, so tenants are *active longer*: secured
  workloads consolidate worse.  :func:`secure_log` applies the overhead
  to a tenant's log so the Deployment Advisor plans on the secured
  activity, and the tests quantify the consolidation cost of privacy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ConfigurationError
from ..units import approx_eq
from ..workload.logs import QueryRecord, TenantLog

__all__ = ["SecurityScheme", "AdjustableSecurityPolicy", "secure_log"]


class SecurityScheme(enum.Enum):
    """Encryption level a tenant's data is served under."""

    #: No encryption: the baseline.
    PLAINTEXT = "plaintext"
    #: Deterministic encryption: equality predicates work ciphertext-side.
    DETERMINISTIC = "deterministic"
    #: Order-preserving / onion layers: range predicates work; costlier.
    ONION = "onion"
    #: (Partially) homomorphic aggregation: strongest, slowest.
    HOMOMORPHIC = "homomorphic"


#: Latency overhead multiplier per scheme (CryptDB-style magnitudes).
_DEFAULT_OVERHEADS: dict[SecurityScheme, float] = {
    SecurityScheme.PLAINTEXT: 1.0,
    SecurityScheme.DETERMINISTIC: 1.08,
    SecurityScheme.ONION: 1.30,
    SecurityScheme.HOMOMORPHIC: 2.5,
}


@dataclass(frozen=True)
class AdjustableSecurityPolicy:
    """Per-tenant security assignments with scheme overheads.

    Parameters
    ----------
    assignments:
        ``tenant_id -> SecurityScheme``; unlisted tenants default to
        ``default_scheme``.
    default_scheme:
        Scheme for unlisted tenants (plaintext by default).
    overheads:
        Override the per-scheme latency multipliers (all must be >= 1).
    """

    assignments: Mapping[int, SecurityScheme] = field(default_factory=dict)
    default_scheme: SecurityScheme = SecurityScheme.PLAINTEXT
    overheads: Mapping[SecurityScheme, float] = field(
        default_factory=lambda: dict(_DEFAULT_OVERHEADS)
    )

    def __post_init__(self) -> None:
        for scheme in SecurityScheme:
            if scheme not in self.overheads:
                raise ConfigurationError(f"missing overhead for {scheme.value!r}")
            if self.overheads[scheme] < 1.0:
                raise ConfigurationError(
                    f"overhead for {scheme.value!r} must be >= 1, "
                    f"got {self.overheads[scheme]!r}"
                )
        if not approx_eq(self.overheads[SecurityScheme.PLAINTEXT], 1.0):
            raise ConfigurationError("plaintext overhead must be exactly 1.0")

    def scheme_of(self, tenant_id: int) -> SecurityScheme:
        """The scheme a tenant's data is served under."""
        return self.assignments.get(tenant_id, self.default_scheme)

    def overhead_of(self, tenant_id: int) -> float:
        """The tenant's latency multiplier."""
        return float(self.overheads[self.scheme_of(tenant_id)])


def secure_log(log: TenantLog, policy: AdjustableSecurityPolicy) -> TenantLog:
    """A tenant's log as it would look under its security scheme.

    Query latencies stretch by the scheme's overhead; submit times are
    unchanged (users behave the same, their queries just take longer).
    Because the overhead also applied during Step 1 collection on the
    dedicated MPPDB, the stretched latency *is* the SLA baseline — privacy
    costs activity (and therefore consolidation), not SLA compliance.
    """
    overhead = policy.overhead_of(log.tenant_id)
    if approx_eq(overhead, 1.0):
        return log
    records = [
        QueryRecord(
            submit_time_s=r.submit_time_s,
            latency_s=r.latency_s * overhead,
            template=r.template,
            user=r.user,
            batch_id=r.batch_id,
        )
        for r in log.records
    ]
    return TenantLog(log.tenant, records)
