"""The Deployment Advisor (Chapter 3, component (b)).

Takes tenant activity statistics, tenant node requests, the replication
factor ``R`` and the SLA guarantee ``P``, and returns a deployment plan:
tenant grouping (Chapter 5's heuristics) followed by TDD cluster design and
placement per group with ``A = R``.

Always-active or oversized tenants "offer little room for consolidation"
and are excluded up front (Chapter 3, footnote: dedicated nodes under
another service plan); the advisor returns them separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..config import EvaluationConfig
from ..errors import DeploymentError
from ..packing.ffd import ffd_grouping
from ..packing.livbp import GroupingSolution, LIVBPwFCProblem
from ..packing.two_step import two_step_grouping
from ..units import TB
from ..workload.activity import ActivityMatrix
from ..workload.composer import ComposedWorkload
from ..workload.tenant import TenantSpec
from .deployment import DeploymentPlan, GroupDeployment
from .tdd import design_for_group

__all__ = ["DeploymentAdvisor", "AdvisorResult", "GROUPING_ALGORITHMS"]

#: Available grouping back-ends, by name.
GROUPING_ALGORITHMS: dict[str, Callable[[LIVBPwFCProblem], GroupingSolution]] = {
    "two-step": two_step_grouping,
    "ffd": ffd_grouping,
}


@dataclass(frozen=True)
class AdvisorResult:
    """A plan plus the tenants excluded from consolidation."""

    plan: DeploymentPlan
    grouping: GroupingSolution
    excluded: tuple[TenantSpec, ...]

    @property
    def excluded_nodes(self) -> int:
        """Nodes consumed by excluded tenants (dedicated service plan)."""
        return sum(t.nodes_requested for t in self.excluded)


class DeploymentAdvisor:
    """Computes deployment plans from tenant activity."""

    def __init__(
        self,
        config: EvaluationConfig,
        grouping: str = "two-step",
        max_active_fraction: float = 0.5,
        max_data_gb: float = 10 * TB,
    ) -> None:
        if grouping not in GROUPING_ALGORITHMS:
            raise DeploymentError(
                f"unknown grouping {grouping!r}; options: {sorted(GROUPING_ALGORITHMS)}"
            )
        if not (0 < max_active_fraction <= 1):
            raise DeploymentError("max_active_fraction must be in (0, 1]")
        if max_data_gb <= 0:
            raise DeploymentError("max_data_gb must be positive")
        self._config = config
        self._grouping_name = grouping
        self._grouping = GROUPING_ALGORITHMS[grouping]
        self._max_active_fraction = max_active_fraction
        self._max_data_gb = max_data_gb

    @property
    def grouping_name(self) -> str:
        """The configured grouping back-end's name."""
        return self._grouping_name

    def _split_excluded(
        self, matrix: ActivityMatrix, tenants: Sequence[TenantSpec]
    ) -> tuple[list[TenantSpec], list[TenantSpec]]:
        """Separate consolidable tenants from always-active / oversized ones."""
        by_id = {t.tenant_id: t for t in tenants}
        consolidable: list[TenantSpec] = []
        excluded: list[TenantSpec] = []
        for item in matrix.items:
            spec = by_id.get(item.tenant_id)
            if spec is None:
                raise DeploymentError(f"activity for unknown tenant {item.tenant_id}")
            active_fraction = item.active_epoch_count / matrix.num_epochs
            if active_fraction > self._max_active_fraction or spec.data_gb > self._max_data_gb:
                excluded.append(spec)
            else:
                consolidable.append(spec)
        return consolidable, excluded

    def plan_from_matrix(
        self, matrix: ActivityMatrix, tenants: Sequence[TenantSpec]
    ) -> AdvisorResult:
        """Group the consolidable tenants and apply TDD per group."""
        consolidable, excluded = self._split_excluded(matrix, tenants)
        if not consolidable:
            raise DeploymentError("no consolidable tenants (all excluded)")
        keep_ids = {t.tenant_id for t in consolidable}
        sub_matrix = ActivityMatrix(
            [item for item in matrix.items if item.tenant_id in keep_ids],
            matrix.num_epochs,
        )
        problem = LIVBPwFCProblem.from_activity_matrix(
            sub_matrix, self._config.replication_factor, self._config.sla_percent
        )
        solution = self._grouping(problem)
        solution.validate()
        by_id = {t.tenant_id: t for t in consolidable}
        groups: list[GroupDeployment] = []
        for index, group in enumerate(solution.groups):
            specs = tuple(by_id[i] for i in group.tenant_ids)
            design, placement = design_for_group(
                f"tg{index}", specs, num_instances=self._config.replication_factor
            )
            groups.append(GroupDeployment(design=design, placement=placement, tenants=specs))
        return AdvisorResult(
            plan=DeploymentPlan(groups), grouping=solution, excluded=tuple(excluded)
        )

    def plan_from_workload(
        self, workload: ComposedWorkload, epoch_size: Optional[float] = None
    ) -> AdvisorResult:
        """Discretize a composed workload and plan from it."""
        epoch = self._config.epoch_size_s if epoch_size is None else epoch_size
        matrix = ActivityMatrix.from_workload(workload, epoch)
        return self.plan_from_matrix(matrix, workload.tenants)

    def reconsolidate(
        self,
        matrix: ActivityMatrix,
        previous: DeploymentPlan,
        affected_groups: set[str],
        departed: Sequence[int] = (),
        name_prefix: str = "rg",
    ) -> tuple[AdvisorResult, list[GroupDeployment]]:
        """One (re)-consolidation cycle (Chapters 3 and 5.1).

        "A (re)-consolidation process is expected to be executed
        periodically" — tenants of groups that went through elastic
        scaling, together with tenants of groups with de-registered
        tenants, are re-grouped on their *latest* activity; untouched
        groups keep their deployment.

        Returns the advisor result for the re-grouped tenants (new groups
        named ``{name_prefix}{i}``) plus the list of kept groups; the
        caller (Deployment Master / service) decommissions the affected
        groups and deploys the new ones.
        """
        departed_set = set(departed)
        unknown = [
            name for name in affected_groups
            if all(g.group_name != name for g in previous)
        ]
        if unknown:
            raise DeploymentError(f"unknown groups to reconsolidate: {sorted(unknown)[:5]}")
        affected = set(affected_groups)
        for group in previous:
            if departed_set.intersection(group.placement.tenant_ids):
                affected.add(group.group_name)
        kept = [g for g in previous if g.group_name not in affected]
        pool = [
            t
            for g in previous
            if g.group_name in affected
            for t in g.tenants
            if t.tenant_id not in departed_set
        ]
        if not pool:
            raise DeploymentError("re-consolidation pool is empty")
        pool_ids = {t.tenant_id for t in pool}
        sub_matrix = ActivityMatrix(
            [item for item in matrix.items if item.tenant_id in pool_ids],
            matrix.num_epochs,
        )
        missing = pool_ids - {item.tenant_id for item in sub_matrix.items}
        if missing:
            raise DeploymentError(
                f"activity missing for tenants {sorted(missing)[:5]} in re-consolidation"
            )
        problem = LIVBPwFCProblem.from_activity_matrix(
            sub_matrix, self._config.replication_factor, self._config.sla_percent
        )
        solution = self._grouping(problem)
        solution.validate()
        by_id = {t.tenant_id: t for t in pool}
        new_groups: list[GroupDeployment] = []
        for index, group in enumerate(solution.groups):
            specs = tuple(by_id[i] for i in group.tenant_ids)
            design, placement = design_for_group(
                f"{name_prefix}{index}", specs, num_instances=self._config.replication_factor
            )
            new_groups.append(GroupDeployment(design=design, placement=placement, tenants=specs))
        result = AdvisorResult(
            plan=DeploymentPlan(kept + new_groups) if kept else DeploymentPlan(new_groups),
            grouping=solution,
            excluded=(),
        )
        return result, kept
