"""Performance-SLA accounting.

The SLA of MPPDBaaS is the *query latency before consolidation* (§1.1):
each logged query's baseline is the latency it obtained on the tenant's
dedicated, exactly-sized MPPDB.  After consolidation, a query's *normalized
performance* is ``observed latency / baseline latency`` — "1.0 means a
query has finished execution as quick as it should be when measured in an
isolated environment" (§7.5); values below 1.0 happen when a query lands on
an over-sized MPPDB (the second consolidation opportunity), values above
1.0 when it shares an instance with another tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import DeploymentError

__all__ = ["SLARecord", "SLAReport"]

#: Normalized latencies up to this are treated as meeting the SLA
#: (absorbs replay jitter at the boundary).
SLA_TOLERANCE = 1e-6


@dataclass(frozen=True)
class SLARecord:
    """One completed query's SLA outcome."""

    tenant_id: int
    group_name: str
    instance_name: str
    template: str
    submit_time_s: float
    baseline_latency_s: float
    observed_latency_s: float

    def __post_init__(self) -> None:
        if self.baseline_latency_s < 0 or self.observed_latency_s < 0:
            raise DeploymentError("latencies must be non-negative")

    @property
    def normalized(self) -> float:
        """Observed / baseline latency."""
        if self.baseline_latency_s == 0:
            return 1.0
        return self.observed_latency_s / self.baseline_latency_s

    @property
    def met(self) -> bool:
        """Whether the query met its before-consolidation latency."""
        return self.normalized <= 1.0 + SLA_TOLERANCE


class SLAReport:
    """Aggregate SLA outcomes over a set of completed queries."""

    def __init__(self, records: Sequence[SLARecord]) -> None:
        self.records: tuple[SLARecord, ...] = tuple(records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def fraction_met(self) -> float:
        """Fraction of queries that met their SLA."""
        if not self.records:
            return 1.0
        return sum(1 for r in self.records if r.met) / len(self.records)

    @property
    def worst_normalized(self) -> float:
        """Largest normalized latency observed."""
        if not self.records:
            return 1.0
        return max(r.normalized for r in self.records)

    def mean_normalized(self) -> float:
        """Mean normalized latency."""
        if not self.records:
            return 1.0
        return sum(r.normalized for r in self.records) / len(self.records)

    def violations(self) -> list[SLARecord]:
        """Queries that missed their SLA, in time order."""
        return sorted(
            (r for r in self.records if not r.met), key=lambda r: r.submit_time_s
        )

    def for_tenant(self, tenant_id: int) -> "SLAReport":
        """Restrict to one tenant."""
        return SLAReport([r for r in self.records if r.tenant_id == tenant_id])

    def for_group(self, group_name: str) -> "SLAReport":
        """Restrict to one tenant group."""
        return SLAReport([r for r in self.records if r.group_name == group_name])

    def window(self, start: float, end: float) -> "SLAReport":
        """Restrict to queries submitted in ``[start, end)``."""
        return SLAReport(
            [r for r in self.records if start <= r.submit_time_s < end]
        )

    def summary(self) -> dict[str, float]:
        """Headline SLA metrics."""
        return {
            "queries": float(len(self.records)),
            "fraction_met": self.fraction_met,
            "mean_normalized": self.mean_normalized(),
            "worst_normalized": self.worst_normalized,
        }
