"""Tenant-driven *divergent* design (Chapter 8, future work).

The paper sketches a specialized design for a restricted tenant class —
tenants that never submit ad-hoc queries (report-generation applications
whose query templates can be extracted).  For them:

* use ``U > n_1`` nodes for ``MPPDB_0`` *upfront*, sized so that
  ``MPPDB_0`` can absorb several concurrently active tenants without SLA
  violations — "the crux ... is to identify the minimum value of U that
  can afford different degrees of concurrent query processing on MPPDB_0
  without performance SLA violations";
* use *different partition schemes* on the different replicas (divergent
  physical design, [6]), so each replica is tuned for a subset of the
  known templates and non-linear queries regain speedup on their favoured
  replica.

This module implements both: :func:`minimum_tuning_nodes_for_templates`
solves the U sizing from the known templates' scale-out curves, and
:class:`DivergentDesigner` produces a :class:`~repro.core.tdd.ClusterDesign`
plus a per-replica template-affinity map that the router can use.  Because
``MPPDB_0`` absorbs overflow, a divergent group needs fewer elastic
scalings and can run with a *smaller* ``A`` than ``R`` would otherwise
demand — the higher consolidation effectiveness the paper predicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..errors import ConfigurationError, DeploymentError
from ..mppdb.scaleout import AmdahlScaleOut, LinearScaleOut, SublinearScaleOut
from ..workload.queries import QueryTemplate
from ..workload.tenant import TenantSpec
from .tdd import ClusterDesign, TenantPlacement

__all__ = [
    "minimum_tuning_nodes_for_templates",
    "DivergentDesign",
    "DivergentDesigner",
    "template_serial_fraction",
]


def template_serial_fraction(template: QueryTemplate, probe_nodes: int = 64) -> float:
    """Effective Amdahl serial fraction of a template's scale-out curve.

    For a known template the curve itself is known; for analysis we reduce
    it to the serial fraction an Amdahl curve would need to produce the
    same latency at ``probe_nodes``:  ``latency(n)/latency(1) = s + (1-s)/n``.
    """
    curve = template.curve
    if isinstance(curve, LinearScaleOut):
        return 0.0
    if isinstance(curve, AmdahlScaleOut):
        return curve.serial_fraction
    if isinstance(curve, SublinearScaleOut):
        ratio = curve.latency(1.0, probe_nodes)
        return max(0.0, (ratio - 1.0 / probe_nodes) / (1.0 - 1.0 / probe_nodes))
    # Generic curve: probe it.
    ratio = curve.latency(1.0, probe_nodes)
    return max(0.0, min(1.0, (ratio - 1.0 / probe_nodes) / (1.0 - 1.0 / probe_nodes)))


def minimum_tuning_nodes_for_templates(
    templates: Sequence[QueryTemplate],
    parallelism: int,
    concurrency: int,
    divergence_speedup: float = 1.0,
    max_nodes: int = 4096,
) -> int:
    """The minimum ``U`` absorbing ``concurrency`` tenants for known templates.

    Solves, per template, ``concurrency * latency_U <= latency_n`` where
    ``latency_U`` additionally benefits from the divergent physical design
    (``divergence_speedup >= 1`` — each template's favoured partition
    scheme runs it that much faster), and returns the maximum over
    templates.  Raises when some template's serial fraction makes the
    target unreachable at any ``U <= max_nodes`` — those tenants must fall
    back to elastic scaling.
    """
    if not templates:
        raise ConfigurationError("at least one template is required")
    if parallelism < 1:
        raise ConfigurationError("parallelism must be >= 1")
    if concurrency < 1:
        raise ConfigurationError("concurrency must be >= 1")
    if divergence_speedup < 1.0:
        raise ConfigurationError("divergence_speedup must be >= 1")
    worst_u = parallelism
    for template in templates:
        target = template.curve.latency(1.0, parallelism)
        u = parallelism
        while u <= max_nodes:
            latency_u = template.curve.latency(1.0, u) / divergence_speedup
            if concurrency * latency_u <= target * (1 + 1e-12):
                break
            u += 1
        else:
            raise ConfigurationError(
                f"template {template.name!r} cannot absorb MPL {concurrency} "
                f"at any U <= {max_nodes} (serial fraction "
                f"{template_serial_fraction(template):.3f}); serve it via "
                "elastic scaling instead"
            )
        worst_u = max(worst_u, u)
    return worst_u


@dataclass(frozen=True)
class DivergentDesign:
    """A divergent group's design: TDD plus per-replica template affinity."""

    design: ClusterDesign
    placement: TenantPlacement
    #: instance name -> template names that replica's physical design favours.
    replica_affinity: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    #: The concurrency level MPPDB_0 is sized to absorb.
    absorbed_concurrency: int = 1

    @property
    def total_nodes(self) -> int:
        """Nodes the divergent group consumes."""
        return self.design.total_nodes

    def favoured_replica(self, template_name: str) -> Optional[str]:
        """The replica whose partition scheme favours a template, if any."""
        for name, templates in self.replica_affinity.items():
            if template_name in templates:
                return name
        return None


class DivergentDesigner:
    """Builds divergent designs for template-known tenant groups.

    Parameters
    ----------
    divergence_speedup:
        Speedup a template enjoys on its favoured replica ([6] reports
        roughly 1.5-2x from divergent physical designs; default 1.5).
    """

    def __init__(self, divergence_speedup: float = 1.5) -> None:
        if divergence_speedup < 1.0:
            raise ConfigurationError("divergence_speedup must be >= 1")
        self.divergence_speedup = float(divergence_speedup)

    def design_group(
        self,
        group_name: str,
        tenants: Sequence[TenantSpec],
        templates: Sequence[QueryTemplate],
        num_instances: int,
        absorbed_concurrency: int = 2,
    ) -> DivergentDesign:
        """Apply the divergent design to one template-known tenant group.

        ``absorbed_concurrency`` is the number of concurrently active
        tenants ``MPPDB_0`` must absorb without SLA violations (beyond the
        one tenant each regular replica serves).
        """
        if not tenants:
            raise DeploymentError("cannot design for an empty tenant group")
        if not templates:
            raise DeploymentError("the divergent design requires known templates")
        largest = max(t.nodes_requested for t in tenants)
        tuning = minimum_tuning_nodes_for_templates(
            templates,
            parallelism=largest,
            concurrency=absorbed_concurrency,
            divergence_speedup=self.divergence_speedup,
        )
        design = ClusterDesign(
            group_name=group_name,
            num_instances=num_instances,
            parallelism=largest,
            tuning_parallelism=tuning,
        )
        placement = TenantPlacement(
            group_name=group_name,
            tenant_ids=tuple(t.tenant_id for t in tenants),
            instance_names=tuple(design.instance_names()),
        )
        # MPPDB_0 absorbs the overflow concurrency, so its physical design
        # favours the worst-scaling templates (they are the ones its U was
        # sized for); the remaining templates spread round-robin over the
        # other replicas.
        names = design.instance_names()
        affinity: dict[str, list[str]] = {name: [] for name in names}
        ordered = sorted(templates, key=lambda t: template_serial_fraction(t), reverse=True)
        share = max(1, math.ceil(len(ordered) / max(len(names), 1)))
        for template in ordered[:share]:
            affinity[names[0]].append(template.name)
        others = names[1:] or names
        for index, template in enumerate(ordered[share:]):
            affinity[others[index % len(others)]].append(template.name)
        return DivergentDesign(
            design=design,
            placement=placement,
            replica_affinity={k: tuple(v) for k, v in affinity.items()},
            absorbed_concurrency=absorbed_concurrency,
        )

    def supports(self, templates: Sequence[QueryTemplate], parallelism: int, concurrency: int) -> bool:
        """Whether a divergent design can absorb the concurrency at all."""
        try:
            minimum_tuning_nodes_for_templates(
                templates,
                parallelism=parallelism,
                concurrency=concurrency,
                divergence_speedup=self.divergence_speedup,
            )
        except ConfigurationError:
            return False
        return True
