"""Heterogeneous-cluster planning (Chapter 8, future work item 1).

"Thrifty currently assumes the machine nodes in the cluster are
homogeneous; extending Thrifty to deal with a cluster of heterogeneous
machines is thus an important yet challenging task."

The extension keeps TDD's invariant that every MPPDB instance runs on
*uniform* nodes (MPP engines want equal workers), so heterogeneity lives
*between* tenant groups: each group is assigned one hardware class from
the pool.  :func:`assign_node_classes` does so greedily — the largest node
consumers get the fastest class while stock lasts — which is
exchange-optimal for the total weighted speed objective: in any assignment
where a slower class serves a bigger group while a faster class serves a
smaller one, swapping them increases ``sum(nodes_used x relative_speed)``.

Faster nodes shorten query latencies on the groups they serve (every
instance's ``speed_factor`` divides the dedicated work), which turns
hardware upgrades into SLA headroom exactly where the most nodes are
concentrated.
"""

from __future__ import annotations

from ..cluster.pool import MachinePool
from ..errors import DeploymentError
from .deployment import DeploymentPlan

__all__ = ["assign_node_classes", "plan_speed_summary"]


def assign_node_classes(
    plan: DeploymentPlan,
    pool: MachinePool,
    default_class: str = "standard",
) -> dict[str, str]:
    """Assign each tenant group a node class, fastest-to-largest.

    Groups are processed in decreasing ``nodes_used`` order; each takes
    the fastest class that still has enough *stocked* (non-rented) nodes,
    falling back to ``default_class`` (assumed elastic) when nothing
    faster fits.  Returns ``group name -> class name``.
    """
    classes = pool.node_classes
    if default_class not in classes:
        raise DeploymentError(f"pool has no {default_class!r} class")
    stock = {
        name: pool.available_count_of(name)
        for name in classes
        if name != default_class
    }
    ranked = sorted(
        stock,
        key=lambda name: classes[name].relative_speed,
        reverse=True,
    )
    assignment: dict[str, str] = {}
    for group in sorted(plan, key=lambda g: g.nodes_used, reverse=True):
        chosen = default_class
        for name in ranked:
            if classes[name].relative_speed <= classes[default_class].relative_speed:
                continue
            if stock[name] >= group.nodes_used:
                stock[name] -= group.nodes_used
                chosen = name
                break
        assignment[group.group_name] = chosen
    return assignment


def plan_speed_summary(
    plan: DeploymentPlan, pool: MachinePool, assignment: dict[str, str]
) -> dict[str, float]:
    """Aggregate speed statistics of a class assignment.

    ``mean_speed`` is the node-weighted mean relative speed — the figure
    of merit :func:`assign_node_classes` greedily maximizes.
    """
    classes = pool.node_classes
    total_nodes = 0
    weighted = 0.0
    for group in plan:
        name = assignment.get(group.group_name)
        if name is None:
            raise DeploymentError(f"group {group.group_name!r} missing from assignment")
        if name not in classes:
            raise DeploymentError(f"unknown node class {name!r}")
        total_nodes += group.nodes_used
        weighted += group.nodes_used * classes[name].relative_speed
    if total_nodes == 0:
        raise DeploymentError("plan uses zero nodes")
    return {
        "nodes": float(total_nodes),
        "mean_speed": weighted / total_nodes,
        "upgraded_groups": float(
            sum(1 for c in assignment.values() if classes[c].relative_speed > 1.0)
        ),
    }
