"""Query routing (Algorithm 1) plus ablation policies.

The TDD router routes *active tenants*, not individual queries: once a
tenant has queries running on some MPPDB, every further query of it goes
there until the tenant becomes inactive (strong notion — no query running
anywhere).  Otherwise the tuning MPPDB ``MPPDB_0`` is preferred if free,
then any free MPPDB, and only when *all* instances are busy does a query
fall through to ``MPPDB_0`` for concurrent processing (the case manual
tuning of ``U`` is for, Chapter 6).

Elastic scaling pins over-active tenants to a dedicated instance
(:meth:`QueryRouter.pin_tenant`); pinned tenants bypass Algorithm 1.

The ablation routers (random-free, round-robin, always-tuning) exist for
``bench_ablation_routing.py``: they violate the tenant-exclusivity
invariant in different ways and show why Algorithm 1's order matters.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..errors import NoHealthyInstanceError, RoutingError
from ..mppdb.instance import InstanceState, MPPDBInstance
from ..obs.profiling import profiled
from ..rng import RngFactory

__all__ = [
    "QueryRouter",
    "TDDRouter",
    "RandomFreeRouter",
    "RoundRobinRouter",
    "AlwaysTuningRouter",
    "classify_decision",
]


class QueryRouter(abc.ABC):
    """Routes a tenant's query to one of a tenant group's instances.

    ``instances[0]`` is the tuning MPPDB ``MPPDB_0``.
    """

    def __init__(self, instances: Sequence[MPPDBInstance]) -> None:
        if not instances:
            raise RoutingError("a router needs at least one instance")
        self._instances: list[MPPDBInstance] = list(instances)
        self._pinned: dict[int, MPPDBInstance] = {}

    @property
    def instances(self) -> list[MPPDBInstance]:
        """The instances currently routed to (copy)."""
        return list(self._instances)

    @property
    def tuning_instance(self) -> MPPDBInstance:
        """``MPPDB_0``."""
        return self._instances[0]

    def add_instance(self, instance: MPPDBInstance) -> None:
        """Register an additional instance (elastic scaling)."""
        self._instances.append(instance)

    def pin_tenant(self, tenant_id: int, instance: MPPDBInstance) -> None:
        """Route all of a tenant's future queries to ``instance``.

        Used after lightweight elastic scaling: "the Deployment Advisor
        will notify the Query Router to route queries from the over-active
        tenant(s) to the new MPPDB" (Chapter 5.1).
        """
        if not instance.hosts(tenant_id):
            raise RoutingError(
                f"cannot pin tenant {tenant_id} to {instance.name!r}: data not deployed"
            )
        self._pinned[tenant_id] = instance

    def unpin_tenant(self, tenant_id: int) -> None:
        """Remove a pin (e.g. at re-consolidation)."""
        self._pinned.pop(tenant_id, None)

    @property
    def pinned_tenants(self) -> dict[int, MPPDBInstance]:
        """Current pin map (copy)."""
        return dict(self._pinned)

    @profiled("core.routing.route")
    def route(self, tenant_id: int) -> MPPDBInstance:
        """Choose the instance a new query of ``tenant_id`` should run on.

        Unhealthy (degraded/down) and still-provisioning instances are
        skipped, so a tenant replicated with ``A >= 2`` transparently fails
        over to a surviving replica.  When every hosting instance is
        unavailable *because of failures or loading* the distinguishable
        :class:`~repro.errors.NoHealthyInstanceError` is raised — the
        run-time layer parks such queries until recovery instead of
        treating them as routing bugs.
        """
        pinned = self._pinned.get(tenant_id)
        if pinned is not None and pinned.is_ready:
            return pinned
        candidates = [i for i in self._instances if i.is_ready and i.hosts(tenant_id)]
        if not candidates:
            unavailable = [
                i
                for i in self._instances
                if i.hosts(tenant_id) and i.state is not InstanceState.RETIRED
            ]
            if unavailable:
                states = ", ".join(
                    f"{i.name}={i.state.value}" for i in unavailable
                )
                raise NoHealthyInstanceError(
                    f"no healthy instance hosts tenant {tenant_id} ({states})"
                )
            raise RoutingError(f"no ready instance hosts tenant {tenant_id}")
        return self._choose(tenant_id, candidates)

    @abc.abstractmethod
    def _choose(self, tenant_id: int, candidates: list[MPPDBInstance]) -> MPPDBInstance:
        """Policy-specific choice among ready, hosting instances."""


class TDDRouter(QueryRouter):
    """Algorithm 1: route the *tenant*, prefer MPPDB_0, overflow to MPPDB_0."""

    def _choose(self, tenant_id: int, candidates: list[MPPDBInstance]) -> MPPDBInstance:
        # Line 1-2: the tenant already has queries running somewhere.
        for instance in candidates:
            if tenant_id in instance.active_tenants:
                return instance
        # Line 4-5: MPPDB_0 if free.
        tuning = candidates[0] if candidates[0] is self.tuning_instance else None
        if tuning is not None and tuning.is_free:
            return tuning
        # Line 7-8: any free MPPDB.
        for instance in candidates:
            if instance.is_free:
                return instance
        # Line 10: all busy -> MPPDB_0 for concurrent processing.
        if tuning is not None:
            return tuning
        return candidates[0]


class RandomFreeRouter(QueryRouter):
    """Ablation: pick a uniformly random free instance (no tenant affinity)."""

    def __init__(self, instances: Sequence[MPPDBInstance], seed: int = 0) -> None:
        super().__init__(instances)
        # Drawn via the library's seed-derivation scheme so replays are
        # deterministic and independent of other components' draw counts.
        self._rng = RngFactory(seed).stream("routing", "random-free")

    def _choose(self, tenant_id: int, candidates: list[MPPDBInstance]) -> MPPDBInstance:
        free = [i for i in candidates if i.is_free]
        if free:
            return free[int(self._rng.integers(0, len(free)))]
        return candidates[int(self._rng.integers(0, len(candidates)))]


class RoundRobinRouter(QueryRouter):
    """Ablation: per-query round robin, oblivious to busy state."""

    def __init__(self, instances: Sequence[MPPDBInstance]) -> None:
        super().__init__(instances)
        self._next = 0

    def _choose(self, tenant_id: int, candidates: list[MPPDBInstance]) -> MPPDBInstance:
        chosen = candidates[self._next % len(candidates)]
        self._next += 1
        return chosen


class AlwaysTuningRouter(QueryRouter):
    """Ablation: everything goes to MPPDB_0 (no replication benefit)."""

    def _choose(self, tenant_id: int, candidates: list[MPPDBInstance]) -> MPPDBInstance:
        if candidates[0] is self.tuning_instance:
            return candidates[0]
        return candidates[0]


def classify_decision(
    router: QueryRouter, tenant_id: int, instance: MPPDBInstance
) -> str:
    """Name the Algorithm 1 branch that produced a routing decision.

    Must be called *before* the query is submitted (the checks read the
    pre-submit busy/active state the router itself saw).  Outcomes:
    ``pinned``, ``tenant-affinity``, ``tuning-free``, ``free`` and
    ``overflow`` (the all-busy fall-through onto ``MPPDB_0``).
    """
    if router.pinned_tenants.get(tenant_id) is instance:
        return "pinned"
    if tenant_id in instance.active_tenants:
        return "tenant-affinity"
    if instance.is_free:
        return "tuning-free" if instance is router.tuning_instance else "free"
    return "overflow"


ROUTER_POLICIES = {
    "tdd": TDDRouter,
    "random-free": RandomFreeRouter,
    "round-robin": RoundRobinRouter,
    "always-tuning": AlwaysTuningRouter,
}

__all__.append("ROUTER_POLICIES")
