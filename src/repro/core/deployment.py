"""Deployment plans.

A :class:`DeploymentPlan` is the Deployment Advisor's output (Chapter 3):
the cluster design plus tenant placement of every tenant group.  The
Deployment Master executes it; nodes not listed are hibernated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import DeploymentError
from ..workload.tenant import TenantSpec
from .tdd import ClusterDesign, TenantPlacement

__all__ = ["GroupDeployment", "DeploymentPlan"]


@dataclass(frozen=True)
class GroupDeployment:
    """One tenant group's slice of the plan."""

    design: ClusterDesign
    placement: TenantPlacement
    tenants: tuple[TenantSpec, ...]

    def __post_init__(self) -> None:
        if self.design.group_name != self.placement.group_name:
            raise DeploymentError(
                f"design is for {self.design.group_name!r} but placement for "
                f"{self.placement.group_name!r}"
            )
        spec_ids = {t.tenant_id for t in self.tenants}
        if spec_ids != set(self.placement.tenant_ids):
            raise DeploymentError("tenant specs do not match the placement's tenant ids")

    @property
    def group_name(self) -> str:
        """The tenant group's name."""
        return self.design.group_name

    @property
    def nodes_used(self) -> int:
        """Machine nodes this group's instances consume."""
        return self.design.total_nodes

    @property
    def nodes_requested(self) -> int:
        """Machine nodes the group's tenants requested before consolidation."""
        return sum(t.nodes_requested for t in self.tenants)

    def tenant(self, tenant_id: int) -> TenantSpec:
        """Look up one tenant's spec."""
        for spec in self.tenants:
            if spec.tenant_id == tenant_id:
                return spec
        raise DeploymentError(f"tenant {tenant_id!r} is not in group {self.group_name!r}")


class DeploymentPlan:
    """The full plan: every tenant group's design and placement."""

    def __init__(self, groups: Sequence[GroupDeployment]) -> None:
        if not groups:
            raise DeploymentError("a deployment plan needs at least one group")
        names = [g.group_name for g in groups]
        if len(set(names)) != len(names):
            raise DeploymentError("group names must be unique")
        seen: set[int] = set()
        for group in groups:
            overlap = seen.intersection(group.placement.tenant_ids)
            if overlap:
                raise DeploymentError(
                    f"tenants in multiple groups: {sorted(overlap)[:5]}"
                )
            seen.update(group.placement.tenant_ids)
        self.groups: tuple[GroupDeployment, ...] = tuple(groups)

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[GroupDeployment]:
        return iter(self.groups)

    @property
    def total_nodes_used(self) -> int:
        """Nodes the whole consolidated service uses."""
        return sum(g.nodes_used for g in self.groups)

    @property
    def total_nodes_requested(self) -> int:
        """Nodes all tenants requested before consolidation."""
        return sum(g.nodes_requested for g in self.groups)

    @property
    def consolidation_effectiveness(self) -> float:
        """Fraction of requested nodes saved by the plan."""
        requested = self.total_nodes_requested
        if requested == 0:
            raise DeploymentError("plan has zero requested nodes")
        return 1.0 - self.total_nodes_used / requested

    def group(self, name: str) -> GroupDeployment:
        """Look up a group by name."""
        for group in self.groups:
            if group.group_name == name:
                return group
        raise DeploymentError(f"unknown group {name!r}")

    def group_of_tenant(self, tenant_id: int) -> GroupDeployment:
        """The group hosting a tenant."""
        for group in self.groups:
            if tenant_id in group.placement.tenant_ids:
                return group
        raise DeploymentError(f"tenant {tenant_id!r} is not in the plan")

    def summary(self) -> dict[str, float]:
        """Headline plan metrics."""
        return {
            "groups": float(len(self.groups)),
            "tenants": float(sum(len(g.tenants) for g in self.groups)),
            "nodes_requested": float(self.total_nodes_requested),
            "nodes_used": float(self.total_nodes_used),
            "effectiveness": self.consolidation_effectiveness,
        }
