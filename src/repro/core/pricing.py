"""The pricing model.

"Thrifty adopts a pricing model that charges a tenant based on the number
of requested nodes (the degree of parallelism) and its active usage"
(Chapter 3).  A tenant renting an ``n``-node MPPDB pays
``n x active hours x rate`` — and, per Chapter 4.4, intra-tenant slowdown
from the tenant's own high MPL is the tenant's node-choice, not a billing
or SLA concern.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import HOUR
from ..workload.logs import TenantLog

__all__ = ["PricingModel", "TenantInvoice"]


@dataclass(frozen=True)
class TenantInvoice:
    """One tenant's bill for a period."""

    tenant_id: int
    nodes_requested: int
    active_hours: float
    node_hour_rate: float

    @property
    def amount(self) -> float:
        """Total charge: nodes x active hours x rate."""
        return self.nodes_requested * self.active_hours * self.node_hour_rate


@dataclass(frozen=True)
class PricingModel:
    """Per-node-hour pricing of active usage.

    The default rate folds hardware, operations and the MPPDB license share
    into a single figure; the absolute value only matters relative to the
    dedicated-cluster alternative computed by
    :meth:`dedicated_cost`, which is what the examples compare against.
    """

    node_hour_rate: float = 4.0
    minimum_billable_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.node_hour_rate <= 0:
            raise ConfigurationError("node_hour_rate must be positive")
        if self.minimum_billable_hours < 0:
            raise ConfigurationError("minimum_billable_hours must be >= 0")

    def invoice(self, log: TenantLog) -> TenantInvoice:
        """Bill a tenant for the activity recorded in its log."""
        active_hours = max(
            log.total_busy_seconds() / HOUR, self.minimum_billable_hours
        )
        return TenantInvoice(
            tenant_id=log.tenant_id,
            nodes_requested=log.tenant.nodes_requested,
            active_hours=active_hours,
            node_hour_rate=self.node_hour_rate,
        )

    def dedicated_cost(self, nodes: int, period_hours: float) -> float:
        """What renting ``nodes`` dedicated nodes for the period would cost.

        Dedicated machines bill wall-clock time whether used or not — the
        comparison that makes MPPDBaaS attractive for mostly-inactive
        tenants (§1.1).
        """
        if nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        if period_hours < 0:
            raise ConfigurationError("period_hours must be >= 0")
        return nodes * period_hours * self.node_hour_rate
