"""Run-time replay: drive composed tenant logs through a deployed group.

This is the piece that turns the static deployment into the live system of
Figure 7.7: each logged query is submitted at its recorded time, the
Algorithm 1 router picks an instance, the instance's fair-share engine
produces the observed latency, the Tenant Activity Monitor tracks the
group's concurrent-active count and RT-TTP, and the scaling policy reacts
when the RT-TTP dips below ``P``.

Two replay disciplines are supported:

* **open-loop** (default) — submissions happen at their logged times even
  when earlier queries run slow; simple and reproducible.
* **closed-loop** (``closed_loop=True``) — the §7.1 user semantics are
  honoured during replay: each user's next event (single query or whole
  batch) waits for the previous one to *complete* plus the original think
  gap, so slowdowns push later submissions back exactly as the paper's
  imitated tenants would experience them.

SLA baselines: a logged query's before-consolidation latency *is* its SLA
(§1.1), so the baseline is the latency recorded during Step 1 log
collection on the tenant's dedicated, exactly-sized MPPDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

import numpy as np

from ..errors import DeploymentError, NoHealthyInstanceError
from ..mppdb.execution import QueryExecution
from ..mppdb.instance import MPPDBInstance
from ..mppdb.provisioning import Provisioner
from ..obs.observer import NULL_OBSERVER, Observer
from ..obs.tracing import STATUS_INFLIGHT, Span
from ..simulation.engine import Simulator
from ..simulation.events import ScheduledEvent
from ..simulation.trace import TraceRecorder
from ..units import MINUTE
from ..workload.logs import QueryRecord, TenantLog
from ..workload.queries import template_by_name
from .fault import (
    DEFAULT_RETRY_POLICY,
    FaultRecord,
    REASON_DEADLINE_EXCEEDED,
    REASON_RETRIES_EXHAUSTED,
    RetryPolicy,
)
from .master import DeployedGroup
from .monitor import GroupActivityMonitor
from .routing import QueryRouter, TDDRouter, classify_decision
from .scaling import DisabledScaling, ScalingAction, ScalingPolicy
from .sla import SLARecord, SLAReport

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a layer cycle)
    from ..cluster.health import HealthManager

__all__ = ["GroupRuntime", "RuntimeReport"]


class _ClosedLoopChain:
    """One user's closed-loop event chain.

    An *event* is a single query or one batch (records sharing a
    ``batch_id``), matching §7.1's user behaviour: "The user will not take
    any action until the single query or the query batch is complete",
    then thinks for the gap observed in the baseline log.
    """

    def __init__(self, tenant_id: int, events: list[list[QueryRecord]], until: float) -> None:
        self.tenant_id = tenant_id
        self.events = events
        self.until = until
        self.index = 0
        self.outstanding = 0
        # Baseline think gap before each event (clamped at zero).
        self.gaps: list[float] = []
        previous_finish: Optional[float] = None
        for event in events:
            first_submit = event[0].submit_time_s
            if previous_finish is None:
                self.gaps.append(0.0)
            else:
                self.gaps.append(max(0.0, first_submit - previous_finish))
            previous_finish = max(r.finish_time_s for r in event)

    def current_event(self) -> list[QueryRecord]:
        return self.events[self.index]

    def has_more(self) -> bool:
        return self.index < len(self.events)


@dataclass
class RuntimeReport:
    """Everything observed while replaying one group."""

    group_name: str
    sla: SLAReport
    rt_ttp_samples: list[tuple[float, float]]
    scaling_actions: list[ScalingAction]
    queries_submitted: int
    queries_completed: int
    overflow_queries: int
    trace: TraceRecorder = field(repr=False, default_factory=TraceRecorder)
    queries_retried: int = 0
    queries_failed: int = 0
    failovers: int = 0
    fault_records: list[FaultRecord] = field(default_factory=list)

    def rt_ttp_min(self) -> float:
        """Lowest RT-TTP sample observed."""
        if not self.rt_ttp_samples:
            return 1.0
        return min(v for _, v in self.rt_ttp_samples)


class GroupRuntime:
    """Replays tenant logs against one deployed tenant group."""

    def __init__(
        self,
        deployed: DeployedGroup,
        logs: Mapping[int, TenantLog],
        simulator: Simulator,
        provisioner: Provisioner,
        sla_fraction: float,
        monitor: Optional[GroupActivityMonitor] = None,
        router: Optional[QueryRouter] = None,
        scaling: Optional[ScalingPolicy] = None,
        monitor_interval_s: float = 10 * MINUTE,
        trace: Optional[TraceRecorder] = None,
        closed_loop: bool = False,
        observer: Optional[Observer] = None,
        fault: Optional[RetryPolicy] = None,
        health: Optional["HealthManager"] = None,
        fault_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not (0 < sla_fraction <= 1):
            raise DeploymentError("sla_fraction must be in (0, 1]")
        if monitor_interval_s <= 0:
            raise DeploymentError("monitor_interval_s must be positive")
        self._deployed = deployed
        self._logs = dict(logs)
        missing = set(deployed.deployment.placement.tenant_ids) - set(self._logs)
        if missing:
            raise DeploymentError(f"logs missing for tenants {sorted(missing)[:5]}")
        self._sim = simulator
        self._provisioner = provisioner
        self._sla_fraction = sla_fraction
        self._monitor = monitor if monitor is not None else GroupActivityMonitor(
            deployed.group_name,
            deployed.deployment.design.num_instances,
            start_time=simulator.now,
        )
        self._router = router if router is not None else TDDRouter(deployed.instances)
        self._scaling = scaling if scaling is not None else DisabledScaling()
        self._interval = monitor_interval_s
        self._trace = trace if trace is not None else TraceRecorder()
        self._sla_records: list[SLARecord] = []
        self._rt_ttp_samples: list[tuple[float, float]] = []
        self._submitted = 0
        self._completed = 0
        self._overflow = 0
        self._inflight: dict[tuple[str, int], QueryRecord] = {}
        # Fault-tolerance plane: retry policy, attempt counts, park queue.
        # All per-record dicts are keyed by ``id(record)`` (records live for
        # the whole replay, so identities are stable) like _record_chain.
        self._fault = fault if fault is not None else DEFAULT_RETRY_POLICY
        self._fault_rng = fault_rng
        self._health = health
        self._attempts: dict[int, int] = {}
        self._first_submit: dict[int, float] = {}
        self._failed_instance: dict[int, str] = {}
        self._parked: dict[int, tuple[int, QueryRecord]] = {}
        self._park_deadline: dict[int, ScheduledEvent] = {}
        self._retried = 0
        self._failed_count = 0
        self._failovers = 0
        self._fault_records: list[FaultRecord] = []
        if health is not None:
            health.on_recover(self._on_instance_recovered)
        for spec in deployed.deployment.tenants:
            self._monitor.register_tenant(spec.tenant_id, spec.nodes_requested)
        self._wire_completions(deployed.instances)
        self._wired: set[MPPDBInstance] = set(deployed.instances)
        self._scheduled = False
        self._closed_loop = bool(closed_loop)
        # Closed-loop bookkeeping: record identity -> its event chain.
        self._record_chain: dict[int, "_ClosedLoopChain"] = {}
        self._observer = observer if observer is not None else NULL_OBSERVER
        # Query-lifecycle spans, keyed like _record_chain by record identity.
        self._record_span: dict[int, Span] = {}
        if self._observer.enabled:
            self._monitor.observe_with(self._observer)
            for instance in self._wired:
                instance.engine.observe_with(self._observer, instance.name)

    @property
    def monitor(self) -> GroupActivityMonitor:
        """The group's activity monitor."""
        return self._monitor

    @property
    def router(self) -> QueryRouter:
        """The group's query router."""
        return self._router

    def _wire_completions(self, instances: Sequence[MPPDBInstance]) -> None:
        for instance in instances:
            self._wire_instance(instance)

    def _wire_instance(self, instance: MPPDBInstance) -> None:
        def _done(execution: QueryExecution, _instance: MPPDBInstance = instance) -> None:
            key = (_instance.name, execution.query_id)
            record = self._inflight.pop(key, None)
            if record is None:
                return
            rid = id(record)
            finish = execution.finish_time if execution.finish_time is not None else 0.0
            self._completed += 1
            self._monitor.on_query_finish(execution.tenant_id, finish)
            # A retried query's observed latency spans from its *first*
            # submission, so retry backoff honestly counts against the SLA.
            first = self._first_submit.pop(rid, execution.submit_time)
            self._attempts.pop(rid, None)
            self._failed_instance.pop(rid, None)
            sla_record = SLARecord(
                tenant_id=execution.tenant_id,
                group_name=self._deployed.group_name,
                instance_name=_instance.name,
                template=record.template,
                submit_time_s=record.submit_time_s,
                baseline_latency_s=record.latency_s,
                observed_latency_s=finish - first,
            )
            self._sla_records.append(sla_record)
            self._observe_completion(record, sla_record, finish)
            self._on_record_complete(record, finish)

        def _aborted(execution: QueryExecution, _instance: MPPDBInstance = instance) -> None:
            self._on_abort(execution, _instance)

        instance.engine.on_complete(_done)
        instance.engine.on_abort(_aborted)

    def _submit(self, tenant_id: int, record: QueryRecord, time: float) -> None:
        spec = self._deployed.deployment.tenant(tenant_id)
        rid = id(record)
        observer = self._observer
        group = self._deployed.group_name
        if rid not in self._first_submit:
            # First attempt: submission metrics and the lifecycle span are
            # created exactly once, however many retries follow.
            self._first_submit[rid] = time
            if observer.enabled:
                observer.queries_submitted.labels(group=group).inc(time)
                span = observer.tracer.start_span(
                    "query",
                    time,
                    kind="query",
                    group=group,
                    tenant=tenant_id,
                    template=record.template,
                )
                span.add_event(time, "submit")
                self._record_span[rid] = span
        try:
            instance = self._router.route(tenant_id)
        except NoHealthyInstanceError:
            # Graceful degradation: every hosting replica is degraded, down
            # or loading — queue the query until an instance recovers.
            self._park(tenant_id, record, time)
            return
        deadline_handle = self._park_deadline.pop(rid, None)
        if deadline_handle is not None:
            self._sim.cancel(deadline_handle)
        self._attempts[rid] = attempt = self._attempts.get(rid, 0) + 1
        failed_from = self._failed_instance.pop(rid, None)
        if instance not in self._wired:
            self._wire_instance(instance)
            self._wired.add(instance)
            if self._observer.enabled:
                instance.engine.observe_with(self._observer, instance.name)
        span = self._record_span.get(rid)
        if failed_from is not None and instance.name != failed_from:
            self._failovers += 1
            if observer.enabled:
                observer.failovers.labels(group=group).inc(time)
            if span is not None:
                span.add_event(
                    time, "failover", failed=failed_from, survivor=instance.name
                )
        if observer.enabled:
            # Classify and trace against the pre-submit state the router saw.
            outcome = classify_decision(self._router, tenant_id, instance)
            observer.routing_decisions.labels(group=group, outcome=outcome).inc(time)
            if span is not None:
                span.add_event(
                    time, "route", instance=instance.name, outcome=outcome, attempt=attempt
                )
        if instance is self._router.tuning_instance and instance.engine.busy and (
            tenant_id not in instance.active_tenants
        ):
            self._overflow += 1
            self._trace.record(
                time,
                "overflow-to-tuning",
                tenant=tenant_id,
                concurrency=instance.engine.concurrency,
            )
            if observer.enabled:
                observer.queries_overflow.labels(group=self._deployed.group_name).inc(time)
        template = template_by_name(record.template)
        work = (
            template.dedicated_latency_s(spec.data_gb, instance.parallelism)
            / instance.speed_factor
        )
        self._monitor.on_query_start(tenant_id, time)
        execution = instance.submit_query(tenant_id, work, label=record.template)
        if span is not None:
            span.add_event(
                time,
                "admit",
                instance=instance.name,
                work_s=round(work, 6),
                concurrency=instance.engine.concurrency,
            )
            span.add_event(time, "execute")
        if execution.finished:
            # Degenerate zero-work query: completion callback already ran
            # (without a registered record), so settle the books here.
            self._completed += 1
            self._monitor.on_query_finish(tenant_id, time)
            first = self._first_submit.pop(rid, time)
            self._attempts.pop(rid, None)
            self._failed_instance.pop(rid, None)
            sla_record = SLARecord(
                tenant_id=tenant_id,
                group_name=self._deployed.group_name,
                instance_name=instance.name,
                template=record.template,
                submit_time_s=record.submit_time_s,
                baseline_latency_s=record.latency_s,
                observed_latency_s=time - first,
            )
            self._sla_records.append(sla_record)
            self._observe_completion(record, sla_record, time)
            self._on_record_complete(record, time)
        else:
            self._inflight[(instance.name, execution.query_id)] = record

    def _schedule_closed_loop(self, tenant_id: int, log: TenantLog, until: float) -> int:
        """Build per-user event chains and schedule each chain's first event."""
        per_user: dict[int, list[QueryRecord]] = {}
        for record in log.records:
            per_user.setdefault(record.user, []).append(record)
        count = 0
        for user, records in sorted(per_user.items()):
            events: list[list[QueryRecord]] = []
            for record in records:
                same_batch = (
                    events
                    and record.batch_id >= 0
                    and events[-1][0].batch_id == record.batch_id
                )
                if same_batch:
                    events[-1].append(record)
                else:
                    events.append([record])
            chain = _ClosedLoopChain(tenant_id, events, until)
            count += sum(
                len(e) for e in events if e[0].submit_time_s < until
            )
            first_time = events[0][0].submit_time_s
            if first_time < until:
                self._sim.schedule(
                    first_time,
                    lambda t, _chain=chain: self._submit_event(_chain, t),
                    label="closed-loop-event",
                )
        return count

    def _submit_event(self, chain: _ClosedLoopChain, time: float) -> None:
        """Submit every record of the chain's current event."""
        event = chain.current_event()
        base = event[0].submit_time_s
        chain.outstanding = len(event)
        for record in event:
            self._record_chain[id(record)] = chain
            offset = record.submit_time_s - base
            if offset <= 0:
                self._submit(chain.tenant_id, record, time)
            else:
                self._sim.schedule(
                    time + offset,
                    lambda t, _r=record, _c=chain: self._submit(_c.tenant_id, _r, t),
                    label="closed-loop-batch",
                )

    def _on_record_complete(self, record: QueryRecord, time: float) -> None:
        """Advance the record's closed-loop chain, if any."""
        chain = self._record_chain.pop(id(record), None)
        if chain is None:
            return
        chain.outstanding -= 1
        if chain.outstanding > 0:
            return
        chain.index += 1
        if not chain.has_more():
            return
        next_time = time + chain.gaps[chain.index]
        if next_time < chain.until:
            self._sim.schedule(
                next_time,
                lambda t, _chain=chain: self._submit_event(_chain, t),
                label="closed-loop-event",
            )

    def _on_abort(self, execution: QueryExecution, instance: MPPDBInstance) -> None:
        """An instance failure killed this in-flight query; retry or fail.

        The monitor sees a finish (the query is no longer running), then
        the record is either rescheduled with capped exponential backoff in
        sim-time or — after ``max_attempts`` submissions — surfaced as a
        typed :class:`~repro.core.fault.FaultRecord`.  Retried submissions
        do NOT increment ``queries_submitted``; the completion that
        eventually lands settles against the first submission's clock.
        """
        key = (instance.name, execution.query_id)
        record = self._inflight.pop(key, None)
        if record is None:
            return
        now = self._sim.now
        rid = id(record)
        self._monitor.on_query_finish(execution.tenant_id, now)
        self._failed_instance[rid] = instance.name
        attempt = self._attempts.get(rid, 1)
        span = self._record_span.get(rid)
        if span is not None:
            span.add_event(
                now,
                "abort",
                instance=instance.name,
                attempt=attempt,
                remaining_s=round(execution.remaining_work_s, 6),
            )
        if attempt >= self._fault.max_attempts:
            self._fail_record(
                execution.tenant_id, record, now, REASON_RETRIES_EXHAUSTED
            )
            return
        delay = self._fault.backoff_s(attempt, self._fault_rng)
        self._retried += 1
        if self._observer.enabled:
            self._observer.query_retries.labels(group=self._deployed.group_name).inc(now)
        if span is not None:
            span.add_event(now, "retry", delay_s=round(delay, 6), attempt=attempt + 1)
        self._trace.record(
            now, "query-retry", tenant=execution.tenant_id, attempt=attempt + 1, delay_s=delay
        )
        self._sim.schedule_after(
            delay,
            lambda t, _tid=execution.tenant_id, _r=record: self._submit(_tid, _r, t),
            label="query-retry",
        )

    def _park(self, tenant_id: int, record: QueryRecord, time: float) -> None:
        """Queue a query for which no healthy replica exists right now.

        Parked queries are resubmitted when the health manager reports an
        instance recovery; each park episode carries a deadline after which
        the query fails with ``deadline-exceeded`` (graceful degradation
        for ``R = 1`` groups: no crash, a typed failure).
        """
        rid = id(record)
        self._parked[rid] = (tenant_id, record)
        span = self._record_span.get(rid)
        if span is not None:
            span.add_event(time, "park")
        self._trace.record(time, "query-parked", tenant=tenant_id)
        if rid not in self._park_deadline:
            self._park_deadline[rid] = self._sim.schedule(
                time + self._fault.queue_deadline_s,
                lambda t, _tid=tenant_id, _r=record: self._park_expired(_tid, _r, t),
                label="fault-deadline",
            )

    def _park_expired(self, tenant_id: int, record: QueryRecord, time: float) -> None:
        """A parked query's deadline hit before any replica recovered."""
        rid = id(record)
        self._park_deadline.pop(rid, None)
        if self._parked.pop(rid, None) is None:
            return
        self._fail_record(tenant_id, record, time, REASON_DEADLINE_EXCEEDED)

    def _on_instance_recovered(self, instance: MPPDBInstance, time: float) -> None:
        """Health-manager recovery: drain the park queue through the router."""
        if not self._parked:
            return
        pending = list(self._parked.items())
        self._parked.clear()
        for _rid, (tenant_id, record) in pending:
            self._submit(tenant_id, record, time)

    def _fail_record(
        self, tenant_id: int, record: QueryRecord, time: float, reason: str
    ) -> None:
        """Surface a query that fault handling could not save."""
        rid = id(record)
        attempts = self._attempts.pop(rid, 0)
        self._first_submit.pop(rid, None)
        self._failed_instance.pop(rid, None)
        self._fault_records.append(
            FaultRecord(
                tenant_id=tenant_id,
                group_name=self._deployed.group_name,
                template=record.template,
                submit_time_s=record.submit_time_s,
                failed_time_s=time,
                reason=reason,
                attempts=attempts,
            )
        )
        self._failed_count += 1
        self._trace.record(
            time, "query-failed", tenant=tenant_id, reason=reason, attempts=attempts
        )
        observer = self._observer
        if observer.enabled:
            group = self._deployed.group_name
            observer.queries_failed.labels(group=group).inc(time)
            observer.sla_violations.labels(group=group).inc(time)
        span = self._record_span.pop(rid, None)
        if span is not None:
            span.add_event(time, "failed", reason=reason, attempts=attempts)
            span.end(time, status="failed")
        self._on_record_complete(record, time)

    def _observe_completion(self, record: QueryRecord, sla_record: SLARecord, time: float) -> None:
        """Emit terminal-state metrics and close the query's span."""
        observer = self._observer
        if not observer.enabled:
            return
        group = self._deployed.group_name
        observer.queries_completed.labels(group=group).inc(time)
        observer.query_latency.labels(group=group).observe(time, sla_record.observed_latency_s)
        observer.normalized_latency.labels(group=group).observe(time, sla_record.normalized)
        status = "complete" if sla_record.met else "violate"
        if status == "violate":
            observer.sla_violations.labels(group=group).inc(time)
        span = self._record_span.pop(id(record), None)
        if span is not None:
            span.set_attr("observed_latency_s", sla_record.observed_latency_s)
            span.set_attr("normalized", round(sla_record.normalized, 9))
            span.add_event(time, status)
            span.end(time, status=status)

    def finalize_observation(self, time: float) -> None:
        """Force-close query spans still open at the replay horizon.

        Queries in flight when the horizon hits never reach a terminal
        completion callback, so their spans are ended with status
        ``"inflight"`` — every exported span chain is complete either way.
        Idempotent; called by :meth:`run` and by the service after a
        bounded ``Simulator.run``.
        """
        if not self._record_span:
            return
        for span in self._record_span.values():
            span.add_event(time, STATUS_INFLIGHT)
            span.end(time, status=STATUS_INFLIGHT)
        self._record_span.clear()

    def _periodic_check(self, time: float) -> None:
        rt_ttp = self._monitor.rt_ttp(time, self._scaling.window_s)
        self._rt_ttp_samples.append((time, rt_ttp))
        if self._observer.enabled:
            self._observer.rt_ttp.labels(group=self._deployed.group_name).set(time, rt_ttp)
        self._scaling.maybe_scale(
            time,
            self._deployed,
            self._monitor,
            self._router,
            self._provisioner,
            self._sla_fraction,
            trace=self._trace,
            observer=self._observer,
        )

    def schedule(self, until: float) -> int:
        """Schedule all log submissions and periodic checks up to ``until``.

        Returns the number of queries scheduled (for closed-loop mode, the
        number the baseline timeline would submit — slow runs may defer
        some past ``until``).  Call once, then run the simulator (directly
        or via :meth:`run`).
        """
        if self._scheduled:
            raise DeploymentError("schedule() called twice")
        self._scheduled = True
        count = 0
        for tenant_id, log in sorted(self._logs.items()):
            if tenant_id not in self._deployed.deployment.placement.tenant_ids:
                continue
            if self._closed_loop:
                count += self._schedule_closed_loop(tenant_id, log, until)
                continue
            for record in log.records:
                if record.submit_time_s >= until:
                    continue

                def _cb(time: float, _tenant: int = tenant_id, _record: QueryRecord = record) -> None:
                    self._submit(_tenant, _record, time)

                self._sim.schedule(record.submit_time_s, _cb, label="query-submit")
                count += 1
        self._submitted = count

        def _tick(time: float) -> None:
            self._periodic_check(time)
            next_time = time + self._interval
            if next_time <= until:
                self._sim.schedule(next_time, _tick, label="monitor-tick")

        first = self._sim.now + self._interval
        if first <= until:
            self._sim.schedule(first, _tick, label="monitor-tick")
        return count

    def run(self, until: float) -> RuntimeReport:
        """Schedule (if needed) and run the replay to ``until``."""
        if not self._scheduled:
            self.schedule(until)
        self._sim.run(until=until)
        self.finalize_observation(self._sim.now)
        return self.report()

    def report(self) -> RuntimeReport:
        """Snapshot of everything observed so far."""
        return RuntimeReport(
            group_name=self._deployed.group_name,
            sla=SLAReport(self._sla_records),
            rt_ttp_samples=list(self._rt_ttp_samples),
            scaling_actions=list(self._scaling.actions),
            queries_submitted=self._submitted,
            queries_completed=self._completed,
            overflow_queries=self._overflow,
            trace=self._trace,
            queries_retried=self._retried,
            queries_failed=self._failed_count,
            failovers=self._failovers,
            fault_records=list(self._fault_records),
        )
