"""Run-time replay: drive composed tenant logs through a deployed group.

This is the piece that turns the static deployment into the live system of
Figure 7.7: each logged query is submitted at its recorded time, the
Algorithm 1 router picks an instance, the instance's fair-share engine
produces the observed latency, the Tenant Activity Monitor tracks the
group's concurrent-active count and RT-TTP, and the scaling policy reacts
when the RT-TTP dips below ``P``.

Two replay disciplines are supported:

* **open-loop** (default) — submissions happen at their logged times even
  when earlier queries run slow; simple and reproducible.
* **closed-loop** (``closed_loop=True``) — the §7.1 user semantics are
  honoured during replay: each user's next event (single query or whole
  batch) waits for the previous one to *complete* plus the original think
  gap, so slowdowns push later submissions back exactly as the paper's
  imitated tenants would experience them.

SLA baselines: a logged query's before-consolidation latency *is* its SLA
(§1.1), so the baseline is the latency recorded during Step 1 log
collection on the tenant's dedicated, exactly-sized MPPDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..errors import DeploymentError
from ..mppdb.execution import QueryExecution
from ..mppdb.instance import MPPDBInstance
from ..mppdb.provisioning import Provisioner
from ..obs.observer import NULL_OBSERVER, Observer
from ..obs.tracing import STATUS_INFLIGHT, Span
from ..simulation.engine import Simulator
from ..simulation.trace import TraceRecorder
from ..units import MINUTE
from ..workload.logs import QueryRecord, TenantLog
from ..workload.queries import template_by_name
from .master import DeployedGroup
from .monitor import GroupActivityMonitor
from .routing import QueryRouter, TDDRouter, classify_decision
from .scaling import DisabledScaling, ScalingAction, ScalingPolicy
from .sla import SLARecord, SLAReport

__all__ = ["GroupRuntime", "RuntimeReport"]


class _ClosedLoopChain:
    """One user's closed-loop event chain.

    An *event* is a single query or one batch (records sharing a
    ``batch_id``), matching §7.1's user behaviour: "The user will not take
    any action until the single query or the query batch is complete",
    then thinks for the gap observed in the baseline log.
    """

    def __init__(self, tenant_id: int, events: list[list[QueryRecord]], until: float) -> None:
        self.tenant_id = tenant_id
        self.events = events
        self.until = until
        self.index = 0
        self.outstanding = 0
        # Baseline think gap before each event (clamped at zero).
        self.gaps: list[float] = []
        previous_finish: Optional[float] = None
        for event in events:
            first_submit = event[0].submit_time_s
            if previous_finish is None:
                self.gaps.append(0.0)
            else:
                self.gaps.append(max(0.0, first_submit - previous_finish))
            previous_finish = max(r.finish_time_s for r in event)

    def current_event(self) -> list[QueryRecord]:
        return self.events[self.index]

    def has_more(self) -> bool:
        return self.index < len(self.events)


@dataclass
class RuntimeReport:
    """Everything observed while replaying one group."""

    group_name: str
    sla: SLAReport
    rt_ttp_samples: list[tuple[float, float]]
    scaling_actions: list[ScalingAction]
    queries_submitted: int
    queries_completed: int
    overflow_queries: int
    trace: TraceRecorder = field(repr=False, default_factory=TraceRecorder)

    def rt_ttp_min(self) -> float:
        """Lowest RT-TTP sample observed."""
        if not self.rt_ttp_samples:
            return 1.0
        return min(v for _, v in self.rt_ttp_samples)


class GroupRuntime:
    """Replays tenant logs against one deployed tenant group."""

    def __init__(
        self,
        deployed: DeployedGroup,
        logs: Mapping[int, TenantLog],
        simulator: Simulator,
        provisioner: Provisioner,
        sla_fraction: float,
        monitor: Optional[GroupActivityMonitor] = None,
        router: Optional[QueryRouter] = None,
        scaling: Optional[ScalingPolicy] = None,
        monitor_interval_s: float = 10 * MINUTE,
        trace: Optional[TraceRecorder] = None,
        closed_loop: bool = False,
        observer: Optional[Observer] = None,
    ) -> None:
        if not (0 < sla_fraction <= 1):
            raise DeploymentError("sla_fraction must be in (0, 1]")
        if monitor_interval_s <= 0:
            raise DeploymentError("monitor_interval_s must be positive")
        self._deployed = deployed
        self._logs = dict(logs)
        missing = set(deployed.deployment.placement.tenant_ids) - set(self._logs)
        if missing:
            raise DeploymentError(f"logs missing for tenants {sorted(missing)[:5]}")
        self._sim = simulator
        self._provisioner = provisioner
        self._sla_fraction = sla_fraction
        self._monitor = monitor if monitor is not None else GroupActivityMonitor(
            deployed.group_name,
            deployed.deployment.design.num_instances,
            start_time=simulator.now,
        )
        self._router = router if router is not None else TDDRouter(deployed.instances)
        self._scaling = scaling if scaling is not None else DisabledScaling()
        self._interval = monitor_interval_s
        self._trace = trace if trace is not None else TraceRecorder()
        self._sla_records: list[SLARecord] = []
        self._rt_ttp_samples: list[tuple[float, float]] = []
        self._submitted = 0
        self._completed = 0
        self._overflow = 0
        self._inflight: dict[tuple[str, int], QueryRecord] = {}
        for spec in deployed.deployment.tenants:
            self._monitor.register_tenant(spec.tenant_id, spec.nodes_requested)
        self._wire_completions(deployed.instances)
        self._wired: set[MPPDBInstance] = set(deployed.instances)
        self._scheduled = False
        self._closed_loop = bool(closed_loop)
        # Closed-loop bookkeeping: record identity -> its event chain.
        self._record_chain: dict[int, "_ClosedLoopChain"] = {}
        self._observer = observer if observer is not None else NULL_OBSERVER
        # Query-lifecycle spans, keyed like _record_chain by record identity.
        self._record_span: dict[int, Span] = {}
        if self._observer.enabled:
            self._monitor.observe_with(self._observer)
            for instance in self._wired:
                instance.engine.observe_with(self._observer, instance.name)

    @property
    def monitor(self) -> GroupActivityMonitor:
        """The group's activity monitor."""
        return self._monitor

    @property
    def router(self) -> QueryRouter:
        """The group's query router."""
        return self._router

    def _wire_completions(self, instances: Sequence[MPPDBInstance]) -> None:
        for instance in instances:
            self._wire_instance(instance)

    def _wire_instance(self, instance: MPPDBInstance) -> None:
        def _done(execution: QueryExecution, _instance: MPPDBInstance = instance) -> None:
            key = (_instance.name, execution.query_id)
            record = self._inflight.pop(key, None)
            if record is None:
                return
            self._completed += 1
            self._monitor.on_query_finish(execution.tenant_id, execution.finish_time)
            sla_record = SLARecord(
                tenant_id=execution.tenant_id,
                group_name=self._deployed.group_name,
                instance_name=_instance.name,
                template=record.template,
                submit_time_s=record.submit_time_s,
                baseline_latency_s=record.latency_s,
                observed_latency_s=execution.latency_s,
            )
            self._sla_records.append(sla_record)
            self._observe_completion(record, sla_record, execution.finish_time)
            self._on_record_complete(record, execution.finish_time)

        instance.engine.on_complete(_done)

    def _submit(self, tenant_id: int, record: QueryRecord, time: float) -> None:
        spec = self._deployed.deployment.tenant(tenant_id)
        instance = self._router.route(tenant_id)
        if instance not in self._wired:
            self._wire_instance(instance)
            self._wired.add(instance)
            if self._observer.enabled:
                instance.engine.observe_with(self._observer, instance.name)
        observer = self._observer
        span: Optional[Span] = None
        if observer.enabled:
            # Classify and trace against the pre-submit state the router saw.
            group = self._deployed.group_name
            outcome = classify_decision(self._router, tenant_id, instance)
            observer.queries_submitted.labels(group=group).inc(time)
            observer.routing_decisions.labels(group=group, outcome=outcome).inc(time)
            span = observer.tracer.start_span(
                "query",
                time,
                kind="query",
                group=group,
                tenant=tenant_id,
                template=record.template,
            )
            span.add_event(time, "submit")
            span.add_event(time, "route", instance=instance.name, outcome=outcome)
            self._record_span[id(record)] = span
        if instance is self._router.tuning_instance and instance.engine.busy and (
            tenant_id not in instance.active_tenants
        ):
            self._overflow += 1
            self._trace.record(
                time,
                "overflow-to-tuning",
                tenant=tenant_id,
                concurrency=instance.engine.concurrency,
            )
            if observer.enabled:
                observer.queries_overflow.labels(group=self._deployed.group_name).inc(time)
        template = template_by_name(record.template)
        work = (
            template.dedicated_latency_s(spec.data_gb, instance.parallelism)
            / instance.speed_factor
        )
        self._monitor.on_query_start(tenant_id, time)
        execution = instance.submit_query(tenant_id, work, label=record.template)
        if span is not None:
            span.add_event(
                time,
                "admit",
                instance=instance.name,
                work_s=round(work, 6),
                concurrency=instance.engine.concurrency,
            )
            span.add_event(time, "execute")
        if execution.finished:
            # Degenerate zero-work query: completion callback already ran
            # (without a registered record), so settle the books here.
            self._completed += 1
            self._monitor.on_query_finish(tenant_id, time)
            sla_record = SLARecord(
                tenant_id=tenant_id,
                group_name=self._deployed.group_name,
                instance_name=instance.name,
                template=record.template,
                submit_time_s=record.submit_time_s,
                baseline_latency_s=record.latency_s,
                observed_latency_s=0.0,
            )
            self._sla_records.append(sla_record)
            self._observe_completion(record, sla_record, time)
            self._on_record_complete(record, time)
        else:
            self._inflight[(instance.name, execution.query_id)] = record

    def _schedule_closed_loop(self, tenant_id: int, log: TenantLog, until: float) -> int:
        """Build per-user event chains and schedule each chain's first event."""
        per_user: dict[int, list[QueryRecord]] = {}
        for record in log.records:
            per_user.setdefault(record.user, []).append(record)
        count = 0
        for user, records in sorted(per_user.items()):
            events: list[list[QueryRecord]] = []
            for record in records:
                same_batch = (
                    events
                    and record.batch_id >= 0
                    and events[-1][0].batch_id == record.batch_id
                )
                if same_batch:
                    events[-1].append(record)
                else:
                    events.append([record])
            chain = _ClosedLoopChain(tenant_id, events, until)
            count += sum(
                len(e) for e in events if e[0].submit_time_s < until
            )
            first_time = events[0][0].submit_time_s
            if first_time < until:
                self._sim.schedule(
                    first_time,
                    lambda t, _chain=chain: self._submit_event(_chain, t),
                    label="closed-loop-event",
                )
        return count

    def _submit_event(self, chain: _ClosedLoopChain, time: float) -> None:
        """Submit every record of the chain's current event."""
        event = chain.current_event()
        base = event[0].submit_time_s
        chain.outstanding = len(event)
        for record in event:
            self._record_chain[id(record)] = chain
            offset = record.submit_time_s - base
            if offset <= 0:
                self._submit(chain.tenant_id, record, time)
            else:
                self._sim.schedule(
                    time + offset,
                    lambda t, _r=record, _c=chain: self._submit(_c.tenant_id, _r, t),
                    label="closed-loop-batch",
                )

    def _on_record_complete(self, record: QueryRecord, time: float) -> None:
        """Advance the record's closed-loop chain, if any."""
        chain = self._record_chain.pop(id(record), None)
        if chain is None:
            return
        chain.outstanding -= 1
        if chain.outstanding > 0:
            return
        chain.index += 1
        if not chain.has_more():
            return
        next_time = time + chain.gaps[chain.index]
        if next_time < chain.until:
            self._sim.schedule(
                next_time,
                lambda t, _chain=chain: self._submit_event(_chain, t),
                label="closed-loop-event",
            )

    def _observe_completion(self, record: QueryRecord, sla_record: SLARecord, time: float) -> None:
        """Emit terminal-state metrics and close the query's span."""
        observer = self._observer
        if not observer.enabled:
            return
        group = self._deployed.group_name
        observer.queries_completed.labels(group=group).inc(time)
        observer.query_latency.labels(group=group).observe(time, sla_record.observed_latency_s)
        observer.normalized_latency.labels(group=group).observe(time, sla_record.normalized)
        status = "complete" if sla_record.met else "violate"
        if status == "violate":
            observer.sla_violations.labels(group=group).inc(time)
        span = self._record_span.pop(id(record), None)
        if span is not None:
            span.set_attr("observed_latency_s", sla_record.observed_latency_s)
            span.set_attr("normalized", round(sla_record.normalized, 9))
            span.add_event(time, status)
            span.end(time, status=status)

    def finalize_observation(self, time: float) -> None:
        """Force-close query spans still open at the replay horizon.

        Queries in flight when the horizon hits never reach a terminal
        completion callback, so their spans are ended with status
        ``"inflight"`` — every exported span chain is complete either way.
        Idempotent; called by :meth:`run` and by the service after a
        bounded ``Simulator.run``.
        """
        if not self._record_span:
            return
        for span in self._record_span.values():
            span.add_event(time, STATUS_INFLIGHT)
            span.end(time, status=STATUS_INFLIGHT)
        self._record_span.clear()

    def _periodic_check(self, time: float) -> None:
        rt_ttp = self._monitor.rt_ttp(time, self._scaling.window_s)
        self._rt_ttp_samples.append((time, rt_ttp))
        if self._observer.enabled:
            self._observer.rt_ttp.labels(group=self._deployed.group_name).set(time, rt_ttp)
        self._scaling.maybe_scale(
            time,
            self._deployed,
            self._monitor,
            self._router,
            self._provisioner,
            self._sla_fraction,
            trace=self._trace,
            observer=self._observer,
        )

    def schedule(self, until: float) -> int:
        """Schedule all log submissions and periodic checks up to ``until``.

        Returns the number of queries scheduled (for closed-loop mode, the
        number the baseline timeline would submit — slow runs may defer
        some past ``until``).  Call once, then run the simulator (directly
        or via :meth:`run`).
        """
        if self._scheduled:
            raise DeploymentError("schedule() called twice")
        self._scheduled = True
        count = 0
        for tenant_id, log in sorted(self._logs.items()):
            if tenant_id not in self._deployed.deployment.placement.tenant_ids:
                continue
            if self._closed_loop:
                count += self._schedule_closed_loop(tenant_id, log, until)
                continue
            for record in log.records:
                if record.submit_time_s >= until:
                    continue

                def _cb(time: float, _tenant: int = tenant_id, _record: QueryRecord = record) -> None:
                    self._submit(_tenant, _record, time)

                self._sim.schedule(record.submit_time_s, _cb, label="query-submit")
                count += 1
        self._submitted = count

        def _tick(time: float) -> None:
            self._periodic_check(time)
            next_time = time + self._interval
            if next_time <= until:
                self._sim.schedule(next_time, _tick, label="monitor-tick")

        first = self._sim.now + self._interval
        if first <= until:
            self._sim.schedule(first, _tick, label="monitor-tick")
        return count

    def run(self, until: float) -> RuntimeReport:
        """Schedule (if needed) and run the replay to ``until``."""
        if not self._scheduled:
            self.schedule(until)
        self._sim.run(until=until)
        self.finalize_observation(self._sim.now)
        return self.report()

    def report(self) -> RuntimeReport:
        """Snapshot of everything observed so far."""
        return RuntimeReport(
            group_name=self._deployed.group_name,
            sla=SLAReport(self._sla_records),
            rt_ttp_samples=list(self._rt_ttp_samples),
            scaling_actions=list(self._scaling.actions),
            queries_submitted=self._submitted,
            queries_completed=self._completed,
            overflow_queries=self._overflow,
            trace=self._trace,
        )
