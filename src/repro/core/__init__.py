"""Thrifty core: Tenant-Driven Design and the run-time service (Ch. 3–6).

* :mod:`~repro.core.tdd` — cluster design + tenant placement for one tenant
  group (Chapter 4.1–4.2): ``A`` node groups, one MPPDB each, every MPPDB
  hosting every tenant of the group (replication factor = A).
* :mod:`~repro.core.routing` — the Algorithm 1 query router plus ablation
  policies.
* :mod:`~repro.core.advisor` / :mod:`~repro.core.master` — the Deployment
  Advisor (grouping → deployment plan) and Deployment Master (apply the
  plan on the machine pool).
* :mod:`~repro.core.monitor` — the Tenant Activity Monitor: per-group
  concurrent-active-tenant tracking and RT-TTP over a sliding window.
* :mod:`~repro.core.scaling` — lightweight elastic scaling (Chapter 5.1)
  with over-active tenant identification, plus the pessimistic and
  disabled policies for ablation.
* :mod:`~repro.core.tuning` — manual tuning of the ``U`` parameter of the
  tuning MPPDB (Chapter 6).
* :mod:`~repro.core.sla` / :mod:`~repro.core.pricing` — normalized-latency
  SLA accounting and the per-node/active-usage pricing model.
* :mod:`~repro.core.runtime` / :mod:`~repro.core.service` — the replay
  engine driving composed logs through a deployed group, and the
  :class:`~repro.core.service.ThriftyService` facade tying it all together.
"""

from .advisor import DeploymentAdvisor
from .deployment import DeploymentPlan, GroupDeployment
from .fault import DEFAULT_RETRY_POLICY, FaultRecord, RetryPolicy
from .divergent import (
    DivergentDesign,
    DivergentDesigner,
    minimum_tuning_nodes_for_templates,
    template_serial_fraction,
)
from .heterogeneous import assign_node_classes, plan_speed_summary
from .master import DeployedGroup, DeploymentMaster
from .monitor import GroupActivityMonitor, TenantActivityMonitor
from .pricing import PricingModel, TenantInvoice
from .routing import (
    AlwaysTuningRouter,
    QueryRouter,
    RandomFreeRouter,
    RoundRobinRouter,
    TDDRouter,
)
from .runtime import GroupRuntime, RuntimeReport
from .security import AdjustableSecurityPolicy, SecurityScheme, secure_log
from .scaling import (
    DisabledScaling,
    LightweightScaling,
    ProactiveScaling,
    ScalingAction,
    WholeGroupScaling,
)
from .service import ServiceReport, ThriftyService
from .sla import SLARecord, SLAReport
from .tdd import ClusterDesign, TenantPlacement, design_for_group
from .tuning import ManualTuner, recommended_tuning_nodes

__all__ = [
    "DeploymentAdvisor",
    "DeploymentPlan",
    "GroupDeployment",
    "RetryPolicy",
    "FaultRecord",
    "DEFAULT_RETRY_POLICY",
    "DivergentDesign",
    "DivergentDesigner",
    "minimum_tuning_nodes_for_templates",
    "template_serial_fraction",
    "assign_node_classes",
    "plan_speed_summary",
    "DeployedGroup",
    "DeploymentMaster",
    "GroupActivityMonitor",
    "TenantActivityMonitor",
    "PricingModel",
    "TenantInvoice",
    "QueryRouter",
    "TDDRouter",
    "RandomFreeRouter",
    "RoundRobinRouter",
    "AlwaysTuningRouter",
    "GroupRuntime",
    "RuntimeReport",
    "AdjustableSecurityPolicy",
    "SecurityScheme",
    "secure_log",
    "ScalingAction",
    "LightweightScaling",
    "ProactiveScaling",
    "WholeGroupScaling",
    "DisabledScaling",
    "ServiceReport",
    "ThriftyService",
    "SLARecord",
    "SLAReport",
    "ClusterDesign",
    "TenantPlacement",
    "design_for_group",
    "ManualTuner",
    "recommended_tuning_nodes",
]
