"""Elastic scaling (Chapter 5.1) and its ablation policies.

At run-time, tenant activity may deviate from history.  When a group's
RT-TTP over the past 24 hours drops below ``P``, Thrifty reacts.  Scaling
up an MPPDB is heavyweight — bulk loading dominates (Table 5.1: ~14.5 h for
a 10-node / 1 TB group) and the monthly SLA "grace period" at 99.9 % is
only ~43 minutes — so the paper's *lightweight* approach starts a new MPPDB
for **only the over-active tenants**: their data is a fraction of the
group's, so the load completes in a fraction of the time (~5000 s in the
Figure 7.7 excerpt).

Over-active identification follows the paper's phrasing — "identify the
tenant(s) that are more active than the history indicated" — by greedily
evicting the tenants deviating most from their planned activity until the
window's TTP recovers; the paper's alternative formulation (re-run the
tenant-grouping algorithm on the group's members) is kept as
``identify_by_regrouping`` for comparison.

Policies:

* :class:`LightweightScaling` — the paper's approach.
* :class:`WholeGroupScaling` — the pessimistic strawman: add a full
  ``A + 1``-th MPPDB hosting every tenant (slow and expensive).
* :class:`DisabledScaling` — no reaction (Figure 7.7a/b's baseline).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import ScalingError
from ..mppdb.instance import MPPDBInstance
from ..mppdb.provisioning import Provisioner
from ..packing.livbp import LIVBPwFCProblem
from ..packing.two_step import pack_initial_group
from ..simulation.trace import TraceRecorder
from ..units import DAY, num_epochs
from ..workload.activity import ActivityItem
from .master import DeployedGroup
from .monitor import GroupActivityMonitor
from .routing import QueryRouter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.observer import Observer

__all__ = [
    "ScalingAction",
    "ScalingPolicy",
    "LightweightScaling",
    "WholeGroupScaling",
    "DisabledScaling",
]


@dataclass(frozen=True)
class ScalingAction:
    """A scale-up decision taken for one tenant group."""

    time: float
    group_name: str
    kind: str
    over_active: tuple[int, ...]
    instance_name: str
    expected_ready_time: float
    loaded_gb: float


class ScalingPolicy(abc.ABC):
    """Decides whether and how to scale a group when its RT-TTP drops."""

    def __init__(self, window_s: float = DAY, identification_epoch_s: float = 10.0) -> None:
        if window_s <= 0:
            raise ScalingError("window_s must be positive")
        if identification_epoch_s <= 0:
            raise ScalingError("identification_epoch_s must be positive")
        self.window_s = float(window_s)
        self.identification_epoch_s = float(identification_epoch_s)
        self._in_flight: set[str] = set()
        self._last_action: dict[str, float] = {}
        self.actions: list[ScalingAction] = []

    def maybe_scale(
        self,
        now: float,
        group: DeployedGroup,
        monitor: GroupActivityMonitor,
        router: QueryRouter,
        provisioner: Provisioner,
        sla_fraction: float,
        trace: Optional[TraceRecorder] = None,
        observer: Optional["Observer"] = None,
    ) -> Optional[ScalingAction]:
        """Check the trigger and, if firing, start a scale-up.

        At most one scale-up is in flight per group — starting a second
        MPPDB while the first is still loading would double-pay the
        heavyweight operation for the same deviation.
        """
        if group.group_name in self._in_flight:
            return None
        last = self._last_action.get(group.group_name)
        if last is not None and now - last < self.window_s:
            # The sliding window still contains pre-action history; give the
            # previous scale-up one full window to take effect.
            return None
        rt_ttp = monitor.rt_ttp(now, self.window_s)
        if not self._should_scale(now, group.group_name, rt_ttp, sla_fraction):
            return None
        action = self._scale(now, group, monitor, router, provisioner, sla_fraction)
        if action is not None:
            self._in_flight.add(group.group_name)
            # Cool down from the moment the new MPPDB is *ready*: until the
            # sliding window has fully rotated past the pre-exclusion
            # history, a low RT-TTP only restates the deviation already
            # being handled.
            self._last_action[group.group_name] = action.expected_ready_time
            self.actions.append(action)
            if trace is not None:
                trace.record(
                    now,
                    "elastic-scaling",
                    group=group.group_name,
                    policy=action.kind,
                    over_active=action.over_active,
                    ready=round(action.expected_ready_time, 1),
                    rt_ttp=round(rt_ttp, 5),
                )
            if observer is not None and observer.enabled:
                observer.scaling_actions.labels(
                    group=group.group_name, kind=action.kind
                ).inc(now)
                # The span covers the heavyweight part: trigger to the new
                # MPPDB's expected readiness (known up front — the load
                # model is deterministic).
                span = observer.tracer.start_span(
                    "scaling",
                    now,
                    kind="scaling",
                    group=group.group_name,
                    policy=action.kind,
                    over_active=action.over_active,
                    instance=action.instance_name,
                    loaded_gb=action.loaded_gb,
                    rt_ttp=round(rt_ttp, 5),
                )
                span.end(action.expected_ready_time)
        return action

    def _should_scale(self, now: float, group_name: str, rt_ttp: float, sla_fraction: float) -> bool:
        """The trigger: reactive policies fire once RT-TTP is below ``P``."""
        return rt_ttp < sla_fraction

    def _mark_done(self, group_name: str) -> None:
        self._in_flight.discard(group_name)

    @abc.abstractmethod
    def _scale(
        self,
        now: float,
        group: DeployedGroup,
        monitor: GroupActivityMonitor,
        router: QueryRouter,
        provisioner: Provisioner,
        sla_fraction: float,
    ) -> Optional[ScalingAction]:
        """Policy-specific scale-up; returns ``None`` to decline."""


class DisabledScaling(ScalingPolicy):
    """Never scales (Figure 7.7a/b)."""

    def _scale(
        self,
        now: float,
        group: DeployedGroup,
        monitor: GroupActivityMonitor,
        router: QueryRouter,
        provisioner: Provisioner,
        sla_fraction: float,
    ) -> Optional[ScalingAction]:
        return None


class LightweightScaling(ScalingPolicy):
    """The paper's policy: isolate only the over-active tenant(s).

    Parameters beyond the base policy's:

    historical_fraction:
        Optional per-tenant *historical* active fraction (from the
        activity matrix the Deployment Advisor planned on).  With it,
        identification follows the paper's phrasing — "identify the
        tenant(s) that are more active than the history indicated" — by
        evicting tenants in decreasing order of recent-to-historical
        activity ratio, stopping once the remaining tenants behave like
        their history (ratio <= ``over_activity_ratio``).  Without it,
        eviction falls back to most-recent-activity-first.
    over_activity_ratio:
        A tenant is *over-active* when its window activity exceeds its
        historical activity by this factor.  The default (2.5) clears the
        natural variance between a single workday window and the
        horizon-average history (weekends alone make a workday ~1.4x the
        average) while still catching runaway tenants (a taken-over tenant
        is typically 5-10x its history).
    """

    def __init__(
        self,
        window_s: float = DAY,
        identification_epoch_s: float = 10.0,
        historical_fraction: Optional[dict[int, float]] = None,
        over_activity_ratio: float = 2.5,
    ) -> None:
        super().__init__(window_s=window_s, identification_epoch_s=identification_epoch_s)
        if over_activity_ratio <= 1.0:
            raise ScalingError("over_activity_ratio must exceed 1.0")
        self.historical_fraction = dict(historical_fraction or {})
        self.over_activity_ratio = float(over_activity_ratio)

    def _deviation_ratio(self, item: ActivityItem, window_epochs: int) -> float:
        recent = item.active_epoch_count / max(window_epochs, 1)
        historical = self.historical_fraction.get(item.tenant_id)
        if historical is None or historical <= 0:
            # Unknown history: treat the recent level itself as deviation.
            return float("inf") if recent > 0 else 0.0
        return recent / historical

    def identify_over_active(
        self, now: float, group: DeployedGroup, monitor: GroupActivityMonitor, sla_fraction: float
    ) -> list[int]:
        """Tenants "more active than the history indicated" (Chapter 5.1).

        Greedy minimal removal: repeatedly evict the tenant deviating most
        from its history until the window's TTP is back at ``P`` or the
        remaining tenants all behave like their history.  This implements
        the paper's goal surgically; the literal re-grouping formulation
        (:meth:`identify_by_regrouping`) is kept for comparison but has a
        failure mode — a 24-hour weekday window has none of the weekend
        slack the original grouping relied on, so a literal re-pack also
        evicts well-behaved borderline tenants, and pinning those onto the
        single new MPPDB next to a runaway tenant manufactures exactly the
        concurrent execution TDD exists to avoid (see DESIGN.md §5).
        """
        start = max(0.0, now - self.window_s)
        items = monitor.activity_items(start, now, self.identification_epoch_s)
        if not items:
            return []
        d = num_epochs(max(now - start, self.identification_epoch_s), self.identification_epoch_s)
        r = monitor.replication_factor
        counts = np.zeros(d, dtype=np.int32)
        for item in items:
            counts[item.epochs] += 1
        remaining = {item.tenant_id: item for item in items}
        over_active: list[int] = []

        def ttp() -> float:
            return float(np.count_nonzero(counts <= r)) / d

        while ttp() + 1e-12 < sla_fraction and remaining:
            candidate = max(
                remaining.values(),
                key=lambda it: (
                    self._deviation_ratio(it, d),
                    it.active_epoch_count,
                    it.tenant_id,
                ),
            )
            if over_active and self._deviation_ratio(candidate, d) <= self.over_activity_ratio:
                # Everyone left matches their history; evicting more would
                # punish well-behaved tenants for the window being tighter
                # than the planning horizon.  Re-consolidation handles the
                # residual drift (Chapter 5.1).
                break
            counts[candidate.epochs] -= 1
            del remaining[candidate.tenant_id]
            over_active.append(candidate.tenant_id)
        if not over_active:
            # History window says the group fits, yet RT-TTP dropped — fall
            # back to isolating the most deviating tenant.
            busiest = max(
                items,
                key=lambda it: (self._deviation_ratio(it, d), it.active_epoch_count, it.tenant_id),
            )
            over_active = [busiest.tenant_id]
        return over_active

    def identify_by_regrouping(
        self, now: float, monitor: GroupActivityMonitor, sla_fraction: float
    ) -> list[int]:
        """The literal Chapter 5.1 formulation, kept for comparison.

        Runs the tenant-grouping second step on the group's members over
        the monitoring window; everyone outside the first resulting
        tenant-group "cannot join the same tenant group anymore, and they
        are identified as over-active".
        """
        start = max(0.0, now - self.window_s)
        items = monitor.activity_items(start, now, self.identification_epoch_s)
        if not items:
            return []
        d = num_epochs(max(now - start, self.identification_epoch_s), self.identification_epoch_s)
        problem = LIVBPwFCProblem(
            items=tuple(items),
            num_epochs=d,
            replication_factor=monitor.replication_factor,
            sla_fraction=sla_fraction,
        )
        groups = pack_initial_group(
            items, problem.num_epochs, problem.replication_factor, problem.sla_fraction
        )
        keepers = set(groups[0]) if groups else set()
        return [item.tenant_id for item in items if item.tenant_id not in keepers]

    def _scale(
        self,
        now: float,
        group: DeployedGroup,
        monitor: GroupActivityMonitor,
        router: QueryRouter,
        provisioner: Provisioner,
        sla_fraction: float,
    ) -> Optional[ScalingAction]:
        over_active = self.identify_over_active(now, group, monitor, sla_fraction)
        if not over_active:
            return None
        specs = [group.deployment.tenant(t) for t in over_active]
        parallelism = max(spec.nodes_requested for spec in specs)
        tenant_data = [spec.as_tenant_data() for spec in specs]
        name = f"{group.group_name}/scale{len(self.actions)}"

        def _ready(instance: MPPDBInstance, time: float) -> None:
            router.add_instance(instance)
            for spec in specs:
                router.pin_tenant(spec.tenant_id, instance)
                monitor.exclude_tenant(spec.tenant_id, time)
            self._mark_done(group.group_name)

        instance = provisioner.provision(
            parallelism=parallelism,
            tenants=tenant_data,
            name=name,
            on_ready=_ready,
        )
        loaded_gb = sum(spec.data_gb for spec in specs)
        ready = now + provisioner.load_model.provision_seconds(parallelism, loaded_gb)
        return ScalingAction(
            time=now,
            group_name=group.group_name,
            kind="lightweight",
            over_active=tuple(over_active),
            instance_name=instance.name,
            expected_ready_time=ready,
            loaded_gb=loaded_gb,
        )


class WholeGroupScaling(ScalingPolicy):
    """Pessimistic ablation: add an ``A + 1``-th MPPDB for the whole group."""

    def _scale(
        self,
        now: float,
        group: DeployedGroup,
        monitor: GroupActivityMonitor,
        router: QueryRouter,
        provisioner: Provisioner,
        sla_fraction: float,
    ) -> Optional[ScalingAction]:
        specs = list(group.deployment.tenants)
        parallelism = group.deployment.design.parallelism
        tenant_data = [spec.as_tenant_data() for spec in specs]
        name = f"{group.group_name}/scale{len(self.actions)}"

        def _ready(instance: MPPDBInstance, time: float) -> None:
            router.add_instance(instance)
            self._mark_done(group.group_name)

        instance = provisioner.provision(
            parallelism=parallelism,
            tenants=tenant_data,
            name=name,
            on_ready=_ready,
        )
        loaded_gb = sum(spec.data_gb for spec in specs)
        ready = now + provisioner.load_model.provision_seconds(parallelism, loaded_gb)
        return ScalingAction(
            time=now,
            group_name=group.group_name,
            kind="whole-group",
            over_active=(),
            instance_name=instance.name,
            expected_ready_time=ready,
            loaded_gb=loaded_gb,
        )


class ProactiveScaling(LightweightScaling):
    """The proactive alternative the paper weighs and rejects (Ch. 5.1).

    "A proactive approach is to predict at run-time whether the RT-TTP
    will soon drop below P and proactively trigger lightweight elastic
    scaling if so.  That approach, however, is subjected to prediction
    error and spikes (e.g., sharp drop of RT-TTP followed by sharp rise)
    in tenant activities."

    The predictor is a least-squares linear trend over the most recent
    RT-TTP observations, extrapolated ``lead_time_s`` ahead; a predicted
    sub-``P`` value fires the (otherwise lightweight) scale-up.  The
    ablation bench shows both sides of the trade-off: earlier reaction
    when a deviation ramps up, and false-positive scale-ups on one-off
    spikes the reactive policy would have ridden out.
    """

    def __init__(
        self,
        window_s: float = DAY,
        identification_epoch_s: float = 10.0,
        historical_fraction: Optional[dict[int, float]] = None,
        over_activity_ratio: float = 2.5,
        lead_time_s: float = 4 * 3600.0,
        min_samples: int = 4,
    ) -> None:
        super().__init__(
            window_s=window_s,
            identification_epoch_s=identification_epoch_s,
            historical_fraction=historical_fraction,
            over_activity_ratio=over_activity_ratio,
        )
        if lead_time_s <= 0:
            raise ScalingError("lead_time_s must be positive")
        if min_samples < 2:
            raise ScalingError("min_samples must be >= 2")
        self.lead_time_s = float(lead_time_s)
        self.min_samples = int(min_samples)
        self._samples: dict[str, list[tuple[float, float]]] = {}

    def predict_rt_ttp(self, group_name: str, at_time: float) -> Optional[float]:
        """Linear-trend forecast of a group's RT-TTP, or None if too few samples."""
        samples = self._samples.get(group_name, [])[-self.min_samples * 4:]
        if len(samples) < self.min_samples:
            return None
        times = np.array([t for t, __ in samples])
        values = np.array([v for __, v in samples])
        t_mean = times.mean()
        v_mean = values.mean()
        denom = float(((times - t_mean) ** 2).sum())
        if denom == 0:
            return float(v_mean)
        slope = float(((times - t_mean) * (values - v_mean)).sum()) / denom
        return float(v_mean + slope * (at_time - t_mean))

    def _should_scale(self, now: float, group_name: str, rt_ttp: float, sla_fraction: float) -> bool:
        self._samples.setdefault(group_name, []).append((now, rt_ttp))
        if rt_ttp < sla_fraction:
            return True  # already violating: react like the base policy
        predicted = self.predict_rt_ttp(group_name, now + self.lead_time_s)
        return predicted is not None and predicted < sla_fraction


__all__.append("ProactiveScaling")
