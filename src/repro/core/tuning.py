"""Manual tuning of the tuning MPPDB's size ``U`` (Chapter 6).

When a group's RT-TTP sits *slightly* below ``P`` but is not dropping, a
new MPPDB for the over-active tenants is overkill; the administrator can
instead raise ``U``, the node count of ``MPPDB_0``.  Overflow queries (the
fourth, fifth, ... concurrently active tenant) are routed to ``MPPDB_0``
for concurrent processing (Algorithm 1 line 10); with enough extra
parallelism their latency can *empirically* still meet the SLA — point C
of Figure 1.1b: on a large-enough instance, two concurrent linear-scale-out
queries each still beat their dedicated-small-instance latency.

:func:`recommended_tuning_nodes` computes the smallest ``U`` for which an
overflow MPL of ``k`` concurrent tenants on ``MPPDB_0`` keeps linear
queries within SLA: fair sharing makes each query ``k`` times slower, and a
linear query on ``U`` nodes runs ``U / n`` times faster than on the
tenant's ``n`` requested nodes, so ``U >= k * n``.  Non-linear queries
(Amdahl serial fraction ``s``) may need more than any ``U`` can give —
exactly the caveat the paper raises for R4 and leaves to the divergent
design of its future work.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from .tdd import ClusterDesign

__all__ = ["recommended_tuning_nodes", "ManualTuner"]


def recommended_tuning_nodes(
    parallelism: int, overflow_mpl: int, serial_fraction: float = 0.0
) -> int:
    """Smallest ``U`` that absorbs ``overflow_mpl`` concurrent tenants.

    Solves ``overflow_mpl * latency(U) <= latency(parallelism)`` for the
    Amdahl family ``latency(n) = s + (1 - s) / n`` (``s = 0`` is linear).
    Raises :class:`ConfigurationError` when no ``U`` can satisfy it (the
    serial fraction alone exceeds the budget).
    """
    if parallelism < 1:
        raise ConfigurationError("parallelism must be >= 1")
    if overflow_mpl < 1:
        raise ConfigurationError("overflow_mpl must be >= 1")
    if not (0 <= serial_fraction < 1):
        raise ConfigurationError("serial_fraction must be in [0, 1)")
    if overflow_mpl == 1:
        return parallelism
    target = serial_fraction + (1 - serial_fraction) / parallelism
    # k * (s + (1-s)/U) <= target  =>  U >= k(1-s) / (target - k*s)
    denominator = target - overflow_mpl * serial_fraction
    if denominator <= 0:
        raise ConfigurationError(
            f"no tuning size can absorb MPL {overflow_mpl} with serial "
            f"fraction {serial_fraction} at n = {parallelism}: the serial "
            "part alone exceeds the latency budget"
        )
    u = overflow_mpl * (1 - serial_fraction) / denominator
    return max(parallelism, int(math.ceil(u - 1e-9)))


class ManualTuner:
    """Applies an administrator's ``U`` override to a cluster design."""

    def __init__(self, max_overhead_nodes: int = 8) -> None:
        if max_overhead_nodes < 0:
            raise ConfigurationError("max_overhead_nodes must be >= 0")
        self._max_overhead = max_overhead_nodes

    def retune(self, design: ClusterDesign, overflow_mpl: int, serial_fraction: float = 0.0) -> ClusterDesign:
        """Return a design with ``U`` raised to absorb the observed overflow.

        The increase is capped at ``max_overhead_nodes`` above ``n_1`` —
        beyond that, elastic scaling (a whole new MPPDB) is the cheaper
        response and the tuner refuses.
        """
        u = recommended_tuning_nodes(design.parallelism, overflow_mpl, serial_fraction)
        if u - design.parallelism > self._max_overhead:
            raise ConfigurationError(
                f"absorbing MPL {overflow_mpl} needs U = {u} "
                f"(> n_1 + {self._max_overhead}); use elastic scaling instead"
            )
        return ClusterDesign(
            group_name=design.group_name,
            num_instances=design.num_instances,
            parallelism=design.parallelism,
            tuning_parallelism=max(u, design.tuning_parallelism),
        )
