"""The :class:`ThriftyService` facade — the library's front door.

Wires the whole architecture of Figure 3.1 together: the Tenant Activity
Monitor, the Deployment Advisor, the Deployment Master and the Query
Routers, on top of one simulator and one machine pool.  A typical session
(see ``examples/quickstart.py``)::

    service = ThriftyService(config)
    result = service.deploy(workload)              # grouping + TDD + start instances
    report = service.replay(until=2 * DAY)         # drive the logs, watch SLAs

The replay runs *every* deployed group on the shared simulator, so
cross-group interactions (none, by design — groups own disjoint nodes) and
global metrics come out of one clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.failures import FailureInjector
from ..cluster.health import HealthManager
from ..cluster.pool import MachinePool
from ..config import EvaluationConfig
from ..errors import DeploymentError
from ..mppdb.loading import LoadTimeModel
from ..mppdb.provisioning import Provisioner
from ..obs.observer import NULL_OBSERVER, Observer
from ..rng import RngFactory
from ..simulation.engine import Simulator
from ..simulation.trace import TraceRecorder
from ..units import MINUTE
from ..workload.composer import ComposedWorkload
from .advisor import AdvisorResult, DeploymentAdvisor
from .fault import RetryPolicy
from .master import DeploymentMaster
from .monitor import TenantActivityMonitor
from .pricing import PricingModel, TenantInvoice
from .runtime import GroupRuntime, RuntimeReport
from .scaling import (
    DisabledScaling,
    LightweightScaling,
    ProactiveScaling,
    ScalingAction,
    ScalingPolicy,
    WholeGroupScaling,
)
from .sla import SLAReport

__all__ = ["ThriftyService", "ServiceReport", "SCALING_POLICIES"]

#: Named scaling policies for the constructor.
SCALING_POLICIES = {
    "lightweight": LightweightScaling,
    "proactive": ProactiveScaling,
    "whole-group": WholeGroupScaling,
    "disabled": DisabledScaling,
}


@dataclass
class ServiceReport:
    """Aggregated outcome of a service replay."""

    group_reports: dict[str, RuntimeReport]
    nodes_used: int
    nodes_requested: int

    @property
    def sla(self) -> SLAReport:
        """All groups' SLA records combined."""
        records = []
        for report in self.group_reports.values():
            records.extend(report.sla.records)
        return SLAReport(records)

    @property
    def consolidation_effectiveness(self) -> float:
        """Fraction of requested nodes the deployment saves."""
        if self.nodes_requested == 0:
            raise DeploymentError("no requested nodes")
        return 1.0 - self.nodes_used / self.nodes_requested

    def scaling_actions(self) -> list[ScalingAction]:
        """Every scaling action across groups, in time order."""
        actions: list[ScalingAction] = []
        for report in self.group_reports.values():
            actions.extend(report.scaling_actions)
        return sorted(actions, key=lambda a: a.time)

    def summary(self) -> dict[str, float]:
        """Headline service metrics."""
        sla = self.sla
        reports = self.group_reports.values()
        return {
            "groups": float(len(self.group_reports)),
            "queries": float(len(sla)),
            "sla_fraction_met": sla.fraction_met,
            "nodes_used": float(self.nodes_used),
            "nodes_requested": float(self.nodes_requested),
            "effectiveness": self.consolidation_effectiveness,
            "scaling_actions": float(len(self.scaling_actions())),
            "queries_retried": float(sum(r.queries_retried for r in reports)),
            "queries_failed": float(sum(r.queries_failed for r in reports)),
            "failovers": float(sum(r.failovers for r in reports)),
        }


class ThriftyService:
    """End-to-end MPPDBaaS: consolidate, deploy, route, monitor, scale."""

    def __init__(
        self,
        config: EvaluationConfig,
        grouping: str = "two-step",
        scaling: str = "lightweight",
        load_model: Optional[LoadTimeModel] = None,
        pool: Optional[MachinePool] = None,
        monitor_interval_s: float = 10 * MINUTE,
        observer: Optional[Observer] = None,
        fault: Optional[RetryPolicy] = None,
    ) -> None:
        if scaling not in SCALING_POLICIES:
            raise DeploymentError(
                f"unknown scaling policy {scaling!r}; options: {sorted(SCALING_POLICIES)}"
            )
        self.config = config
        self.simulator = Simulator()
        self.pool = pool if pool is not None else MachinePool(elastic=True)
        self.provisioner = Provisioner(self.simulator, self.pool, load_model)
        self.health = HealthManager(
            self.pool, self.provisioner, self.simulator, observer=observer
        )
        self._fault = fault
        self._chaos: Optional[FailureInjector] = None
        self.advisor = DeploymentAdvisor(config, grouping=grouping)
        self.master = DeploymentMaster(self.provisioner)
        self.monitor = TenantActivityMonitor(config.replication_factor)
        self.trace = TraceRecorder()
        self.observer = observer if observer is not None else NULL_OBSERVER
        if self.observer.enabled:
            self.monitor.observe_with(self.observer)
            self.simulator.enable_event_accounting()
        self._scaling_name = scaling
        self._monitor_interval = monitor_interval_s
        self._workload: Optional[ComposedWorkload] = None
        self._advice: Optional[AdvisorResult] = None
        self._runtimes: dict[str, GroupRuntime] = {}
        self._reconsolidations = 0

    @property
    def advice(self) -> AdvisorResult:
        """The current deployment plan (after :meth:`deploy`)."""
        if self._advice is None:
            raise DeploymentError("deploy() has not been called")
        return self._advice

    @property
    def chaos(self) -> Optional[FailureInjector]:
        """The chaos injector, if :meth:`arm_chaos` has run."""
        return self._chaos

    def arm_chaos(
        self, mtbf_s: float, horizon: float, seed: Optional[int] = None
    ) -> int:
        """Arm random node failures over the replay horizon (chaos harness).

        Every in-use node draws exponential inter-failure times with mean
        ``mtbf_s`` from a dedicated seeded stream (``config.seed`` unless
        ``seed`` overrides it), so chaos replays are exactly reproducible.
        The health manager is subscribed before arming: each failure
        degrades its instance, aborts in-flight queries for retry, and
        starts a replacement node.  Returns the number of failure events
        scheduled up front; nodes allocated later are armed on allocation.
        """
        if self._chaos is not None:
            raise DeploymentError("chaos is already armed")
        rng = RngFactory(self.config.seed if seed is None else seed).stream(
            "chaos", "injector"
        )
        self._chaos = FailureInjector(self.pool, self.simulator, mtbf_s, rng)
        self.health.watch(self._chaos)
        return self._chaos.arm(horizon)

    def _historical_fractions(self) -> dict[int, float]:
        """Per-tenant planned active fraction, from the advisor's matrix."""
        if self._advice is None:
            return {}
        problem = self._advice.grouping.problem
        return {
            item.tenant_id: item.active_epoch_count / problem.num_epochs
            for item in problem.items
        }

    def _make_scaling(self) -> ScalingPolicy:
        policy_cls = SCALING_POLICIES[self._scaling_name]
        epoch = max(self.config.epoch_size_s, 10.0)
        if issubclass(policy_cls, LightweightScaling):
            # Covers ProactiveScaling too: both identify over-active
            # tenants against the planned (historical) activity.
            return policy_cls(
                identification_epoch_s=epoch,
                historical_fraction=self._historical_fractions(),
            )
        return policy_cls(identification_epoch_s=epoch)

    def deploy(
        self,
        workload: ComposedWorkload,
        epoch_size: Optional[float] = None,
        instant: bool = True,
    ) -> AdvisorResult:
        """Plan and deploy a workload; returns the advisor's result."""
        if self._advice is not None:
            raise DeploymentError("service already has a deployment; build a new service")
        advice = self.advisor.plan_from_workload(workload, epoch_size)
        self.master.deploy(advice.plan, instant=instant)
        self._workload = workload
        self._advice = advice
        return advice

    def replay(
        self,
        until: float,
        group_names: Optional[list[str]] = None,
    ) -> ServiceReport:
        """Drive the composed logs through the deployed groups until ``until``.

        ``group_names`` restricts the replay to a subset of groups (useful
        for focused experiments like Figure 7.7, which watches a single
        group); by default all groups replay together.
        """
        if self._advice is None or self._workload is None:
            raise DeploymentError("deploy() must be called before replay()")
        deployed = self.master.deployed_groups()
        wanted = sorted(deployed) if group_names is None else group_names
        for name in wanted:
            if name not in deployed:
                raise DeploymentError(f"group {name!r} is not deployed")
            if name in self._runtimes:
                raise DeploymentError(f"group {name!r} was already replayed")
            group = deployed[name]
            logs = {
                tenant_id: self._workload.tenant_log(tenant_id)
                for tenant_id in group.deployment.placement.tenant_ids
            }
            runtime = GroupRuntime(
                deployed=group,
                logs=logs,
                simulator=self.simulator,
                provisioner=self.provisioner,
                sla_fraction=self.config.sla_fraction,
                monitor=self.monitor.group(name),
                scaling=self._make_scaling(),
                monitor_interval_s=self._monitor_interval,
                trace=self.trace,
                observer=self.observer,
                fault=self._fault,
                health=self.health,
                fault_rng=RngFactory(self.config.seed).stream("fault", name),
            )
            runtime.schedule(until)
            self._runtimes[name] = runtime
        self.simulator.run(until=until)
        self.health.finalize(self.simulator.now)
        for name in wanted:
            self._runtimes[name].finalize_observation(self.simulator.now)
        reports = {name: self._runtimes[name].report() for name in wanted}
        plan = self._advice.plan
        return ServiceReport(
            group_reports=reports,
            nodes_used=plan.total_nodes_used,
            nodes_requested=plan.total_nodes_requested,
        )

    def reconsolidate(
        self,
        departed: Optional[list[int]] = None,
        extra_groups: Optional[list[str]] = None,
        epoch_size: Optional[float] = None,
    ) -> AdvisorResult:
        """Run one (re)-consolidation cycle (Chapter 3 / 5.1).

        Groups that went through elastic scaling during replay, groups
        holding ``departed`` (de-registered) tenants, and any
        ``extra_groups`` the administrator names are torn down; their
        remaining tenants are re-grouped on the current activity and
        redeployed.  Untouched groups keep running.
        """
        if self._advice is None or self._workload is None:
            raise DeploymentError("deploy() must be called before reconsolidate()")
        affected = set(extra_groups or [])
        for name, runtime in self._runtimes.items():
            if runtime.report().scaling_actions:
                affected.add(name)
        departed = list(departed or [])
        if not affected and not departed:
            raise DeploymentError(
                "nothing to reconsolidate: no scaled groups, departures, or extra_groups"
            )
        from ..workload.activity import ActivityMatrix

        epoch = self.config.epoch_size_s if epoch_size is None else epoch_size
        matrix = ActivityMatrix.from_workload(self._workload, epoch)
        self._reconsolidations += 1
        span = None
        if self.observer.enabled:
            span = self.observer.tracer.start_span(
                "reconsolidation",
                self.simulator.now,
                kind="reconsolidation",
                cycle=self._reconsolidations,
                affected=tuple(sorted(affected)),
                departed=tuple(departed),
            )
        result, kept = self.advisor.reconsolidate(
            matrix,
            self._advice.plan,
            affected_groups=affected,
            departed=departed,
            name_prefix=f"rg{self._reconsolidations}-",
        )
        # Tear down the affected groups and any elastic-scaling instances
        # that were spun up for them.
        torn_down = {g.group_name for g in self._advice.plan} - {g.group_name for g in kept}
        for name in sorted(torn_down):
            self.master.decommission_group(name)
            for instance in self.provisioner.live_instances():
                if instance.name.startswith(f"{name}/scale"):
                    self.provisioner.retire(instance)
        for group in result.plan:
            if group.group_name not in self.master.deployed_groups():
                self.master.deploy_group(group, instant=True)
        if span is not None:
            span.set_attr("torn_down", tuple(sorted(torn_down)))
            span.set_attr("groups_after", len(result.plan))
            span.end(self.simulator.now)
        self._advice = AdvisorResult(
            plan=result.plan, grouping=result.grouping, excluded=self._advice.excluded
        )
        return self._advice

    def invoices(self, pricing: Optional[PricingModel] = None) -> list[TenantInvoice]:
        """Bill every consolidated tenant for its composed activity."""
        if self._workload is None:
            raise DeploymentError("deploy() must be called first")
        model = pricing if pricing is not None else PricingModel()
        return [
            model.invoice(self._workload.tenant_log(tenant_id))
            for tenant_id in self._workload.tenant_ids
        ]
