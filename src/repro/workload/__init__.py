"""Tenant workload substrate: queries, logs, and the §7.1 generator.

The paper generates close-to-realistic MPPDBaaS tenant logs in two steps:

* **Step 1 — real query log collection** (:mod:`~repro.workload.generator`):
  imitate tenants with up to 5 autonomous users submitting single TPC-H /
  TPC-DS queries or batches of up to 10, with 3–600 s think times, for
  3-hour sessions against dedicated 2/4/8/16/32-node MPPDBs, and collect
  the query logs.  We run the sessions through the fair-share execution
  engine so intra-tenant concurrency shows up in the latencies exactly as
  it would on the real system.
* **Step 2 — multi-tenant log composition** (:mod:`~repro.workload.composer`):
  sample tenant sizes from a Zipf(θ) distribution, give each tenant a
  time-zone offset, and stitch morning / afternoon / evening sessions into
  a multi-day activity log with weekends and shared public holidays.

:mod:`~repro.workload.activity` discretizes logs into fixed-width epochs —
the representation the tenant-grouping algorithms operate on (Chapter 5).
"""

from .activity import (
    ActivityMatrix,
    active_epoch_indices,
    active_tenant_ratio,
    concurrency_profile,
)
from .composer import ComposedWorkload, MultiTenantLogComposer
from .distributions import sample_node_sizes, zipf_pmf
from .generator import SessionLibrary, SessionLogGenerator
from .io import (
    load_session_library,
    read_tenant_log,
    save_session_library,
    write_tenant_log,
)
from .logs import QueryRecord, TenantLog, merge_intervals
from .queries import QueryTemplate, template_by_name
from .session import SessionConfig
from .tenant import TenantSpec
from .tpcds import TPCDS_TEMPLATES, tpcds_template
from .tpch import TPCH_TEMPLATES, tpch_template

__all__ = [
    "ActivityMatrix",
    "active_epoch_indices",
    "active_tenant_ratio",
    "concurrency_profile",
    "ComposedWorkload",
    "MultiTenantLogComposer",
    "sample_node_sizes",
    "zipf_pmf",
    "SessionLibrary",
    "SessionLogGenerator",
    "load_session_library",
    "read_tenant_log",
    "save_session_library",
    "write_tenant_log",
    "QueryRecord",
    "TenantLog",
    "merge_intervals",
    "QueryTemplate",
    "template_by_name",
    "SessionConfig",
    "TenantSpec",
    "TPCDS_TEMPLATES",
    "tpcds_template",
    "TPCH_TEMPLATES",
    "tpch_template",
]
