"""User session behaviour (§7.1 Step 1).

"Each tenant has at most S autonomous users, where S is a random integer
between 1 and 5.  Each user follows a probability distribution P to carry
out the following: (a) either submits a random TPC-H/DS query to a MPPDB,
or (b) submits a batch of M random TPC-H/DS queries to a MPPDB, where M is
a random integer between 1 and 10.  The user will not take any action until
the single query (for (a)) or the query batch (for (b)) is complete...
After the completion of a query/query batch, a user will pause for W
seconds before the next event takes place, where W is a random integer from
3 to 600."

:class:`SessionConfig` captures those knobs; :func:`run_user_session`
drives ``num_users`` such state machines against one shared execution
engine, which is how intra-tenant concurrency (several users, batches)
inflates the collected latencies exactly as on the real dedicated MPPDB.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import WorkloadError
from ..mppdb.execution import ExecutionEngine, QueryExecution
from ..simulation.engine import Simulator
from .queries import QueryTemplate

__all__ = ["SessionConfig", "run_user_session"]


@dataclass(frozen=True)
class SessionConfig:
    """Stochastic knobs of one user session (paper defaults)."""

    duration_s: float = 3 * 3600.0
    batch_probability: float = 0.5
    max_batch: int = 10
    min_think_s: float = 3.0
    max_think_s: float = 600.0
    max_initial_stagger_s: float = 300.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError("session duration must be positive")
        if not (0 <= self.batch_probability <= 1):
            raise WorkloadError("batch_probability must be in [0, 1]")
        if self.max_batch < 1:
            raise WorkloadError("max_batch must be >= 1")
        if not (0 <= self.min_think_s <= self.max_think_s):
            raise WorkloadError("invalid think-time range")
        if self.max_initial_stagger_s < 0:
            raise WorkloadError("max_initial_stagger_s must be >= 0")


class _UserProcess:
    """One autonomous user's submit / wait-for-batch / think loop."""

    def __init__(
        self,
        user_id: int,
        simulator: Simulator,
        engine: ExecutionEngine,
        config: SessionConfig,
        templates: Sequence[QueryTemplate],
        work_of: Callable[[QueryTemplate], float],
        rng: np.random.Generator,
        batch_ids: "itertools.count[int]",
    ) -> None:
        self.user_id = user_id
        self._sim = simulator
        self._engine = engine
        self._config = config
        self._templates = list(templates)
        self._work_of = work_of
        self._rng = rng
        self._batch_ids = batch_ids
        self._outstanding: set[int] = set()
        #: query_id -> (template name, batch id); read by the session runner.
        self.submitted: dict[int, tuple[str, int]] = {}

    def start(self) -> None:
        """Schedule the user's first action (staggered within the session)."""
        stagger = float(self._rng.uniform(0.0, self._config.max_initial_stagger_s))
        self._sim.schedule_after(stagger, self._next_event, label=f"user{self.user_id}-start")

    def owns(self, query_id: int) -> bool:
        """Whether a running query belongs to this user."""
        return query_id in self._outstanding

    def on_query_done(self, execution: QueryExecution) -> None:
        """Notify the user one of its queries finished; think when all are done."""
        self._outstanding.discard(execution.query_id)
        if not self._outstanding:
            self._schedule_think()

    def _schedule_think(self) -> None:
        think = float(self._rng.uniform(self._config.min_think_s, self._config.max_think_s))
        next_time = self._sim.now + think
        if next_time < self._config.duration_s:
            self._sim.schedule(next_time, self._next_event, label=f"user{self.user_id}-wake")

    def _next_event(self, time: float) -> None:
        if time >= self._config.duration_s:
            return
        if self._rng.random() < self._config.batch_probability:
            batch_size = int(self._rng.integers(1, self._config.max_batch + 1))
            batch_id = next(self._batch_ids)
        else:
            batch_size = 1
            batch_id = -1
        for _ in range(batch_size):
            template = self._templates[int(self._rng.integers(0, len(self._templates)))]
            execution = self._engine.submit(
                tenant_id=0,
                work_s=self._work_of(template),
                label=template.name,
            )
            if not execution.finished:
                self._outstanding.add(execution.query_id)
            self.submitted[execution.query_id] = (template.name, batch_id)
        if not self._outstanding:
            # Degenerate zero-work batch completed instantly; think directly.
            self._schedule_think()


def run_user_session(
    num_users: int,
    config: SessionConfig,
    templates: Sequence[QueryTemplate],
    work_of: Callable[[QueryTemplate], float],
    rng: np.random.Generator,
) -> tuple[list[QueryExecution], dict[int, tuple[int, str, int]]]:
    """Run one multi-user session on a fresh dedicated engine.

    ``work_of`` maps a template to its dedicated latency on the session's
    MPPDB — the caller fixes the tenant's data size and the instance's
    parallelism there.

    Returns ``(completed, attribution)`` where ``completed`` are the
    finished query executions (with interference-inflated latencies) and
    ``attribution`` maps ``query_id -> (user_id, template name, batch id)``.
    """
    if num_users < 1:
        raise WorkloadError(f"num_users must be >= 1, got {num_users!r}")
    if not templates:
        raise WorkloadError("at least one query template is required")
    simulator = Simulator()
    engine = ExecutionEngine(simulator)
    batch_ids = itertools.count()
    users = [
        _UserProcess(
            user_id=u,
            simulator=simulator,
            engine=engine,
            config=config,
            templates=templates,
            work_of=work_of,
            rng=rng,
            batch_ids=batch_ids,
        )
        for u in range(num_users)
    ]

    def _dispatch(execution: QueryExecution) -> None:
        for user in users:
            if user.owns(execution.query_id):
                user.on_query_done(execution)
                return

    engine.on_complete(_dispatch)
    for user in users:
        user.start()
    simulator.run()

    attribution: dict[int, tuple[int, str, int]] = {}
    for user in users:
        for query_id, (template_name, batch_id) in user.submitted.items():
            attribution[query_id] = (user.user_id, template_name, batch_id)
    return engine.completed, attribution
