"""Tenant-size distribution.

"The skewness of the tenant size is chosen by sampling from the CDF of a
Zipf distribution with a parameter 0 < θ < 1, where a smaller θ tends to
uniform whereas a larger θ tends to skew" (§7.1 Step 2).  Rank 1 is the
smallest node size — as in Figure 5.2, most tenants request small MPPDBs —
following [11]'s observation that database sizes across companies are
skew-distributed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import WorkloadError

__all__ = ["zipf_pmf", "sample_node_sizes"]


def zipf_pmf(num_ranks: int, theta: float) -> np.ndarray:
    """Zipf probability mass over ranks ``1..num_ranks``: ``p(k) ∝ k**-theta``.

    ``theta -> 0`` tends to uniform; larger ``theta`` tends to skew.
    """
    if num_ranks < 1:
        raise WorkloadError(f"num_ranks must be >= 1, got {num_ranks!r}")
    if not (0 < theta < 1):
        raise WorkloadError(f"theta must be in (0, 1), got {theta!r}")
    ranks = np.arange(1, num_ranks + 1, dtype=np.float64)
    weights = ranks ** (-theta)
    return weights / weights.sum()


def sample_node_sizes(
    node_sizes: Sequence[int],
    count: int,
    theta: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` tenant node sizes, Zipf-skewed toward the smallest.

    ``node_sizes`` must be sorted ascending; rank 1 (most probable) maps to
    the smallest size.
    """
    sizes = list(node_sizes)
    if sizes != sorted(sizes):
        raise WorkloadError("node_sizes must be sorted ascending")
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count!r}")
    pmf = zipf_pmf(len(sizes), theta)
    draws = rng.choice(len(sizes), size=count, p=pmf)
    return np.asarray(sizes, dtype=np.int64)[draws]
