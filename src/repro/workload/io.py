"""Workload persistence: query logs and session libraries on disk.

A production Tenant Activity Monitor collects query logs continuously
(Chapter 3); this module gives the library the matching on-disk formats:

* **Tenant logs** as JSON Lines — a header line with the tenant spec,
  then one line per query record.  Human-greppable, append-friendly,
  diff-able: the natural interchange format for logs.
* **Session libraries** as a single JSON document — the Step 1 artifact
  (§7.1) is expensive to regenerate, so benchmarks and deployments can
  cache it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import WorkloadError
from .generator import SessionLibrary, SessionLog
from .logs import QueryRecord, TenantLog
from .tenant import TenantSpec

__all__ = [
    "write_tenant_log",
    "read_tenant_log",
    "save_session_library",
    "load_session_library",
]

_LOG_FORMAT_VERSION = 1
_LIBRARY_FORMAT_VERSION = 1


def _record_to_dict(record: QueryRecord) -> dict:
    return {
        "t": record.submit_time_s,
        "lat": record.latency_s,
        "q": record.template,
        "u": record.user,
        "b": record.batch_id,
    }


def _record_from_dict(data: dict) -> QueryRecord:
    try:
        return QueryRecord(
            submit_time_s=float(data["t"]),
            latency_s=float(data["lat"]),
            template=str(data["q"]),
            user=int(data.get("u", 0)),
            batch_id=int(data.get("b", -1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"malformed query record: {data!r}") from exc


def write_tenant_log(log: TenantLog, path: Union[str, Path]) -> Path:
    """Write a tenant log as JSON Lines; returns the path written."""
    path = Path(path)
    spec = log.tenant
    header = {
        "format": "thrifty-tenant-log",
        "version": _LOG_FORMAT_VERSION,
        "tenant_id": spec.tenant_id,
        "nodes_requested": spec.nodes_requested,
        "data_gb": spec.data_gb,
        "benchmark": spec.benchmark,
        "max_users": spec.max_users,
        "tz_offset_hours": spec.tz_offset_hours,
        "records": len(log),
    }
    with path.open("w") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in log.records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
    return path


def read_tenant_log(path: Union[str, Path]) -> TenantLog:
    """Read a tenant log written by :func:`write_tenant_log`."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise WorkloadError(f"{path}: empty log file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"{path}: malformed header") from exc
        if header.get("format") != "thrifty-tenant-log":
            raise WorkloadError(f"{path}: not a thrifty tenant log")
        if header.get("version") != _LOG_FORMAT_VERSION:
            raise WorkloadError(
                f"{path}: unsupported log version {header.get('version')!r}"
            )
        try:
            spec = TenantSpec(
                tenant_id=int(header["tenant_id"]),
                nodes_requested=int(header["nodes_requested"]),
                data_gb=float(header["data_gb"]),
                benchmark=str(header.get("benchmark", "tpch")),
                max_users=int(header.get("max_users", 1)),
                tz_offset_hours=int(header.get("tz_offset_hours", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"{path}: malformed tenant header") from exc
        records = []
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(f"{path}:{line_no}: malformed record") from exc
            records.append(_record_from_dict(data))
    expected = header.get("records")
    if expected is not None and expected != len(records):
        raise WorkloadError(
            f"{path}: header promises {expected} records, found {len(records)}"
        )
    return TenantLog(spec, records)


def save_session_library(library: SessionLibrary, path: Union[str, Path]) -> Path:
    """Persist a Step 1 session library as one JSON document."""
    path = Path(path)
    payload = {
        "format": "thrifty-session-library",
        "version": _LIBRARY_FORMAT_VERSION,
        "sessions": {
            str(size): [
                {
                    "benchmark": session.benchmark,
                    "num_users": session.num_users,
                    "duration_s": session.duration_s,
                    "records": [_record_to_dict(r) for r in session.records],
                }
                for session in library.sessions_for(size)
            ]
            for size in library.node_sizes
        },
    }
    with path.open("w") as handle:
        json.dump(payload, handle)
    return path


def load_session_library(path: Union[str, Path]) -> SessionLibrary:
    """Load a session library written by :func:`save_session_library`."""
    path = Path(path)
    try:
        with path.open() as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"{path}: malformed library file") from exc
    if payload.get("format") != "thrifty-session-library":
        raise WorkloadError(f"{path}: not a thrifty session library")
    if payload.get("version") != _LIBRARY_FORMAT_VERSION:
        raise WorkloadError(
            f"{path}: unsupported library version {payload.get('version')!r}"
        )
    sessions: dict[int, list[SessionLog]] = {}
    for size_text, entries in payload.get("sessions", {}).items():
        try:
            size = int(size_text)
        except ValueError as exc:
            raise WorkloadError(f"{path}: bad node size {size_text!r}") from exc
        sessions[size] = [
            SessionLog(
                node_size=size,
                benchmark=str(entry["benchmark"]),
                num_users=int(entry["num_users"]),
                duration_s=float(entry["duration_s"]),
                records=tuple(_record_from_dict(r) for r in entry["records"]),
            )
            for entry in entries
        ]
    return SessionLibrary(sessions)
