"""TPC-DS query template set.

A 20-query representative subset of TPC-DS (the full suite has 99; the
paper samples "random TPC-H/DS queries" so what matters is a realistic mix
of costs and scale-out classes, not the full catalogue).  TPC-DS queries
are on average join-heavier and more skewed than TPC-H, so this set leans
sublinear/Amdahl and spans a wider cost range.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..mppdb.scaleout import AmdahlScaleOut, LinearScaleOut, SublinearScaleOut
from .queries import QueryTemplate

__all__ = ["TPCDS_TEMPLATES", "tpcds_template"]


def _t(number: int, seconds_per_gb: float, curve) -> QueryTemplate:
    return QueryTemplate(
        name=f"tpcds.q{number}",
        benchmark="tpcds",
        seconds_per_gb=seconds_per_gb,
        curve=curve,
    )


#: Representative TPC-DS templates, keyed by query number.
TPCDS_TEMPLATES: dict[int, QueryTemplate] = {
    3: _t(3, 0.0045, LinearScaleOut()),           # brand sales by year
    7: _t(7, 0.0067, SublinearScaleOut(0.8)),     # promotional items
    19: _t(19, 0.0060, SublinearScaleOut(0.75)),  # brand revenue by manager
    27: _t(27, 0.0075, SublinearScaleOut(0.8)),   # store sales rollup
    34: _t(34, 0.0053, LinearScaleOut()),         # frequent-buyer households
    42: _t(42, 0.0037, LinearScaleOut()),         # item category revenue
    43: _t(43, 0.0045, LinearScaleOut()),         # store sales by weekday
    46: _t(46, 0.0083, SublinearScaleOut(0.75)),  # customer city purchases
    52: _t(52, 0.0037, LinearScaleOut()),         # brand revenue
    53: _t(53, 0.0053, SublinearScaleOut(0.8)),   # manufacturer quarterly
    55: _t(55, 0.0030, LinearScaleOut()),         # brand revenue by month
    59: _t(59, 0.0112, SublinearScaleOut(0.7)),   # weekly store sales ratio
    63: _t(63, 0.0053, SublinearScaleOut(0.8)),   # manager monthly sales
    65: _t(65, 0.0120, SublinearScaleOut(0.7)),   # low-revenue items
    68: _t(68, 0.0083, SublinearScaleOut(0.75)),  # urban customer extracts
    72: _t(72, 0.0180, AmdahlScaleOut(0.20)),     # catalog inventory join (notorious)
    79: _t(79, 0.0075, SublinearScaleOut(0.75)),  # weekend shopping profit
    88: _t(88, 0.0135, AmdahlScaleOut(0.15)),     # 8-way time-band union
    96: _t(96, 0.0030, LinearScaleOut()),         # half-hour store traffic
    98: _t(98, 0.0060, LinearScaleOut()),         # category revenue ratio
}


def tpcds_template(number: int) -> QueryTemplate:
    """Look up a TPC-DS template by query number."""
    try:
        return TPCDS_TEMPLATES[number]
    except KeyError:
        raise WorkloadError(
            f"TPC-DS subset has queries {sorted(TPCDS_TEMPLATES)}, got {number!r}"
        ) from None
