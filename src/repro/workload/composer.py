"""Step 2 of the log-generation methodology: multi-tenant log composition.

For each tenant (§7.1): draw its node size from a Zipf(θ) distribution,
assign a time-zone offset ``O`` (imitating Seattle ... Sydney), and per
workday stitch three randomly picked 3-hour session logs from Step 1's
library — the morning session at ``O``, the afternoon session after lunch,
and an evening reporting session several hours later.  Weekends and two
shared public holidays (same days for tenants in the same time zone) are
inactive.

The §7.4 higher-active-ratio variants are produced by composing with the
modified :class:`~repro.config.LogGenerationConfig` factories
(``north_america_only`` / ``without_lunch`` / ``single_timezone``).

The composed workload stores only *which* library sessions each tenant
picked and their time shifts; per-tenant logs and activity-epoch sets are
materialized on demand, so composing thousands of tenants stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..config import EvaluationConfig
from ..errors import WorkloadError
from ..rng import RngFactory
from ..units import DAY, HOUR
from .distributions import sample_node_sizes
from .generator import SessionLibrary
from .logs import QueryRecord, TenantLog
from .tenant import TenantSpec

__all__ = ["SessionPick", "ComposedWorkload", "MultiTenantLogComposer"]

_EPOCH_ALIGN_TOL = 1e-9


@dataclass(frozen=True)
class SessionPick:
    """One library session placed on a tenant's timeline."""

    node_size: int
    session_index: int
    shift_s: float

    def __post_init__(self) -> None:
        if self.shift_s < 0:
            raise WorkloadError(f"session shift must be non-negative, got {self.shift_s!r}")


class ComposedWorkload:
    """The composed multi-tenant activity log."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        picks: dict[int, tuple[SessionPick, ...]],
        library: SessionLibrary,
        horizon_s: float,
    ) -> None:
        if horizon_s <= 0:
            raise WorkloadError("horizon must be positive")
        self.tenants: tuple[TenantSpec, ...] = tuple(tenants)
        self._picks = picks
        self.library = library
        self.horizon_s = float(horizon_s)
        ids = [t.tenant_id for t in self.tenants]
        if len(set(ids)) != len(ids):
            raise WorkloadError("tenant ids must be unique")
        missing = [i for i in ids if i not in picks]
        if missing:
            raise WorkloadError(f"tenants without picks: {missing[:5]}")
        self._by_id = {t.tenant_id: t for t in self.tenants}

    def __len__(self) -> int:
        return len(self.tenants)

    @property
    def tenant_ids(self) -> list[int]:
        """All tenant ids, in composition order."""
        return [t.tenant_id for t in self.tenants]

    def tenant(self, tenant_id: int) -> TenantSpec:
        """Look up a tenant descriptor."""
        try:
            return self._by_id[tenant_id]
        except KeyError:
            raise WorkloadError(f"unknown tenant {tenant_id!r}") from None

    def picks_of(self, tenant_id: int) -> tuple[SessionPick, ...]:
        """The library sessions composing a tenant's log."""
        self.tenant(tenant_id)
        return self._picks[tenant_id]

    def total_nodes_requested(self) -> int:
        """Sum of node counts requested by all tenants (``N`` in Ch. 4.1)."""
        return sum(t.nodes_requested for t in self.tenants)

    def num_epochs(self, epoch_size: float) -> int:
        """Number of epochs covering the composition horizon."""
        if epoch_size <= 0:
            raise WorkloadError("epoch size must be positive")
        return int(np.ceil(self.horizon_s / epoch_size))

    def tenant_log(self, tenant_id: int) -> TenantLog:
        """Materialize a tenant's full query log (records shifted into place)."""
        spec = self.tenant(tenant_id)
        records: list[QueryRecord] = []
        for pick in self._picks[tenant_id]:
            session = self.library.session(pick.node_size, pick.session_index)
            records.extend(r.shifted(pick.shift_s) for r in session.records)
        return TenantLog(spec, records)

    def activity_epochs(self, tenant_id: int, epoch_size: float) -> np.ndarray:
        """Sorted active-epoch indices of a tenant at the given epoch size.

        Uses the library's cached per-session epoch sets when the session
        shift is epoch-aligned (true for every Table 7.1 epoch size, since
        shifts are whole hours); falls back to exact interval-based
        discretization otherwise.
        """
        d = self.num_epochs(epoch_size)
        chunks: list[np.ndarray] = []
        for pick in self._picks[tenant_id]:
            ratio = pick.shift_s / epoch_size
            if abs(ratio - round(ratio)) < _EPOCH_ALIGN_TOL:
                base = self.library.epoch_indices(pick.node_size, pick.session_index, epoch_size)
                chunks.append(base + int(round(ratio)))
            else:
                session = self.library.session(pick.node_size, pick.session_index)
                for start, end in session.busy_intervals():
                    s = start + pick.shift_s
                    e = end + pick.shift_s
                    first = int(s // epoch_size)
                    last = int(np.ceil(e / epoch_size)) if e > s else first + 1
                    chunks.append(np.arange(first, max(last, first + 1), dtype=np.int64))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        indices = np.unique(np.concatenate(chunks))
        return indices[indices < d]

    def concurrency_profile(self, epoch_size: float, tenant_ids: Optional[Iterable[int]] = None) -> np.ndarray:
        """Per-epoch count of concurrently active tenants (dense ``int32``)."""
        d = self.num_epochs(epoch_size)
        counts = np.zeros(d, dtype=np.int32)
        ids = self.tenant_ids if tenant_ids is None else list(tenant_ids)
        for tenant_id in ids:
            epochs = self.activity_epochs(tenant_id, epoch_size)
            counts[epochs] += 1
        return counts

    def active_tenant_ratio(self, epoch_size: float = 60.0, conditional: bool = True) -> float:
        """Average fraction of tenants concurrently active.

        With ``conditional=True`` (default) the average is taken over epochs
        where at least one tenant is active — the reading under which the
        §7.4 variants (squeezing activity into fewer wall-clock hours)
        *raise* the ratio while leaving each tenant's total activity
        unchanged; see DESIGN.md §5 and EXPERIMENTS.md.
        """
        counts = self.concurrency_profile(epoch_size)
        if conditional:
            busy = counts[counts > 0]
            if busy.size == 0:
                return 0.0
            return float(busy.mean()) / len(self.tenants)
        return float(counts.mean()) / len(self.tenants)

    def subset(self, tenant_ids: Iterable[int]) -> "ComposedWorkload":
        """A new workload restricted to the given tenants (same library)."""
        wanted = list(tenant_ids)
        tenants = [self.tenant(i) for i in wanted]
        picks = {i: self._picks[i] for i in wanted}
        return ComposedWorkload(tenants, picks, self.library, self.horizon_s)


class MultiTenantLogComposer:
    """Composes a :class:`ComposedWorkload` from a session library."""

    def __init__(self, config: EvaluationConfig, library: SessionLibrary) -> None:
        for node_size in config.node_sizes:
            if node_size not in library.node_sizes:
                raise WorkloadError(
                    f"library lacks sessions for node size {node_size} "
                    f"(has {library.node_sizes})"
                )
        self._config = config
        self._library = library
        self._rngs = RngFactory(config.seed).spawn("composition")

    def _holidays_for_zone(self, tz_offset: int, workdays: list[int]) -> set[int]:
        """Two shared public-holiday workdays for one time zone."""
        logs = self._config.logs
        count = min(logs.holiday_weekdays, len(workdays))
        if count == 0:
            return set()
        rng = self._rngs.stream("holidays", tz_offset)
        chosen = rng.choice(len(workdays), size=count, replace=False)
        return {workdays[int(i)] for i in chosen}

    def _session_starts(self, day: int, tz_offset: int) -> list[float]:
        """Start times (seconds) of the tenant's sessions on one workday."""
        logs = self._config.logs
        base = day * DAY + tz_offset * HOUR
        starts = [base]
        afternoon = base + logs.session_hours * HOUR
        if logs.include_lunch:
            afternoon += logs.lunch_hours * HOUR
        starts.append(afternoon)
        if logs.include_evening_session:
            starts.append(afternoon + logs.evening_gap_hours * HOUR)
        return starts

    def compose(self, num_tenants: Optional[int] = None) -> ComposedWorkload:
        """Compose logs for ``num_tenants`` tenants (default: config's T)."""
        config = self._config
        logs = config.logs
        count = config.num_tenants if num_tenants is None else int(num_tenants)
        if count < 1:
            raise WorkloadError(f"num_tenants must be >= 1, got {count!r}")

        size_rng = self._rngs.stream("sizes")
        node_sizes = sample_node_sizes(
            sorted(config.node_sizes), count, config.theta, size_rng
        )
        workdays = [
            day
            for day in range(logs.horizon_days)
            if day % 7 < logs.workdays_per_week
        ]
        holiday_cache: dict[int, set[int]] = {}

        tenants: list[TenantSpec] = []
        picks: dict[int, tuple[SessionPick, ...]] = {}
        for tenant_id in range(count):
            rng = self._rngs.stream("tenant", tenant_id)
            node_size = int(node_sizes[tenant_id])
            tz_offset = int(
                logs.tz_offsets_hours[int(rng.integers(0, len(logs.tz_offsets_hours)))]
            )
            if tz_offset not in holiday_cache:
                holiday_cache[tz_offset] = self._holidays_for_zone(tz_offset, workdays)
            holidays = holiday_cache[tz_offset]
            benchmark = "tpch" if rng.random() < 0.5 else "tpcds"
            sessions = self._library.sessions_for(node_size)
            tenant_picks: list[SessionPick] = []
            max_users = 1
            for day in workdays:
                if day in holidays:
                    continue
                for start in self._session_starts(day, tz_offset):
                    session_index = int(rng.integers(0, len(sessions)))
                    max_users = max(max_users, sessions[session_index].num_users)
                    tenant_picks.append(
                        SessionPick(
                            node_size=node_size,
                            session_index=session_index,
                            shift_s=start,
                        )
                    )
            tenants.append(
                TenantSpec(
                    tenant_id=tenant_id,
                    nodes_requested=node_size,
                    data_gb=config.data_gb_for_nodes(node_size),
                    benchmark=benchmark,
                    max_users=max_users,
                    tz_offset_hours=tz_offset,
                )
            )
            picks[tenant_id] = tuple(tenant_picks)
        return ComposedWorkload(
            tenants=tenants,
            picks=picks,
            library=self._library,
            horizon_s=logs.horizon_seconds,
        )
