"""Query log containers and interval algebra.

A :class:`QueryRecord` is one line of a collected query log: which tenant
submitted which template when, and how long it ran *on its dedicated MPPDB*
(the latency before consolidation — exactly the performance SLA, §1.1).
A :class:`TenantLog` is a tenant's time-ordered record list with the busy
intervals derived from it; busy intervals are what the epoch discretization
(:mod:`~repro.workload.activity`) and the run-time replay consume.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..errors import WorkloadError
from .tenant import TenantSpec

__all__ = ["QueryRecord", "TenantLog", "merge_intervals"]


@dataclass(frozen=True)
class QueryRecord:
    """One executed query in a log."""

    submit_time_s: float
    latency_s: float
    template: str
    user: int = 0
    batch_id: int = -1

    def __post_init__(self) -> None:
        if self.submit_time_s < 0:
            raise WorkloadError(f"submit time must be non-negative, got {self.submit_time_s!r}")
        if self.latency_s < 0:
            raise WorkloadError(f"latency must be non-negative, got {self.latency_s!r}")

    @property
    def finish_time_s(self) -> float:
        """Completion timestamp."""
        return self.submit_time_s + self.latency_s

    def shifted(self, offset_s: float) -> "QueryRecord":
        """Copy with the submit time shifted by ``offset_s`` (composition step)."""
        return replace(self, submit_time_s=self.submit_time_s + offset_s)


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of (possibly overlapping) half-open intervals, sorted and disjoint."""
    ordered = sorted((float(s), float(e)) for s, e in intervals)
    merged: list[tuple[float, float]] = []
    for start, end in ordered:
        if end < start:
            raise WorkloadError(f"interval end {end!r} precedes start {start!r}")
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


class TenantLog:
    """A tenant's time-ordered query log."""

    def __init__(self, tenant: TenantSpec, records: Sequence[QueryRecord]) -> None:
        self.tenant = tenant
        self.records: tuple[QueryRecord, ...] = tuple(
            sorted(records, key=lambda r: (r.submit_time_s, r.user, r.template))
        )

    def __len__(self) -> int:
        return len(self.records)

    @property
    def tenant_id(self) -> int:
        """Owning tenant's id."""
        return self.tenant.tenant_id

    def busy_intervals(self) -> list[tuple[float, float]]:
        """Disjoint intervals during which the tenant has a query running.

        This is the paper's *strong notion of inactive* (§4.3): the tenant
        is inactive exactly when no query of it is being executed anywhere.
        """
        return merge_intervals((r.submit_time_s, r.finish_time_s) for r in self.records)

    def total_busy_seconds(self) -> float:
        """Total time the tenant is active."""
        return sum(end - start for start, end in self.busy_intervals())

    def is_active_at(self, t: float) -> bool:
        """Whether some query is running at time ``t`` (half-open intervals)."""
        intervals = self.busy_intervals()
        starts = [s for s, _ in intervals]
        idx = bisect.bisect_right(starts, t) - 1
        if idx < 0:
            return False
        start, end = intervals[idx]
        return start <= t < end

    def window(self, start: float, end: float) -> "TenantLog":
        """Records submitted in ``[start, end)``, as a new log."""
        subset = [r for r in self.records if start <= r.submit_time_s < end]
        return TenantLog(self.tenant, subset)

    def horizon_s(self) -> float:
        """Completion time of the last query (0 for an empty log)."""
        if not self.records:
            return 0.0
        return max(r.finish_time_s for r in self.records)
