"""TPC-H query template set.

All 22 TPC-H queries as cost-model templates.  The per-GB costs model a
fast columnar MPPDB (milliseconds per GB single-node, i.e. queries of
roughly 0.5–5 s on the 2–32-node tenants of §7.1), calibrated so that the
consolidation outcomes match the paper at the epoch-size plateau — the
grouping quality is governed by the dimensionless ratios epoch-size /
query-duration and epoch-size / think-time, so shorter queries simply
shift Figure 7.1's plateau to smaller E (see EXPERIMENTS.md).  What
matters to the reproduction is the *relative* cost mix and the scale-out
classes:

* **Q1** is the paper's canonical *linear scale-out* query (Figure 1.1a) —
  a single-table scan-aggregate with no repartitioning.
* **Q19** is the canonical *non-linear* one (Figure 1.1c) — its join and
  OR-heavy predicates leave a serial fraction, modelled with Amdahl's law.

Other queries are classified linear (scan/aggregate-dominated), sublinear
(join-heavy with shuffle overhead) or Amdahl (serial-bottlenecked) from
their well-known query shapes.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..mppdb.scaleout import AmdahlScaleOut, LinearScaleOut, SublinearScaleOut
from .queries import QueryTemplate

__all__ = ["TPCH_TEMPLATES", "tpch_template"]


def _t(number: int, seconds_per_gb: float, curve) -> QueryTemplate:
    return QueryTemplate(
        name=f"tpch.q{number}",
        benchmark="tpch",
        seconds_per_gb=seconds_per_gb,
        curve=curve,
    )


#: The 22 TPC-H templates, keyed by query number.
TPCH_TEMPLATES: dict[int, QueryTemplate] = {
    1: _t(1, 0.0090, LinearScaleOut()),          # pricing summary: pure scan-agg
    2: _t(2, 0.0022, SublinearScaleOut(0.7)),    # min-cost supplier: nested joins
    3: _t(3, 0.0067, LinearScaleOut()),          # shipping priority
    4: _t(4, 0.0045, LinearScaleOut()),          # order priority check
    5: _t(5, 0.0083, SublinearScaleOut(0.75)),   # local supplier volume: 6-way join
    6: _t(6, 0.0037, LinearScaleOut()),          # forecast revenue: scan + filter
    7: _t(7, 0.0075, SublinearScaleOut(0.75)),   # volume shipping
    8: _t(8, 0.0075, SublinearScaleOut(0.7)),    # market share
    9: _t(9, 0.0135, SublinearScaleOut(0.7)),    # product type profit: largest join
    10: _t(10, 0.0067, LinearScaleOut()),        # returned items
    11: _t(11, 0.0015, SublinearScaleOut(0.8)),  # important stock
    12: _t(12, 0.0053, LinearScaleOut()),        # shipping modes
    13: _t(13, 0.0060, SublinearScaleOut(0.8)),  # customer distribution
    14: _t(14, 0.0037, LinearScaleOut()),        # promotion effect
    15: _t(15, 0.0045, LinearScaleOut()),        # top supplier
    16: _t(16, 0.0030, SublinearScaleOut(0.8)),  # parts/supplier relationship
    17: _t(17, 0.0105, AmdahlScaleOut(0.15)),    # small-quantity revenue: correlated subquery
    18: _t(18, 0.0120, SublinearScaleOut(0.75)), # large volume customer
    19: _t(19, 0.0083, AmdahlScaleOut(0.20)),    # discounted revenue: Figure 1.1c
    20: _t(20, 0.0060, AmdahlScaleOut(0.15)),    # potential part promotion
    21: _t(21, 0.0128, SublinearScaleOut(0.7)),  # suppliers who kept orders waiting
    22: _t(22, 0.0022, LinearScaleOut()),        # global sales opportunity
}


def tpch_template(number: int) -> QueryTemplate:
    """Look up a TPC-H template by query number (1..22)."""
    try:
        return TPCH_TEMPLATES[number]
    except KeyError:
        raise WorkloadError(f"TPC-H has queries 1..22, got {number!r}") from None
