"""Tenant descriptors.

A tenant rents an ``nodes_requested``-node MPPDB holding ``data_gb`` of
TPC-H or TPC-DS data (100 GB per node, §7.1) and has up to ``max_users``
autonomous users.  The descriptor is what the Deployment Advisor sees:
the *content* of queries stays private to the tenant (requirement R5 — query
templates may be unknown beforehand).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..mppdb.catalog import TenantData

__all__ = ["TenantSpec"]


@dataclass(frozen=True)
class TenantSpec:
    """Static description of one tenant."""

    tenant_id: int
    nodes_requested: int
    data_gb: float
    benchmark: str = "tpch"
    max_users: int = 1
    tz_offset_hours: int = 0

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise WorkloadError(f"tenant ids must be non-negative, got {self.tenant_id!r}")
        if self.nodes_requested < 1:
            raise WorkloadError(f"nodes_requested must be >= 1, got {self.nodes_requested!r}")
        if self.data_gb < 0:
            raise WorkloadError(f"data_gb must be non-negative, got {self.data_gb!r}")
        if self.benchmark not in ("tpch", "tpcds"):
            raise WorkloadError(f"unknown benchmark {self.benchmark!r}")
        if self.max_users < 1:
            raise WorkloadError(f"max_users must be >= 1, got {self.max_users!r}")
        if not (0 <= self.tz_offset_hours < 24):
            raise WorkloadError(
                f"tz_offset_hours must be in [0, 24), got {self.tz_offset_hours!r}"
            )

    def as_tenant_data(self) -> TenantData:
        """Catalog entry for deploying this tenant on an MPPDB instance."""
        tables = _benchmark_tables(self.benchmark)
        return TenantData(tenant_id=self.tenant_id, data_gb=self.data_gb, tables=tables)


def _benchmark_tables(benchmark: str) -> tuple[str, ...]:
    if benchmark == "tpch":
        return (
            "lineitem",
            "orders",
            "customer",
            "part",
            "partsupp",
            "supplier",
            "nation",
            "region",
        )
    return (
        "store_sales",
        "catalog_sales",
        "web_sales",
        "inventory",
        "item",
        "customer",
        "date_dim",
        "store",
    )
