"""Epoch discretization of tenant activity.

The tenant-grouping algorithms of Chapter 5 represent each tenant's
activity as a vector over ``d`` fixed-width time epochs: ``a_k = 1`` iff
the tenant has a query running during epoch ``k`` (the strong notion of
activity from §4.3).  Because activity is sparse (~10 % of epochs), this
module stores per-tenant *sorted active-epoch index arrays* instead of
dense 0/1 vectors; :class:`ActivityMatrix` bundles them with the epoch
count ``d`` and the tenants' node requests — exactly the input of the
LIVBPwFC problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .composer import ComposedWorkload

__all__ = [
    "active_epoch_indices",
    "ActivityItem",
    "ActivityMatrix",
    "active_tenant_ratio",
    "concurrency_profile",
]


def active_epoch_indices(
    intervals: Iterable[tuple[float, float]], epoch_size: float
) -> np.ndarray:
    """Sorted unique epoch indices touched by the given busy intervals.

    Epochs are half-open ``[k*E, (k+1)*E)``; an interval ending exactly on a
    boundary does not touch the next epoch, while a zero-length interval
    still marks the epoch containing its instant.
    """
    if epoch_size <= 0:
        raise WorkloadError(f"epoch size must be positive, got {epoch_size!r}")
    chunks: list[np.ndarray] = []
    for start, end in intervals:
        if end < start:
            raise WorkloadError(f"interval end {end!r} precedes start {start!r}")
        if start < 0:
            raise WorkloadError(f"intervals must be non-negative, got start {start!r}")
        first = int(start // epoch_size)
        last = int(np.ceil(end / epoch_size)) if end > start else first + 1
        chunks.append(np.arange(first, max(last, first + 1), dtype=np.int64))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


@dataclass(frozen=True)
class ActivityItem:
    """One LIVBPwFC item: a tenant's node request and active epochs."""

    tenant_id: int
    nodes_requested: int
    epochs: np.ndarray

    def __post_init__(self) -> None:
        if self.nodes_requested < 1:
            raise WorkloadError("nodes_requested must be >= 1")
        epochs = np.asarray(self.epochs, dtype=np.int64)
        if epochs.ndim != 1:
            raise WorkloadError("epochs must be a 1-d array")
        if epochs.size and (np.any(np.diff(epochs) <= 0) or epochs[0] < 0):
            raise WorkloadError("epochs must be sorted, unique and non-negative")
        object.__setattr__(self, "epochs", epochs)

    @property
    def active_epoch_count(self) -> int:
        """Number of epochs the tenant is active in."""
        return int(self.epochs.size)


class ActivityMatrix:
    """All tenants' activity at one epoch size (the grouping input)."""

    def __init__(self, items: Sequence[ActivityItem], num_epochs: int) -> None:
        if num_epochs < 1:
            raise WorkloadError("num_epochs must be >= 1")
        ids = [item.tenant_id for item in items]
        if len(set(ids)) != len(ids):
            raise WorkloadError("tenant ids must be unique")
        for item in items:
            if item.epochs.size and item.epochs[-1] >= num_epochs:
                raise WorkloadError(
                    f"tenant {item.tenant_id} has epochs beyond d={num_epochs}"
                )
        self.items: tuple[ActivityItem, ...] = tuple(items)
        self.num_epochs = int(num_epochs)
        self._by_id = {item.tenant_id: item for item in self.items}

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def item(self, tenant_id: int) -> ActivityItem:
        """Look up one tenant's item."""
        try:
            return self._by_id[tenant_id]
        except KeyError:
            raise WorkloadError(f"unknown tenant {tenant_id!r}") from None

    @classmethod
    def from_workload(
        cls, workload: "ComposedWorkload", epoch_size: float
    ) -> "ActivityMatrix":
        """Discretize a composed workload at the given epoch size."""
        d = workload.num_epochs(epoch_size)
        items = [
            ActivityItem(
                tenant_id=tenant.tenant_id,
                nodes_requested=tenant.nodes_requested,
                epochs=workload.activity_epochs(tenant.tenant_id, epoch_size),
            )
            for tenant in workload.tenants
        ]
        return cls(items, d)

    def total_nodes_requested(self) -> int:
        """``N`` — the sum of nodes requested by all tenants."""
        return sum(item.nodes_requested for item in self.items)

    def concurrency_profile(self) -> np.ndarray:
        """Per-epoch count of concurrently active tenants."""
        counts = np.zeros(self.num_epochs, dtype=np.int32)
        for item in self.items:
            counts[item.epochs] += 1
        return counts

    def dense_vector(self, tenant_id: int) -> np.ndarray:
        """The 0/1 activity vector of one tenant (for tests / tiny inputs)."""
        vec = np.zeros(self.num_epochs, dtype=np.int8)
        vec[self.item(tenant_id).epochs] = 1
        return vec


def concurrency_profile(items: Iterable[ActivityItem], num_epochs: int) -> np.ndarray:
    """Per-epoch active-tenant count over an arbitrary item subset."""
    counts = np.zeros(num_epochs, dtype=np.int32)
    for item in items:
        counts[item.epochs] += 1
    return counts


def active_tenant_ratio(matrix: ActivityMatrix, conditional: bool = True) -> float:
    """Average fraction of tenants concurrently active (see ComposedWorkload)."""
    counts = matrix.concurrency_profile()
    if conditional:
        busy = counts[counts > 0]
        if busy.size == 0:
            return 0.0
        return float(busy.mean()) / len(matrix)
    return float(counts.mean()) / len(matrix)
