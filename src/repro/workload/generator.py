"""Step 1 of the log-generation methodology: real query log collection.

"We imitate the activity of different kinds of tenants, submit queries to
MPPDBs, and collect the corresponding real query logs from the MPPDBs"
(§7.1).  Here the MPPDB is the simulated substrate: sessions run through
the fair-share execution engine of a dedicated instance sized to the
tenant, so the collected per-query latencies include intra-tenant
interference, just like the paper's.

The result is a :class:`SessionLibrary` — for each node size, a set of
3-hour session logs (the paper collects 100 per size) from which Step 2
(:mod:`~repro.workload.composer`) randomly picks when stitching multi-day
multi-tenant logs.  Each :class:`SessionLog` caches its merged busy
intervals and, per epoch size, its active-epoch index array, which keeps
composition at thousands of tenants cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..config import EvaluationConfig
from ..errors import WorkloadError
from ..rng import RngFactory
from .logs import QueryRecord, merge_intervals
from .queries import QueryTemplate
from .session import SessionConfig, run_user_session
from .tpcds import TPCDS_TEMPLATES
from .tpch import TPCH_TEMPLATES

__all__ = ["SessionLog", "SessionLibrary", "SessionLogGenerator"]


@dataclass(frozen=True)
class SessionLog:
    """One collected 3-hour session log (times relative to session start)."""

    node_size: int
    benchmark: str
    num_users: int
    records: tuple[QueryRecord, ...]
    duration_s: float

    def busy_intervals(self) -> list[tuple[float, float]]:
        """Merged intervals during which some query of the session runs."""
        return merge_intervals((r.submit_time_s, r.finish_time_s) for r in self.records)

    def total_busy_seconds(self) -> float:
        """Total active time within the session."""
        return sum(e - s for s, e in self.busy_intervals())


class SessionLibrary:
    """Per-node-size collections of session logs with cached epoch sets."""

    def __init__(self, sessions: Mapping[int, Sequence[SessionLog]]) -> None:
        if not sessions:
            raise WorkloadError("session library must not be empty")
        self._sessions: dict[int, tuple[SessionLog, ...]] = {}
        for node_size, logs in sessions.items():
            logs = tuple(logs)
            if not logs:
                raise WorkloadError(f"no sessions for node size {node_size}")
            if any(log.node_size != node_size for log in logs):
                raise WorkloadError(f"session node sizes disagree with key {node_size}")
            self._sessions[int(node_size)] = logs
        # epoch-index cache: (node_size, session index, epoch_size) -> array
        self._epoch_cache: dict[tuple[int, int, float], np.ndarray] = {}

    @property
    def node_sizes(self) -> tuple[int, ...]:
        """The node sizes the library covers, ascending."""
        return tuple(sorted(self._sessions))

    def sessions_for(self, node_size: int) -> tuple[SessionLog, ...]:
        """All sessions collected for ``node_size``-node tenants."""
        try:
            return self._sessions[node_size]
        except KeyError:
            raise WorkloadError(f"library has no sessions for node size {node_size!r}") from None

    def session(self, node_size: int, index: int) -> SessionLog:
        """One specific session."""
        sessions = self.sessions_for(node_size)
        if not (0 <= index < len(sessions)):
            raise WorkloadError(f"session index {index!r} out of range for size {node_size}")
        return sessions[index]

    def epoch_indices(self, node_size: int, index: int, epoch_size: float) -> np.ndarray:
        """Active-epoch indices of a session, relative to its start (cached)."""
        key = (node_size, index, float(epoch_size))
        cached = self._epoch_cache.get(key)
        if cached is not None:
            return cached
        log = self.session(node_size, index)
        chunks = []
        for start, end in log.busy_intervals():
            first = int(start // epoch_size)
            last = int(np.ceil(end / epoch_size)) if end > start else first + 1
            chunks.append(np.arange(first, max(last, first + 1), dtype=np.int64))
        if chunks:
            indices = np.unique(np.concatenate(chunks))
        else:
            indices = np.empty(0, dtype=np.int64)
        self._epoch_cache[key] = indices
        return indices

    def mean_busy_fraction(self) -> float:
        """Average fraction of the session a tenant is active, over all logs."""
        fractions = [
            log.total_busy_seconds() / log.duration_s
            for logs in self._sessions.values()
            for log in logs
        ]
        return float(np.mean(fractions))


class SessionLogGenerator:
    """Generates a :class:`SessionLibrary` per the §7.1 Step 1 procedure."""

    def __init__(self, config: EvaluationConfig, sessions_per_size: int = 24) -> None:
        if sessions_per_size < 1:
            raise WorkloadError("sessions_per_size must be >= 1")
        self._config = config
        self._sessions_per_size = sessions_per_size
        self._rngs = RngFactory(config.seed).spawn("session-library")

    def _templates(self, benchmark: str) -> list[QueryTemplate]:
        if benchmark == "tpch":
            return list(TPCH_TEMPLATES.values())
        return list(TPCDS_TEMPLATES.values())

    def generate_session(
        self, node_size: int, benchmark: str, num_users: int, rng: np.random.Generator
    ) -> SessionLog:
        """Collect one session log for a dedicated ``node_size``-node MPPDB."""
        logs_cfg = self._config.logs
        session_cfg = SessionConfig(
            duration_s=logs_cfg.session_seconds,
            max_batch=logs_cfg.max_batch,
            min_think_s=logs_cfg.min_think_s,
            max_think_s=logs_cfg.max_think_s,
        )
        data_gb = self._config.data_gb_for_nodes(node_size)
        templates = self._templates(benchmark)

        def work_of(template: QueryTemplate) -> float:
            return template.dedicated_latency_s(data_gb, node_size)

        completed, attribution = run_user_session(
            num_users=num_users,
            config=session_cfg,
            templates=templates,
            work_of=work_of,
            rng=rng,
        )
        records = []
        for execution in completed:
            user_id, template_name, batch_id = attribution[execution.query_id]
            records.append(
                QueryRecord(
                    submit_time_s=execution.submit_time,
                    latency_s=execution.latency_s,
                    template=template_name,
                    user=user_id,
                    batch_id=batch_id,
                )
            )
        return SessionLog(
            node_size=node_size,
            benchmark=benchmark,
            num_users=num_users,
            records=tuple(sorted(records, key=lambda r: r.submit_time_s)),
            duration_s=session_cfg.duration_s,
        )

    def generate(self) -> SessionLibrary:
        """Collect ``sessions_per_size`` logs for every node size of the config."""
        logs_cfg = self._config.logs
        library: dict[int, list[SessionLog]] = {}
        for node_size in self._config.node_sizes:
            sessions: list[SessionLog] = []
            for index in range(self._sessions_per_size):
                rng = self._rngs.stream("session", node_size, index)
                benchmark = "tpch" if rng.random() < 0.5 else "tpcds"
                num_users = int(rng.integers(1, logs_cfg.max_users + 1))
                sessions.append(self.generate_session(node_size, benchmark, num_users, rng))
            library[node_size] = sessions
        return SessionLibrary(library)
