"""Parametric query templates.

A :class:`QueryTemplate` is the cost-model stand-in for a real TPC-H/TPC-DS
query (DESIGN.md §2): a single-node cost per gigabyte of tenant data plus a
scale-out curve.  The dedicated latency of a query for a tenant with
``data_gb`` of data on an ``n``-node MPPDB is::

    latency = curve.latency(seconds_per_gb * data_gb, n)

Thrifty never looks inside queries — it only observes latencies and
activity — so this is the exact interface the system exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..mppdb.scaleout import LinearScaleOut, ScaleOutCurve

__all__ = ["QueryTemplate", "template_by_name"]


@dataclass(frozen=True)
class QueryTemplate:
    """Cost model for one benchmark query.

    Parameters
    ----------
    name:
        Template identifier, e.g. ``"tpch.q1"``.
    benchmark:
        ``"tpch"`` or ``"tpcds"``.
    seconds_per_gb:
        Single-node dedicated execution time per GB of tenant data.
    curve:
        Scale-out behaviour (linear for Q1-like scans, Amdahl for
        Q19-like repartitioning queries).
    """

    name: str
    benchmark: str
    seconds_per_gb: float
    curve: ScaleOutCurve = field(default_factory=LinearScaleOut)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("template name must be non-empty")
        if self.benchmark not in ("tpch", "tpcds"):
            raise WorkloadError(f"unknown benchmark {self.benchmark!r}")
        if self.seconds_per_gb <= 0:
            raise WorkloadError(f"seconds_per_gb must be positive, got {self.seconds_per_gb!r}")

    def dedicated_latency_s(self, data_gb: float, nodes: int) -> float:
        """Isolated-execution latency for ``data_gb`` of data on ``nodes`` nodes."""
        if data_gb < 0:
            raise WorkloadError(f"data size must be non-negative, got {data_gb!r}")
        return self.curve.latency(self.seconds_per_gb * data_gb, nodes)

    @property
    def is_linear_scale_out(self) -> bool:
        """Whether the template scales out perfectly linearly."""
        return isinstance(self.curve, LinearScaleOut)


def template_by_name(name: str) -> QueryTemplate:
    """Resolve a template by its full name, e.g. ``"tpch.q19"``.

    Used by the runtime replay to recover a logged query's cost model.
    """
    from .tpcds import TPCDS_TEMPLATES
    from .tpch import TPCH_TEMPLATES

    for registry in (TPCH_TEMPLATES, TPCDS_TEMPLATES):
        for template in registry.values():
            if template.name == name:
                return template
    raise WorkloadError(f"unknown query template {name!r}")
