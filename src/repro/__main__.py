"""``python -m repro`` — the Thrifty command line."""

import sys

from .cli import main

sys.exit(main())
