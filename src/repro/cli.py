"""Command-line front end: ``thrifty`` (or ``python -m repro``).

Subcommands:

* ``plan``    — generate a workload, run the Deployment Advisor, print the
  plan summary and optional per-group detail.
* ``replay``  — plan, deploy and replay the composed logs through the
  query router; print SLA outcomes and scaling actions.
* ``sweep``   — run a Table 7.1-style parameter sweep (one of epoch_size_s,
  num_tenants, theta, replication_factor, sla_percent) and print the
  three-panel rows of the §7.3 figures.
* ``loadtimes`` — print the Table 5.1 startup/bulk-load model.
* ``obs``     — digest a run-report directory written by
  ``replay --obs-out`` (headline counters, busiest groups, RT-TTP
  trajectory, routing decisions, scaling actions).
* ``bench``   — run registered performance scenarios (headline / fig7 /
  replay) at a named scale, write ``BENCH_<scenario>.json`` records, and
  gate them against ``benchmarks/baseline/`` (non-zero exit on
  regression).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis.report import ascii_series, format_table
from .analysis.sweeps import (
    GROUPING_HEADERS,
    BenchScale,
    build_workload,
    sweep_parameter,
)
from .bench import (
    BENCH_SCALES,
    DEFAULT_REGRESSION_THRESHOLD,
    compare_records,
    default_baseline_dir,
    run_scenarios,
    scenario_names,
    update_baselines,
    write_records,
)
from .config import EvaluationConfig
from .core.service import ThriftyService
from .errors import ReproError
from .mppdb.loading import LoadTimeModel, PAPER_LOAD_TABLE
from .obs import MemorySink, Observer, load_run_report, write_run_report
from .units import DAY, format_duration, format_size_gb

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``thrifty`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="thrifty",
        description="Thrifty: MPPDB-as-a-Service consolidation (SIGMOD 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tenants", type=int, default=300, help="number of tenants T")
        p.add_argument("--days", type=int, default=7, help="log horizon in days")
        p.add_argument("--sessions", type=int, default=8, help="library sessions per node size")
        p.add_argument("--theta", type=float, default=0.8, help="tenant-size Zipf skew")
        p.add_argument("--replication", type=int, default=3, help="replication factor R")
        p.add_argument("--sla", type=float, default=99.9, help="performance SLA P%%")
        p.add_argument("--epoch", type=float, default=1.0, help="epoch size E in seconds")
        p.add_argument("--seed", type=int, default=20130625, help="master random seed")

    plan = sub.add_parser("plan", help="compute a deployment plan")
    add_scale_args(plan)
    plan.add_argument("--grouping", choices=("two-step", "ffd"), default="two-step")
    plan.add_argument("--groups", action="store_true", help="print per-group detail")

    replay = sub.add_parser("replay", help="plan, deploy and replay the logs")
    add_scale_args(replay)
    replay.add_argument("--grouping", choices=("two-step", "ffd"), default="two-step")
    replay.add_argument(
        "--scaling",
        choices=("lightweight", "proactive", "whole-group", "disabled"),
        default="lightweight",
    )
    replay.add_argument("--replay-days", type=float, default=1.0, help="days of logs to replay")
    replay.add_argument(
        "--chaos-mtbf",
        type=float,
        default=None,
        metavar="SECONDS",
        help="arm random node failures with this per-node MTBF (chaos harness)",
    )
    replay.add_argument(
        "--obs-out",
        metavar="DIR",
        default=None,
        help="export metrics.jsonl / spans.jsonl / summary.json to DIR",
    )

    sweep = sub.add_parser("sweep", help="run a Table 7.1-style parameter sweep")
    add_scale_args(sweep)
    sweep.add_argument(
        "parameter",
        choices=("epoch_size_s", "num_tenants", "theta", "replication_factor", "sla_percent"),
    )
    sweep.add_argument("values", nargs="+", help="parameter values to sweep")
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="parallel fabric worker count (0 = in-process serial)",
    )

    sub.add_parser("loadtimes", help="print the Table 5.1 load-time model")

    bench = sub.add_parser(
        "bench", help="run performance scenarios and gate against baselines"
    )
    bench.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        default=None,
        help="scenario to run (repeatable; default: all registered)",
    )
    bench.add_argument(
        "--scale",
        choices=sorted(BENCH_SCALES),
        default="ci",
        help="bench scale (default: ci)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="parallel fabric worker count (0 = in-process serial)",
    )
    bench.add_argument(
        "--out",
        metavar="DIR",
        default=".",
        help="directory for BENCH_<scenario>.json records (default: .)",
    )
    bench.add_argument(
        "--baseline",
        metavar="DIR",
        default=None,
        help="baseline directory (default: the repo's benchmarks/baseline)",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run each scenario N times and record the fastest (default: 1)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="regression threshold as a fraction (default: 0.15)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the committed baselines from this run instead of gating",
    )

    obs = sub.add_parser("obs", help="summarize a replay --obs-out run report")
    obs.add_argument("directory", help="directory written by replay --obs-out")
    obs.add_argument(
        "--group",
        default=None,
        help="group whose RT-TTP trajectory to plot (default: busiest)",
    )
    obs.add_argument("--top", type=int, default=5, help="how many groups to list")
    return parser


def _scale_from_args(args: argparse.Namespace) -> BenchScale:
    return BenchScale(
        num_tenants=args.tenants,
        horizon_days=args.days,
        holiday_weekdays=0 if args.days < 14 else 1,
        sessions_per_size=args.sessions,
        seed=args.seed,
    )


def _config_from_args(args: argparse.Namespace) -> EvaluationConfig:
    return _scale_from_args(args).config(
        theta=args.theta,
        replication_factor=args.replication,
        sla_percent=args.sla,
        epoch_size_s=args.epoch,
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    workload = build_workload(config, args.sessions)
    service = ThriftyService(config, grouping=args.grouping)
    advice = service.deploy(workload)
    plan = advice.plan
    print(
        format_table(
            ["metric", "value"],
            [
                ["tenants", len(workload)],
                ["excluded from consolidation", len(advice.excluded)],
                ["tenant groups", len(plan)],
                ["nodes requested", plan.total_nodes_requested],
                ["nodes used", plan.total_nodes_used],
                ["effectiveness", f"{plan.consolidation_effectiveness:.1%}"],
                ["grouping", advice.grouping.solver],
                ["grouping time", f"{advice.grouping.solve_seconds:.2f}s"],
            ],
            title="Deployment plan",
        )
    )
    if args.groups:
        print()
        print(
            format_table(
                ["group", "tenants", "parallelism", "A", "nodes", "requested"],
                [
                    [
                        g.group_name,
                        len(g.tenants),
                        g.design.parallelism,
                        g.design.num_instances,
                        g.nodes_used,
                        g.nodes_requested,
                    ]
                    for g in plan
                ],
                title="Per-group detail",
            )
        )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    workload = build_workload(config, args.sessions)
    observer = Observer(MemorySink()) if args.obs_out else None
    service = ThriftyService(
        config, grouping=args.grouping, scaling=args.scaling, observer=observer
    )
    service.deploy(workload)
    until = args.replay_days * DAY
    armed = 0
    if args.chaos_mtbf is not None:
        armed = service.arm_chaos(args.chaos_mtbf, horizon=until)
    report = service.replay(until=until)
    sla = report.sla
    rows = [
        ["replayed", format_duration(args.replay_days * DAY)],
        ["queries completed", len(sla)],
        ["SLA met", f"{sla.fraction_met:.2%}"],
        ["mean normalized latency", f"{sla.mean_normalized():.3f}"],
        ["worst normalized latency", f"{sla.worst_normalized:.2f}"],
        ["effectiveness", f"{report.consolidation_effectiveness:.1%}"],
        ["scaling actions", len(report.scaling_actions())],
    ]
    if args.chaos_mtbf is not None:
        reports = report.group_reports.values()
        chaos = service.chaos
        rows += [
            ["chaos failures armed", armed],
            ["node failures", len(chaos.failures) if chaos is not None else 0],
            ["queries retried", sum(r.queries_retried for r in reports)],
            ["failovers", sum(r.failovers for r in reports)],
            ["queries failed", sum(r.queries_failed for r in reports)],
            ["worst rt_ttp", f"{min((r.rt_ttp_min() for r in reports), default=1.0):.5f}"],
        ]
    print(format_table(["metric", "value"], rows, title="Replay report"))
    for action in report.scaling_actions():
        print(
            f"  scaling at {format_duration(action.time)}: {action.kind} "
            f"over_active={list(action.over_active)} "
            f"loaded={format_size_gb(action.loaded_gb)}"
        )
    if observer is not None:
        paths = write_run_report(
            args.obs_out,
            observer,
            horizon=until,
            simulator_events=service.simulator.event_counts,
            meta={
                "command": "replay",
                "tenants": args.tenants,
                "replay_days": args.replay_days,
                "grouping": args.grouping,
                "scaling": args.scaling,
                "seed": args.seed,
                "chaos_mtbf": args.chaos_mtbf,
            },
        )
        print(f"observability report written to {paths.directory}/")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    caster = int if args.parameter in ("num_tenants", "replication_factor") else float
    values = [caster(v) for v in args.values]
    rows = sweep_parameter(
        args.parameter, values, scale=_scale_from_args(args), workers=args.workers
    )
    print(
        format_table(
            GROUPING_HEADERS,
            [r.as_list() for r in rows],
            title=f"Sweep over {args.parameter}",
        )
    )
    return 0


def _cmd_loadtimes(args: argparse.Namespace) -> int:
    model = LoadTimeModel()
    print(
        format_table(
            ["tenant/data", "startup_s", "bulk_load_s", "total"],
            [
                [
                    f"{nodes}-node / {format_size_gb(gb)}",
                    round(model.startup_seconds(nodes)),
                    round(model.bulk_load_seconds(gb)),
                    format_duration(model.provision_seconds(nodes, gb)),
                ]
                for nodes, (gb, __, __) in sorted(PAPER_LOAD_TABLE.items())
            ],
            title="Load-time model (calibrated to Table 5.1)",
        )
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    report = load_run_report(args.directory)
    queries = report.summary.get("queries", {})
    spans = report.summary.get("spans", {})
    by_status = spans.get("by_status", {})
    print(
        format_table(
            ["metric", "value"],
            [
                ["queries submitted", int(queries.get("submitted", 0))],
                ["queries completed", int(queries.get("completed", 0))],
                ["overflow queries", int(queries.get("overflow", 0))],
                ["SLA violations", int(queries.get("sla_violations", 0))],
                ["spans", spans.get("total", 0)],
                *[[f"  status {k}", v] for k, v in sorted(by_status.items())],
                ["scaling actions", len(report.summary.get("scaling_actions", []))],
            ],
            title=f"Run report: {report.directory}",
        )
    )

    top = report.top_groups(args.top)
    groups = report.summary.get("groups", {})
    if top:
        print()
        print(
            format_table(
                ["group", "submitted", "completed", "violations", "rt_ttp_min"],
                [
                    [
                        name,
                        int(groups[name].get("queries_submitted", 0)),
                        int(groups[name].get("queries_completed", 0)),
                        int(groups[name].get("sla_violations", 0)),
                        f"{groups[name].get('rt_ttp_min', 1.0):.5f}",
                    ]
                    for name, __ in top
                ],
                title=f"Top {len(top)} groups by queries submitted",
            )
        )

    focus = args.group if args.group is not None else (top[0][0] if top else None)
    if focus is not None:
        trajectory = report.rt_ttp_trajectory(focus)
        if trajectory:
            print()
            print(f"RT-TTP trajectory for {focus} ({len(trajectory)} samples):")
            print(ascii_series([v for __, v in trajectory], label="rt_ttp"))
            low = min(trajectory, key=lambda tv: tv[1])
            print(f"  min {low[1]:.5f} at {format_duration(low[0])}")

    faults = report.summary.get("faults", {})
    if faults and faults.get("node_failures", 0):
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["node failures", int(faults.get("node_failures", 0))],
                    ["query retries", int(faults.get("query_retries", 0))],
                    ["failovers", int(faults.get("failovers", 0))],
                    ["queries failed", int(faults.get("queries_failed", 0))],
                    *[
                        [f"  degraded {name}", format_duration(seconds)]
                        for name, seconds in sorted(
                            faults.get("degraded_seconds_by_instance", {}).items()
                        )
                    ],
                ],
                title="Fault tolerance",
            )
        )

    routing = report.summary.get("routing_decisions", {})
    if routing:
        print()
        print(
            format_table(
                ["outcome", "queries"],
                [[k, int(v)] for k, v in sorted(routing.items())],
                title="Routing decisions (Algorithm 1)",
            )
        )

    for action in report.summary.get("scaling_actions", []):
        attrs = action.get("attrs", {})
        print(
            f"  scaling at {format_duration(action.get('start', 0.0))}: "
            f"{attrs.get('policy', '?')} group={attrs.get('group', '?')} "
            f"over_active={attrs.get('over_active', [])}"
        )

    profile = report.summary.get("profile", {})
    if profile:
        print()
        print(
            format_table(
                ["site", "calls", "wall_s"],
                [
                    [name, int(entry.get("calls", 0)), f"{entry.get('wall_s', 0.0):.4f}"]
                    for name, entry in sorted(profile.items())
                ],
                title="Profile (wall clock)",
            )
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = args.scenarios if args.scenarios else scenario_names()
    records = run_scenarios(names, args.scale, args.workers, repeat=args.repeat)
    paths = write_records(records, Path(args.out))
    print(
        format_table(
            ["scenario", "wall_s", "epochs/s", "solver_s", "obs_ovh", "workers", "sha"],
            [
                [
                    r.scenario,
                    f"{r.wall_s:.2f}",
                    f"{r.metrics.get('epochs_per_s', 0.0):.1f}",
                    f"{r.metrics.get('solver_s', 0.0):.3f}",
                    (
                        f"{r.metrics['obs_overhead']:.1%}"
                        if "obs_overhead" in r.metrics
                        else "-"
                    ),
                    r.workers,
                    r.git_sha,
                ]
                for r in records
            ],
            title=f"thrifty bench (scale={args.scale})",
        )
    )
    for path in paths:
        print(f"  wrote {path}")
    baseline_dir = Path(args.baseline) if args.baseline else default_baseline_dir()
    if args.update_baseline:
        for path in update_baselines(records, baseline_dir):
            print(f"  baseline updated: {path}")
        return 0
    regressions, warnings = compare_records(records, baseline_dir, args.threshold)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if regressions:
        for finding in regressions:
            print(f"REGRESSION: {finding.message()}", file=sys.stderr)
        return 1
    print(f"bench gate passed ({len(records)} scenario(s), threshold {args.threshold:.0%})")
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "replay": _cmd_replay,
    "sweep": _cmd_sweep,
    "loadtimes": _cmd_loadtimes,
    "obs": _cmd_obs,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
