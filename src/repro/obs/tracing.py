"""Simulated-time span tracing of the query/tenant lifecycle.

A :class:`Span` is one interval of the replay — a query's life from
submission to its terminal state, a scale-up from trigger to ready, a
reconsolidation cycle — annotated with point-in-time events
(``submit``, ``route``, ``admit``, ``execute``, ``complete`` /
``violate``; see ``docs/OBSERVABILITY.md`` for the full taxonomy).

Spans carry **simulated** timestamps from the replay clock and ids from a
deterministic counter, so replaying the same scenario twice yields
byte-identical ``spans.jsonl`` exports.  A span is emitted to the sink
when it ends; :meth:`Tracer.end_open` force-closes whatever is still open
(queries in flight when the replay horizon is reached) with a
distinguishable status.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..errors import ObservabilityError
from .sink import AttrValue, ObsSink, SpanEvent, SpanRecord, NULL_SINK, attrs_tuple

__all__ = ["Span", "Tracer", "STATUS_INFLIGHT"]

#: Status given to spans force-closed at the replay horizon.
STATUS_INFLIGHT = "inflight"


class Span:
    """One open lifecycle interval; becomes a :class:`SpanRecord` on end."""

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        start: float,
        attrs: tuple[tuple[str, AttrValue], ...],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.attrs: dict[str, AttrValue] = dict(attrs)
        self.events: list[SpanEvent] = []
        self._ended = False

    @property
    def ended(self) -> bool:
        """Whether :meth:`end` has run."""
        return self._ended

    def set_attr(self, key: str, value: AttrValue) -> None:
        """Set (or overwrite) one span attribute."""
        self.attrs[key] = value

    def add_event(self, time: float, name: str, **attrs: Any) -> None:
        """Append a point-in-time annotation."""
        if self._ended:
            raise ObservabilityError(f"span {self.span_id} already ended")
        self.events.append(SpanEvent(time=time, name=name, attrs=attrs_tuple(attrs)))

    def end(self, time: float, status: str = "ok") -> SpanRecord:
        """Close the span and emit it to the tracer's sink."""
        if self._ended:
            raise ObservabilityError(f"span {self.span_id} already ended")
        if time < self.start:
            raise ObservabilityError(
                f"span {self.span_id} cannot end at {time!r} before its start {self.start!r}"
            )
        self._ended = True
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            kind=self.kind,
            start=self.start,
            end=time,
            status=status,
            attrs=attrs_tuple(self.attrs),
            events=tuple(self.events),
        )
        self._tracer._finish(self, record)
        return record


class Tracer:
    """Creates spans with deterministic ids and tracks the open set."""

    def __init__(self, sink: Optional[ObsSink] = None) -> None:
        self.sink: ObsSink = sink if sink is not None else NULL_SINK
        self._ids = itertools.count(1)
        self._open: dict[int, Span] = {}
        self._finished = 0

    @property
    def enabled(self) -> bool:
        """Whether spans reach a live sink."""
        return self.sink.enabled

    @property
    def finished_count(self) -> int:
        """Number of spans emitted so far."""
        return self._finished

    def start_span(
        self,
        name: str,
        time: float,
        kind: str = "",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span starting at simulated ``time``."""
        span = Span(
            tracer=self,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            kind=kind or name,
            start=time,
            attrs=attrs_tuple(attrs),
        )
        self._open[span.span_id] = span
        return span

    def open_spans(self) -> list[Span]:
        """Spans started but not yet ended, in start order."""
        return [self._open[key] for key in sorted(self._open)]

    def end_open(self, time: float, status: str = STATUS_INFLIGHT, kind: Optional[str] = None) -> int:
        """Force-close open spans (optionally only of ``kind``); returns count."""
        closed = 0
        for span in self.open_spans():
            if kind is not None and span.kind != kind:
                continue
            span.end(time, status=status)
            closed += 1
        return closed

    def _finish(self, span: Span, record: SpanRecord) -> None:
        self._open.pop(span.span_id, None)
        self._finished += 1
        if self.sink.enabled:
            self.sink.on_span(record)
