"""Labeled metric instruments over an :class:`~repro.obs.sink.ObsSink`.

Three instrument kinds, Prometheus-style:

* :class:`Counter` — monotonically increasing totals (queries submitted,
  routing decisions, scaling actions).
* :class:`Gauge` — last-write-wins levels (RT-TTP, concurrent active
  tenants).
* :class:`Histogram` — bucketed distributions (query latency, normalized
  latency, engine concurrency).

Instruments are *families* keyed by name; :meth:`MetricFamily.labels`
binds a family to one label set and returns a cheap bound handle.  Every
update carries the **simulated** timestamp and is forwarded to the sink
as a :class:`~repro.obs.sink.MetricSample` (JSONL export); the registry
additionally keeps a last-value snapshot for the Prometheus text format.

When the sink is disabled, updates return before touching any state —
the registry is free to share between an instrumented runtime and a
replay that never looks at it.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

from ..errors import ObservabilityError
from .sink import MetricSample, ObsSink, NULL_SINK

__all__ = [
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "BoundCounter",
    "BoundGauge",
    "BoundHistogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_NORMALIZED_BUCKETS",
    "DEFAULT_CONCURRENCY_BUCKETS",
]

LabelKey = tuple[tuple[str, str], ...]

#: Query-latency buckets (seconds): sub-second through multi-hour scans.
DEFAULT_LATENCY_BUCKETS = (1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 4 * 3600.0)

#: Normalized-latency buckets: < 1.0 is faster-than-dedicated, 1.0 meets
#: the SLA, the tail captures interference multiples.
DEFAULT_NORMALIZED_BUCKETS = (0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 4.0, 8.0)

#: Engine-concurrency buckets (queries sharing one database process).
DEFAULT_CONCURRENCY_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)


def _label_key(label_names: tuple[str, ...], labels: dict[str, str]) -> LabelKey:
    if set(labels) != set(label_names):
        raise ObservabilityError(
            f"labels {sorted(labels)} do not match declared names {sorted(label_names)}"
        )
    return tuple((name, str(labels[name])) for name in label_names)


class MetricFamily:
    """Common machinery: a named instrument with declared label names."""

    kind: str = ""

    def __init__(
        self,
        sink: ObsSink,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        self._sink = sink
        self.name = name
        self.help_text = help_text
        self.label_names: tuple[str, ...] = tuple(label_names)

    def _emit(self, time: float, value: float, key: LabelKey) -> None:
        self._sink.on_metric(
            MetricSample(time=time, name=self.name, kind=self.kind, value=value, labels=key)
        )


class BoundCounter:
    """A counter family bound to one label set."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "Counter", key: LabelKey) -> None:
        self._family = family
        self._key = key

    def inc(self, time: float, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) at simulated ``time``."""
        self._family.inc_key(self._key, time, amount)


class Counter(MetricFamily):
    """Monotonic counter family."""

    kind = "counter"

    def __init__(
        self,
        sink: ObsSink,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(sink, name, help_text, label_names)
        self._values: dict[LabelKey, float] = {}

    def labels(self, **labels: str) -> BoundCounter:
        """Bind to one label set."""
        return BoundCounter(self, _label_key(self.label_names, labels))

    def inc(self, time: float, amount: float = 1.0) -> None:
        """Increment the unlabeled child (family must declare no labels)."""
        self.inc_key(_label_key(self.label_names, {}), time, amount)

    def inc_key(self, key: LabelKey, time: float, amount: float) -> None:
        """Increment the child at ``key``; skipped when the sink is off."""
        if not self._sink.enabled:
            return
        if amount < 0:
            raise ObservabilityError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        total = self._values.get(key, 0.0) + amount
        self._values[key] = total
        self._emit(time, total, key)

    def value(self, **labels: str) -> float:
        """Current total for one label set (0.0 if never incremented)."""
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def snapshot(self) -> dict[LabelKey, float]:
        """Current totals per label set (copy)."""
        return dict(self._values)


class BoundGauge:
    """A gauge family bound to one label set."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "Gauge", key: LabelKey) -> None:
        self._family = family
        self._key = key

    def set(self, time: float, value: float) -> None:
        """Record the level at simulated ``time``."""
        self._family.set_key(self._key, time, value)


class Gauge(MetricFamily):
    """Last-write-wins level family."""

    kind = "gauge"

    def __init__(
        self,
        sink: ObsSink,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(sink, name, help_text, label_names)
        self._values: dict[LabelKey, float] = {}

    def labels(self, **labels: str) -> BoundGauge:
        """Bind to one label set."""
        return BoundGauge(self, _label_key(self.label_names, labels))

    def set(self, time: float, value: float) -> None:
        """Set the unlabeled child (family must declare no labels)."""
        self.set_key(_label_key(self.label_names, {}), time, value)

    def set_key(self, key: LabelKey, time: float, value: float) -> None:
        """Set the child at ``key``; skipped when the sink is off."""
        if not self._sink.enabled:
            return
        self._values[key] = value
        self._emit(time, value, key)

    def value(self, **labels: str) -> Optional[float]:
        """Last value for one label set, or ``None`` if never set."""
        return self._values.get(_label_key(self.label_names, labels))

    def snapshot(self) -> dict[LabelKey, float]:
        """Current levels per label set (copy)."""
        return dict(self._values)


class BoundHistogram:
    """A histogram family bound to one label set."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "Histogram", key: LabelKey) -> None:
        self._family = family
        self._key = key

    def observe(self, time: float, value: float) -> None:
        """Record one observation at simulated ``time``."""
        self._family.observe_key(self._key, time, value)


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # +inf bucket last
        self.total = 0.0
        self.count = 0


class Histogram(MetricFamily):
    """Bucketed distribution family with cumulative Prometheus buckets."""

    kind = "histogram"

    def __init__(
        self,
        sink: ObsSink,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(sink, name, help_text, label_names)
        ordered = tuple(float(b) for b in buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be non-empty, sorted and unique"
            )
        self.buckets = ordered
        self._states: dict[LabelKey, _HistogramState] = {}

    def labels(self, **labels: str) -> BoundHistogram:
        """Bind to one label set."""
        return BoundHistogram(self, _label_key(self.label_names, labels))

    def observe(self, time: float, value: float) -> None:
        """Observe on the unlabeled child (family must declare no labels)."""
        self.observe_key(_label_key(self.label_names, {}), time, value)

    def observe_key(self, key: LabelKey, time: float, value: float) -> None:
        """Record one observation; skipped when the sink is off."""
        if not self._sink.enabled:
            return
        state = self._states.get(key)
        if state is None:
            state = _HistogramState(len(self.buckets))
            self._states[key] = state
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        state.bucket_counts[index] += 1
        state.total += value
        state.count += 1
        self._emit(time, value, key)

    def counts(self, **labels: str) -> dict[str, int]:
        """Non-cumulative per-bucket counts keyed by upper bound (``+Inf`` last)."""
        state = self._states.get(_label_key(self.label_names, labels))
        if state is None:
            return {}
        keys = [_format_bound(b) for b in self.buckets] + ["+Inf"]
        return dict(zip(keys, state.bucket_counts))

    def snapshot(self) -> dict[LabelKey, _HistogramState]:
        """Histogram state per label set (shared objects; treat read-only)."""
        return dict(self._states)


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class MetricsRegistry:
    """Creates and indexes metric families over one sink.

    Families are memoized by name; asking for an existing name with a
    different kind or label set raises, so a metric name means one thing
    across the whole process.
    """

    def __init__(self, sink: Optional[ObsSink] = None) -> None:
        self.sink: ObsSink = sink if sink is not None else NULL_SINK
        self._families: dict[str, MetricFamily] = {}

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(sorted(self._families.values(), key=lambda f: f.name))

    def _register(self, family: MetricFamily) -> MetricFamily:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family) or existing.label_names != family.label_names:
                raise ObservabilityError(
                    f"metric {family.name!r} re-registered with a different "
                    "kind or label set"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter family."""
        family = self._register(Counter(self.sink, name, help_text, label_names))
        assert isinstance(family, Counter)
        return family

    def gauge(
        self, name: str, help_text: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge family."""
        family = self._register(Gauge(self.sink, name, help_text, label_names))
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family."""
        family = self._register(
            Histogram(self.sink, name, help_text, label_names, buckets)
        )
        assert isinstance(family, Histogram)
        return family

    def to_prometheus_text(self) -> str:
        """Render the current snapshot in the Prometheus text format."""
        lines: list[str] = []
        for family in self:
            lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, (Counter, Gauge)):
                for key, value in sorted(family.snapshot().items()):
                    lines.append(f"{family.name}{_render_labels(key)} {_format_value(value)}")
            elif isinstance(family, Histogram):
                for key, state in sorted(family.snapshot().items()):
                    cumulative = 0
                    for bound, count in zip(
                        [*family.buckets, math.inf], state.bucket_counts
                    ):
                        cumulative += count
                        le = (("le", _format_bound(bound)),)
                        lines.append(
                            f"{family.name}_bucket{_render_labels(key, le)} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} {_format_value(state.total)}"
                    )
                    lines.append(f"{family.name}_count{_render_labels(key)} {state.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
