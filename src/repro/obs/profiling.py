"""Wall-clock profiling hooks for the optimization hot paths.

Unlike everything else in :mod:`repro.obs` — which runs on the simulated
clock — the profiler measures *real* elapsed time: how long the packing
solvers (``two_step``, ``ffd``, ``direct``, ``exact``) and the Algorithm 1
routing path take on the hardware running the reproduction.  That is the
signal a perf PR needs to prove itself against ROADMAP's "fast as the
hardware allows".

The global :data:`PROFILER` starts disabled; a disabled profiler costs one
attribute load and a branch per instrumented call, so steady-state
benchmarks are unaffected.  Enable it (or use :meth:`ProfileRegistry.
capture`) around the region of interest and read :meth:`ProfileRegistry.
snapshot`.

Wall-clock readings never feed back into replay decisions, so THR001's
determinism guarantee is untouched: two replays of the same scenario make
identical simulated-time observations regardless of profiling.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, ParamSpec, TypeVar

__all__ = ["ProfileEntry", "ProfileRegistry", "PROFILER", "profiled"]

_P = ParamSpec("_P")
_T = TypeVar("_T")


@dataclass
class ProfileEntry:
    """Accumulated calls and wall-clock seconds for one profiled name."""

    calls: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON shape used in ``summary.json``."""
        return {"calls": float(self.calls), "wall_s": self.wall_s}


class ProfileRegistry:
    """Call counters and wall timers keyed by dotted site name."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._entries: dict[str, ProfileEntry] = {}

    def enable(self) -> None:
        """Start accumulating."""
        self.enabled = True

    def disable(self) -> None:
        """Stop accumulating (entries are kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all accumulated entries."""
        self._entries.clear()

    def record(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate one timed call (no-op while disabled)."""
        if not self.enabled:
            return
        entry = self._entries.get(name)
        if entry is None:
            entry = ProfileEntry()
            self._entries[name] = entry
        entry.calls += calls
        entry.wall_s += seconds

    def snapshot(self) -> dict[str, ProfileEntry]:
        """Entries accumulated so far (copies)."""
        return {
            name: ProfileEntry(calls=e.calls, wall_s=e.wall_s)
            for name, e in sorted(self._entries.items())
        }

    @contextmanager
    def capture(self) -> Iterator["ProfileRegistry"]:
        """Enable for the duration of a ``with`` block, restoring after."""
        previous = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = previous

    @contextmanager
    def time_block(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (cheap no-op while disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)


#: Process-global profiler used by the :func:`profiled` decorator.
PROFILER = ProfileRegistry()


def profiled(name: str) -> Callable[[Callable[_P, _T]], Callable[_P, _T]]:
    """Decorator: count and wall-time calls under ``name`` in :data:`PROFILER`.

    While the profiler is disabled the wrapper devolves to one attribute
    check before delegating, keeping instrumented hot paths benchmark-safe.
    """

    def decorate(func: Callable[_P, _T]) -> Callable[_P, _T]:
        def wrapper(*args: _P.args, **kwargs: _P.kwargs) -> _T:
            if not PROFILER.enabled:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                PROFILER.record(name, time.perf_counter() - start)

        wrapper.__name__ = func.__name__
        wrapper.__qualname__ = func.__qualname__
        wrapper.__doc__ = func.__doc__
        wrapper.__module__ = func.__module__
        wrapper.__wrapped__ = func  # type: ignore[attr-defined]
        return wrapper

    return decorate
