"""Pluggable observability sinks and the record types they carry.

Everything the instrumented runtime emits flows through an
:class:`ObsSink`: metric samples, finished spans, and one-shot events.
Three production sinks cover the use cases:

* :class:`NullSink` — the default.  ``enabled`` is ``False``, so every
  instrumentation site short-circuits before building a record; replays
  and benchmarks pay one attribute load and a branch per site.
* :class:`MemorySink` — collects everything in order, with JSONL export
  (``metrics.jsonl`` / ``spans.jsonl``) for the run report.
* :class:`TraceRecorderSink` — the compatibility shim around the original
  :class:`~repro.simulation.trace.TraceRecorder`: events append as trace
  entries and finished spans append as ``span/<kind>`` entries, so code
  written against the recorder keeps working unchanged.

:class:`TeeSink` fans one emission out to several sinks (e.g. a memory
sink for the run report plus the legacy recorder).

All timestamps are **simulated** seconds from the replay clock, so two
runs of the same scenario produce byte-identical exports.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from ..simulation.trace import TraceRecorder

__all__ = [
    "MetricSample",
    "SpanEvent",
    "SpanRecord",
    "ObsEvent",
    "ObsSink",
    "NullSink",
    "MemorySink",
    "TraceRecorderSink",
    "TeeSink",
    "NULL_SINK",
]

#: Values allowed in span/event attributes: JSON scalars plus flat tuples.
AttrValue = Union[str, int, float, bool, None, tuple]


def _jsonable(value: AttrValue) -> object:
    """Coerce an attribute value into a JSON-serialisable shape."""
    if isinstance(value, tuple):
        return list(value)
    return value


@dataclass(frozen=True)
class MetricSample:
    """One sim-time-stamped observation of a metric."""

    time: float
    name: str
    kind: str
    value: float
    labels: tuple[tuple[str, str], ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSONL row shape."""
        return {
            "t": self.time,
            "metric": self.name,
            "type": self.kind,
            "value": self.value,
            "labels": dict(self.labels),
        }


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation inside a span."""

    time: float
    name: str
    attrs: tuple[tuple[str, AttrValue], ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSON shape used inside a span row."""
        return {
            "t": self.time,
            "name": self.name,
            "attrs": {k: _jsonable(v) for k, v in self.attrs},
        }


@dataclass(frozen=True)
class SpanRecord:
    """A finished span: one lifecycle interval with its annotations."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    start: float
    end: float
    status: str
    attrs: tuple[tuple[str, AttrValue], ...] = ()
    events: tuple[SpanEvent, ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSONL row shape."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": {k: _jsonable(v) for k, v in self.attrs},
            "events": [e.as_dict() for e in self.events],
        }


@dataclass(frozen=True)
class ObsEvent:
    """A one-shot event (the :class:`TraceRecorder` record shape)."""

    time: float
    kind: str
    attrs: tuple[tuple[str, AttrValue], ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSON shape."""
        return {
            "t": self.time,
            "kind": self.kind,
            "attrs": {k: _jsonable(v) for k, v in self.attrs},
        }


class ObsSink(abc.ABC):
    """Destination for everything the instrumented runtime emits.

    ``enabled`` is the near-zero-cost switch: instrumentation sites check
    it *before* building any record, so a disabled sink costs one branch.
    """

    enabled: bool = True

    @abc.abstractmethod
    def on_metric(self, sample: MetricSample) -> None:
        """Receive one metric sample."""

    @abc.abstractmethod
    def on_span(self, span: SpanRecord) -> None:
        """Receive one finished span."""

    @abc.abstractmethod
    def on_event(self, event: ObsEvent) -> None:
        """Receive one one-shot event."""


class NullSink(ObsSink):
    """Discards everything; ``enabled`` is ``False`` so emitters skip work."""

    enabled = False

    def on_metric(self, sample: MetricSample) -> None:
        """Drop the sample."""

    def on_span(self, span: SpanRecord) -> None:
        """Drop the span."""

    def on_event(self, event: ObsEvent) -> None:
        """Drop the event."""


#: Shared default sink — stateless, safe to share across services.
NULL_SINK = NullSink()


class MemorySink(ObsSink):
    """Collects every emission in arrival order, with JSONL export."""

    def __init__(self) -> None:
        self.metrics: list[MetricSample] = []
        self.spans: list[SpanRecord] = []
        self.events: list[ObsEvent] = []

    def on_metric(self, sample: MetricSample) -> None:
        """Append the sample."""
        self.metrics.append(sample)

    def on_span(self, span: SpanRecord) -> None:
        """Append the span."""
        self.spans.append(span)

    def on_event(self, event: ObsEvent) -> None:
        """Append the event."""
        self.events.append(event)

    def metric_samples(self, name: str, **labels: str) -> list[MetricSample]:
        """Samples of ``name`` whose labels include every ``labels`` pair."""
        wanted = set(labels.items())
        return [
            s for s in self.metrics if s.name == name and wanted <= set(s.labels)
        ]

    def spans_of(self, kind: str) -> list[SpanRecord]:
        """All finished spans of the given kind, in finish order."""
        return [s for s in self.spans if s.kind == kind]

    def write_metrics_jsonl(self, path: Union[str, Path]) -> Path:
        """Write every metric sample as one JSON object per line."""
        return _write_jsonl(path, (s.as_dict() for s in self.metrics))

    def write_spans_jsonl(self, path: Union[str, Path]) -> Path:
        """Write every finished span as one JSON object per line."""
        return _write_jsonl(path, (s.as_dict() for s in self.spans))


def _write_jsonl(path: Union[str, Path], rows: Iterable[Mapping[str, object]]) -> Path:
    """Write ``rows`` as JSON Lines; parents are created as needed."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
    return target


class TraceRecorderSink(ObsSink):
    """Compatibility shim: forwards emissions into a :class:`TraceRecorder`.

    Events map 1:1 onto trace entries; a finished span becomes one
    ``span/<kind>`` entry at its end time (carrying start/status/attrs).
    Metric samples are not recorded — the recorder predates metrics and
    its consumers only understand events.
    """

    def __init__(self, recorder: Optional[TraceRecorder] = None) -> None:
        self.recorder = recorder if recorder is not None else TraceRecorder()

    def on_metric(self, sample: MetricSample) -> None:
        """Metrics have no trace-entry representation; dropped."""

    def on_span(self, span: SpanRecord) -> None:
        """Record the finished span as a ``span/<kind>`` entry."""
        self.recorder.record(
            span.end,
            f"span/{span.kind or span.name}",
            start=span.start,
            status=span.status,
            **{k: _jsonable(v) for k, v in span.attrs},
        )

    def on_event(self, event: ObsEvent) -> None:
        """Record the event verbatim."""
        self.recorder.record(
            event.time, event.kind, **{k: _jsonable(v) for k, v in event.attrs}
        )


class TeeSink(ObsSink):
    """Fans every emission out to several child sinks."""

    def __init__(self, sinks: Sequence[ObsSink]) -> None:
        self.sinks: tuple[ObsSink, ...] = tuple(sinks)
        self.enabled = any(s.enabled for s in self.sinks)

    def on_metric(self, sample: MetricSample) -> None:
        """Forward to every enabled child."""
        for sink in self.sinks:
            if sink.enabled:
                sink.on_metric(sample)

    def on_span(self, span: SpanRecord) -> None:
        """Forward to every enabled child."""
        for sink in self.sinks:
            if sink.enabled:
                sink.on_span(span)

    def on_event(self, event: ObsEvent) -> None:
        """Forward to every enabled child."""
        for sink in self.sinks:
            if sink.enabled:
                sink.on_event(event)


def attrs_tuple(attrs: Mapping[str, Any]) -> tuple[tuple[str, AttrValue], ...]:
    """Normalize an attribute mapping into the hashable record shape."""
    out: list[tuple[str, AttrValue]] = []
    for key, value in attrs.items():
        if isinstance(value, (list, set, frozenset)):
            out.append((key, tuple(sorted(value) if isinstance(value, (set, frozenset)) else value)))
        else:
            out.append((key, value))
    return tuple(out)
