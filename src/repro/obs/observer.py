"""The :class:`Observer` façade: one handle for sink + metrics + tracer.

The instrumented layers (:mod:`repro.core.runtime`, routing, scaling, the
Tenant Activity Monitor, the execution engine) each hold one observer and
guard every instrumentation site with ``observer.enabled`` — a single
attribute load and branch when observability is off.

The observer pre-declares the standard Thrifty instrument set (metric
names are part of the public contract; see ``docs/OBSERVABILITY.md``), so
all layers agree on names and labels without string-typo drift.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    Counter,
    DEFAULT_CONCURRENCY_BUCKETS,
    DEFAULT_NORMALIZED_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import PROFILER, ProfileRegistry
from .sink import MemorySink, NULL_SINK, ObsEvent, ObsSink, TeeSink, attrs_tuple
from .tracing import Tracer

__all__ = ["Observer", "NULL_OBSERVER"]


class Observer:
    """Bundles a sink, a metrics registry, a tracer and the profiler."""

    def __init__(
        self,
        sink: Optional[ObsSink] = None,
        profiler: Optional[ProfileRegistry] = None,
    ) -> None:
        self.sink: ObsSink = sink if sink is not None else NULL_SINK
        self.metrics = MetricsRegistry(self.sink)
        self.tracer = Tracer(self.sink)
        self.profiler: ProfileRegistry = profiler if profiler is not None else PROFILER

        m = self.metrics
        #: Queries scheduled into the replay, per tenant group.
        self.queries_submitted: Counter = m.counter(
            "thrifty_queries_submitted_total", "queries submitted to the group", ("group",)
        )
        #: Queries that reached a terminal state, per tenant group.
        self.queries_completed: Counter = m.counter(
            "thrifty_queries_completed_total", "queries completed by the group", ("group",)
        )
        #: Queries concurrently admitted onto a busy tuning MPPDB.
        self.queries_overflow: Counter = m.counter(
            "thrifty_queries_overflow_total",
            "queries overflowed onto a busy MPPDB_0",
            ("group",),
        )
        #: Completed queries that missed their before-consolidation latency.
        self.sla_violations: Counter = m.counter(
            "thrifty_sla_violations_total", "completed queries that missed the SLA", ("group",)
        )
        #: Algorithm 1 outcomes (pinned/tenant-affinity/tuning-free/free/overflow).
        self.routing_decisions: Counter = m.counter(
            "thrifty_routing_decisions_total",
            "Algorithm 1 routing decisions by outcome",
            ("group", "outcome"),
        )
        #: Elastic scaling actions by policy kind.
        self.scaling_actions: Counter = m.counter(
            "thrifty_scaling_actions_total",
            "elastic scaling actions taken",
            ("group", "kind"),
        )
        #: Run-time TTP sampled at every monitor tick.
        self.rt_ttp: Gauge = m.gauge(
            "thrifty_rt_ttp", "run-time time-percentage over the sliding window", ("group",)
        )
        #: The concurrent-active-tenant signal, sampled on every change.
        self.concurrent_active: Gauge = m.gauge(
            "thrifty_concurrent_active_tenants",
            "concurrently active tenants in the group",
            ("group",),
        )
        #: Observed wall latency of completed queries (simulated seconds).
        self.query_latency: Histogram = m.histogram(
            "thrifty_query_latency_seconds", "observed query latency", ("group",)
        )
        #: Observed / baseline latency of completed queries.
        self.normalized_latency: Histogram = m.histogram(
            "thrifty_normalized_latency",
            "observed over baseline latency",
            ("group",),
            buckets=DEFAULT_NORMALIZED_BUCKETS,
        )
        #: Queries accepted by each MPPDB's shared-process engine.
        self.engine_queries: Counter = m.counter(
            "thrifty_engine_queries_total", "queries accepted by the engine", ("instance",)
        )
        #: Engine concurrency observed at each admission.
        self.engine_concurrency: Histogram = m.histogram(
            "thrifty_engine_concurrency",
            "concurrency level at query admission",
            ("instance",),
            buckets=DEFAULT_CONCURRENCY_BUCKETS,
        )
        #: Node failures handled by the health manager, per owning instance.
        self.node_failures: Counter = m.counter(
            "thrifty_node_failures_total", "node failures handled", ("instance",)
        )
        #: Query retry attempts after an instance failure aborted them.
        self.query_retries: Counter = m.counter(
            "thrifty_query_retries_total", "query retry attempts", ("group",)
        )
        #: Retries that landed on a different instance than the failed one.
        self.failovers: Counter = m.counter(
            "thrifty_failovers_total", "queries failed over to a surviving replica", ("group",)
        )
        #: Queries that exhausted fault handling (typed FaultError outcomes).
        self.queries_failed: Counter = m.counter(
            "thrifty_queries_failed_total", "queries failed after fault handling", ("group",)
        )
        #: Cumulative time instances spent not-READY because of failures.
        self.instance_degraded_seconds: Counter = m.counter(
            "thrifty_instance_degraded_seconds",
            "cumulative seconds an instance was degraded or down",
            ("instance",),
        )
        #: Time to restore a failed node (allocation + startup + shard reload).
        self.replacement_time: Histogram = m.histogram(
            "thrifty_node_replacement_seconds",
            "node replacement time from failure to ready",
            ("instance",),
        )

    @property
    def enabled(self) -> bool:
        """Whether instrumentation sites should do any work."""
        return self.sink.enabled

    def event(self, time: float, kind: str, **attrs: object) -> None:
        """Emit a one-shot event (the TraceRecorder record shape)."""
        if self.sink.enabled:
            self.sink.on_event(ObsEvent(time=time, kind=kind, attrs=attrs_tuple(attrs)))

    def memory_sink(self) -> Optional[MemorySink]:
        """The first :class:`MemorySink` behind this observer, if any."""
        sink = self.sink
        if isinstance(sink, MemorySink):
            return sink
        if isinstance(sink, TeeSink):
            for child in sink.sinks:
                if isinstance(child, MemorySink):
                    return child
        return None


#: Shared do-nothing observer used as the default everywhere.
NULL_OBSERVER = Observer(NULL_SINK)
