"""``repro.obs`` — sim-time-aware observability for the Thrifty runtime.

The Tenant Activity Monitor's whole job is *measuring* the consolidation
guarantee (PAPER ch. 3, 5.1); this package is the reproduction's
measurement plane:

* **Metrics** — labeled :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments, stamped with simulated time, exported
  as JSONL or Prometheus text (:mod:`repro.obs.metrics`).
* **Tracing** — spans over the query/tenant lifecycle (``submit → route
  → admit → execute → complete``/``violate``), plus scaling and
  reconsolidation spans, with deterministic ids (:mod:`repro.obs.tracing`).
* **Profiling** — wall-clock timers and call counters around the packing
  solvers and the routing hot path (:mod:`repro.obs.profiling`).
* **Sinks** — pluggable destinations; the default :data:`NULL_SINK`
  makes every instrumentation site a single branch
  (:mod:`repro.obs.sink`).
* **Run reports** — ``metrics.jsonl`` / ``spans.jsonl`` /
  ``summary.json`` writers and readers (:mod:`repro.obs.report`), wired
  into ``thrifty replay --obs-out`` and the ``thrifty obs`` subcommand.

Minimal session::

    from repro.obs import MemorySink, Observer, write_run_report

    observer = Observer(MemorySink())
    service = ThriftyService(config, observer=observer)
    service.deploy(workload)
    service.replay(until=DAY)
    write_run_report("out/", observer, horizon=DAY)

The original :class:`~repro.simulation.trace.TraceRecorder` is subsumed
by the sink API but kept as a compatibility shim: it is re-exported here,
and :class:`TraceRecorderSink` adapts it to the sink interface.
"""

from ..simulation.trace import TraceEntry, TraceRecorder
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import NULL_OBSERVER, Observer
from .profiling import PROFILER, ProfileRegistry, profiled
from .report import RunReport, build_summary, load_run_report, write_run_report
from .sink import (
    MemorySink,
    MetricSample,
    NullSink,
    NULL_SINK,
    ObsEvent,
    ObsSink,
    SpanEvent,
    SpanRecord,
    TeeSink,
    TraceRecorderSink,
)
from .tracing import STATUS_INFLIGHT, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "NULL_OBSERVER",
    "PROFILER",
    "ProfileRegistry",
    "profiled",
    "RunReport",
    "build_summary",
    "load_run_report",
    "write_run_report",
    "MemorySink",
    "MetricSample",
    "NullSink",
    "NULL_SINK",
    "ObsEvent",
    "ObsSink",
    "SpanEvent",
    "SpanRecord",
    "TeeSink",
    "TraceRecorderSink",
    "Span",
    "STATUS_INFLIGHT",
    "Tracer",
    "TraceEntry",
    "TraceRecorder",
]
