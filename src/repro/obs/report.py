"""Run reports: ``metrics.jsonl`` / ``spans.jsonl`` / ``summary.json``.

:func:`write_run_report` dumps everything a :class:`~repro.obs.sink.
MemorySink` collected during a replay into a directory, plus a digested
``summary.json`` (RT-TTP trajectories, time-weighted concurrency
histograms, routing-decision counts, SLA violations, scaling actions,
profiler readings).  The summary is built *only* from the sink contents,
so any replay instrumented through an :class:`~repro.obs.observer.
Observer` — CLI, tests, notebooks — exports the same way.

:func:`load_run_report` reads a directory back for the ``thrifty obs``
subcommand and ``examples/observability_demo.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from ..errors import ObservabilityError
from .observer import Observer
from .sink import MemorySink

__all__ = ["RunReportPaths", "RunReport", "build_summary", "write_run_report", "load_run_report"]

METRICS_FILENAME = "metrics.jsonl"
SPANS_FILENAME = "spans.jsonl"
SUMMARY_FILENAME = "summary.json"


@dataclass(frozen=True)
class RunReportPaths:
    """Where one run report landed on disk."""

    directory: Path
    metrics: Path
    spans: Path
    summary: Path


def _counter_last_by_label(
    sink: MemorySink, name: str, label: str
) -> dict[str, float]:
    """Final running total of a counter, keyed by one label's value."""
    totals: dict[str, float] = {}
    for sample in sink.metrics:
        if sample.name != name:
            continue
        labels = dict(sample.labels)
        key = labels.get(label, "")
        totals[key] = sample.value  # samples arrive in order; last wins
    return totals


def _gauge_trajectory(sink: MemorySink, name: str, label: str) -> dict[str, list[list[float]]]:
    """All ``(t, value)`` samples of a gauge, keyed by one label's value."""
    out: dict[str, list[list[float]]] = {}
    for sample in sink.metrics:
        if sample.name != name:
            continue
        key = dict(sample.labels).get(label, "")
        out.setdefault(key, []).append([sample.time, sample.value])
    return out


def _time_weighted_histogram(
    samples: list[list[float]], horizon: Optional[float]
) -> dict[str, float]:
    """Seconds spent at each gauge level, from change-point samples."""
    if not samples:
        return {}
    weights: dict[str, float] = {}
    end_time = horizon if horizon is not None else samples[-1][0]
    for (t, v), t_next in zip(samples, [row[0] for row in samples[1:]] + [end_time]):
        duration = max(0.0, t_next - t)
        if duration > 0:
            key = str(int(v)) if float(v).is_integer() else repr(v)
            weights[key] = weights.get(key, 0.0) + duration
    return dict(sorted(weights.items(), key=lambda kv: (len(kv[0]), kv[0])))


def build_summary(
    sink: MemorySink,
    observer: Optional[Observer] = None,
    horizon: Optional[float] = None,
    simulator_events: Optional[Mapping[str, int]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> dict[str, Any]:
    """Digest a sink's contents into the ``summary.json`` structure."""
    submitted = _counter_last_by_label(sink, "thrifty_queries_submitted_total", "group")
    completed = _counter_last_by_label(sink, "thrifty_queries_completed_total", "group")
    overflow = _counter_last_by_label(sink, "thrifty_queries_overflow_total", "group")
    violations = _counter_last_by_label(sink, "thrifty_sla_violations_total", "group")
    rt_ttp = _gauge_trajectory(sink, "thrifty_rt_ttp", "group")
    concurrency = _gauge_trajectory(sink, "thrifty_concurrent_active_tenants", "group")

    groups: dict[str, dict[str, Any]] = {}
    for name in sorted(set(submitted) | set(completed) | set(rt_ttp) | set(concurrency)):
        trajectory = rt_ttp.get(name, [])
        groups[name] = {
            "queries_submitted": submitted.get(name, 0.0),
            "queries_completed": completed.get(name, 0.0),
            "queries_overflow": overflow.get(name, 0.0),
            "sla_violations": violations.get(name, 0.0),
            "rt_ttp_trajectory": trajectory,
            "rt_ttp_min": min((v for _, v in trajectory), default=1.0),
            "concurrency_histogram": _time_weighted_histogram(
                concurrency.get(name, []), horizon
            ),
        }

    # Counters emit running totals per (group, outcome); keep the final
    # total of each pair, then aggregate across groups per outcome.
    per_pair: dict[tuple[str, str], float] = {}
    for sample in sink.metrics:
        if sample.name != "thrifty_routing_decisions_total":
            continue
        labels = dict(sample.labels)
        per_pair[(labels.get("group", ""), labels.get("outcome", ""))] = sample.value
    routing: dict[str, float] = {}
    for (_, outcome), value in per_pair.items():
        routing[outcome] = routing.get(outcome, 0.0) + value

    node_failures = _counter_last_by_label(sink, "thrifty_node_failures_total", "instance")
    retries = _counter_last_by_label(sink, "thrifty_query_retries_total", "group")
    failovers = _counter_last_by_label(sink, "thrifty_failovers_total", "group")
    failed = _counter_last_by_label(sink, "thrifty_queries_failed_total", "group")
    degraded = _counter_last_by_label(
        sink, "thrifty_instance_degraded_seconds", "instance"
    )

    scaling = [span.as_dict() for span in sink.spans_of("scaling")]
    by_status: dict[str, int] = {}
    query_spans = 0
    for span in sink.spans:
        by_status[span.status] = by_status.get(span.status, 0) + 1
        if span.kind == "query":
            query_spans += 1

    summary: dict[str, Any] = {
        "meta": dict(meta or {}),
        "queries": {
            "submitted": sum(submitted.values()),
            "completed": sum(completed.values()),
            "overflow": sum(overflow.values()),
            "sla_violations": sum(violations.values()),
        },
        "spans": {
            "total": len(sink.spans),
            "query_spans": query_spans,
            "by_status": dict(sorted(by_status.items())),
        },
        "groups": groups,
        "routing_decisions": dict(sorted(routing.items())),
        "scaling_actions": scaling,
        "simulator_events": dict(sorted((simulator_events or {}).items())),
        "faults": {
            "node_failures": sum(node_failures.values()),
            "node_failures_by_instance": dict(sorted(node_failures.items())),
            "query_retries": sum(retries.values()),
            "failovers": sum(failovers.values()),
            "queries_failed": sum(failed.values()),
            "degraded_seconds_by_instance": dict(sorted(degraded.items())),
        },
    }
    profiler = observer.profiler if observer is not None else None
    if profiler is not None:
        summary["profile"] = {
            name: entry.as_dict() for name, entry in profiler.snapshot().items()
        }
    return summary


def write_run_report(
    out_dir: Union[str, Path],
    observer: Observer,
    horizon: Optional[float] = None,
    simulator_events: Optional[Mapping[str, int]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> RunReportPaths:
    """Write metrics.jsonl, spans.jsonl and summary.json under ``out_dir``.

    The observer must be backed (directly or through a tee) by a
    :class:`MemorySink`; the null sink has nothing to export.
    """
    sink = observer.memory_sink()
    if sink is None:
        raise ObservabilityError(
            "run reports need an Observer backed by a MemorySink; "
            "the null sink collects nothing"
        )
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    metrics_path = sink.write_metrics_jsonl(directory / METRICS_FILENAME)
    spans_path = sink.write_spans_jsonl(directory / SPANS_FILENAME)
    summary = build_summary(
        sink,
        observer=observer,
        horizon=horizon,
        simulator_events=simulator_events,
        meta=meta,
    )
    summary_path = directory / SUMMARY_FILENAME
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return RunReportPaths(
        directory=directory, metrics=metrics_path, spans=spans_path, summary=summary_path
    )


@dataclass
class RunReport:
    """A run report read back from disk."""

    directory: Path
    summary: dict[str, Any]
    metrics: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] = field(default_factory=list)

    def top_groups(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` busiest groups by queries submitted, descending."""
        groups: Mapping[str, Mapping[str, Any]] = self.summary.get("groups", {})
        ranked = sorted(
            ((name, float(info.get("queries_submitted", 0.0))) for name, info in groups.items()),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:n]

    def rt_ttp_trajectory(self, group: str) -> list[tuple[float, float]]:
        """A group's RT-TTP samples from the summary."""
        info: Mapping[str, Any] = self.summary.get("groups", {}).get(group, {})
        return [(float(t), float(v)) for t, v in info.get("rt_ttp_trajectory", [])]

    def metric_samples(self, name: str) -> list[dict[str, Any]]:
        """Rows of ``metrics.jsonl`` for one metric name."""
        return [row for row in self.metrics if row.get("metric") == name]


def _read_jsonl(path: Path) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    if not path.exists():
        return rows
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def load_run_report(directory: Union[str, Path]) -> RunReport:
    """Read a run report directory written by :func:`write_run_report`."""
    base = Path(directory)
    summary_path = base / SUMMARY_FILENAME
    if not summary_path.exists():
        raise ObservabilityError(f"no {SUMMARY_FILENAME} under {base}")
    summary = json.loads(summary_path.read_text(encoding="utf-8"))
    return RunReport(
        directory=base,
        summary=summary,
        metrics=_read_jsonl(base / METRICS_FILENAME),
        spans=_read_jsonl(base / SPANS_FILENAME),
    )
