"""Deterministic random-number streams.

Every stochastic component of the reproduction (log generation, tenant-size
sampling, failure injection) draws from a named sub-stream derived from a
single master seed, so experiments are reproducible end-to-end and
independent components do not perturb each other's randomness when one of
them changes how many draws it makes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a name path.

    The derivation hashes the textual path so that streams are stable across
    runs and insensitive to the order in which other streams are created.
    """
    payload = repr((int(master_seed),) + tuple(str(n) for n in names)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Factory of independent, reproducible :class:`numpy.random.Generator` streams.

    Example::

        rngs = RngFactory(seed=42)
        tenant_rng = rngs.stream("tenant", 17)   # same generator every run
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory derives all streams from."""
        return self._seed

    def stream(self, *names: object) -> np.random.Generator:
        """Return a fresh generator for the sub-stream identified by ``names``."""
        return np.random.default_rng(derive_seed(self._seed, *names))

    def spawn(self, *names: object) -> "RngFactory":
        """Return a child factory rooted at the given name path."""
        return RngFactory(derive_seed(self._seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"
