"""Discrete-event simulation substrate.

A minimal but complete event-driven simulator used by the MPPDB execution
model and the Thrifty runtime replay: a priority event queue
(:mod:`~repro.simulation.events`), a monotonic clock, an engine with
scheduling and interruption (:mod:`~repro.simulation.engine`), trace
recording (:mod:`~repro.simulation.trace`) and time-series metrics
(:mod:`~repro.simulation.metrics`).
"""

from .clock import Clock
from .engine import Simulator
from .events import Event, EventQueue, ScheduledEvent
from .metrics import StepSeries, TimeSeries
from .trace import TraceEntry, TraceRecorder

__all__ = [
    "Clock",
    "Simulator",
    "Event",
    "EventQueue",
    "ScheduledEvent",
    "TimeSeries",
    "StepSeries",
    "TraceEntry",
    "TraceRecorder",
]
