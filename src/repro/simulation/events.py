"""Event primitives for the discrete-event engine.

Events carry a fire time, an insertion-order sequence number (ties are
broken FIFO so the simulation is deterministic), a callback, and an optional
payload.  :class:`EventQueue` is a thin heap wrapper that supports lazy
cancellation, which the MPPDB simulator uses to reschedule query-completion
events when the concurrency level on an instance changes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import SimulationError

__all__ = ["Event", "ScheduledEvent", "EventQueue"]

#: Signature of an event callback: receives the firing time.
EventCallback = Callable[[float], None]


@dataclass(frozen=True)
class Event:
    """An immutable description of something to happen at a point in time."""

    time: float
    callback: EventCallback
    label: str = ""
    payload: Any = None


@dataclass(order=True)
class ScheduledEvent:
    """A queue entry: an :class:`Event` plus ordering and cancellation state."""

    time: float
    sequence: int
    event: Event = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the entry dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of events.

    Ordering is by ``(time, insertion order)`` so simultaneous events fire
    in the order they were scheduled.  Cancellation is lazy: cancelled
    entries stay in the heap until popped, then get skipped.
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> ScheduledEvent:
        """Schedule ``event`` and return a handle usable for cancellation."""
        if event.time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {event.time!r}")
        entry = ScheduledEvent(time=event.time, sequence=next(self._counter), event=event)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: ScheduledEvent) -> None:
        """Cancel a previously pushed entry (idempotent)."""
        if not entry.cancelled:
            entry.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Fire time of the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._discard_cancelled()
        if not self._heap:
            raise SimulationError("pop() from an empty event queue")
        entry = heapq.heappop(self._heap)
        self._live -= 1
        return entry.event

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
