"""Structured trace recording for simulations.

A :class:`TraceRecorder` is an append-only log of ``(time, kind, details)``
entries.  The Thrifty runtime uses it to record routing decisions, SLA
violations and scaling actions, and the Figure 7.7 benchmark replays a
recorded trace into a printable excerpt.

The recorder predates :mod:`repro.obs` and is kept as a compatibility
shim: it is re-exported from ``repro.obs`` and adapted to the sink API by
:class:`~repro.obs.sink.TraceRecorderSink`.  New instrumentation should
emit through an :class:`~repro.obs.observer.Observer` instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

__all__ = ["TraceEntry", "TraceRecorder"]


def _jsonable(value: Any) -> Any:
    """JSON fallback for detail values (tuples, sets, numpy scalars)."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return str(value)


@dataclass(frozen=True)
class TraceEntry:
    """One trace record."""

    time: float
    kind: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:12.2f}] {self.kind:<24} {rendered}".rstrip()


class TraceRecorder:
    """Append-only, filterable event trace."""

    def __init__(self) -> None:
        self._entries: list[TraceEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def record(self, time: float, kind: str, **details: Any) -> TraceEntry:
        """Append an entry and return it."""
        entry = TraceEntry(time=time, kind=kind, details=dict(details))
        self._entries.append(entry)
        return entry

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """All entries of the given kind, in time order."""
        return [e for e in self._entries if e.kind == kind]

    def filter(
        self,
        kind: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> list[TraceEntry]:
        """Entries matching every given criterion, in time order.

        ``kind`` matches exactly; ``start``/``end`` bound the half-open
        time window ``[start, end)``.  With no arguments this is simply a
        copy of the whole log.
        """
        return [
            e
            for e in self._entries
            if (kind is None or e.kind == kind)
            and (start is None or e.time >= start)
            and (end is None or e.time < end)
        ]

    def to_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the log as JSON Lines (``{"t", "kind", "attrs"}`` rows).

        The row shape matches the ``repro.obs`` event export, so a legacy
        trace and an :class:`~repro.obs.sink.MemorySink` event dump are
        interchangeable downstream.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for entry in self._entries:
                row = {"t": entry.time, "kind": entry.kind, "attrs": dict(entry.details)}
                handle.write(json.dumps(row, sort_keys=True, default=_jsonable))
                handle.write("\n")
        return target

    def between(self, start: float, end: float) -> list[TraceEntry]:
        """All entries with ``start <= time < end``."""
        return [e for e in self._entries if start <= e.time < end]

    def kinds(self) -> set[str]:
        """The set of kinds recorded so far."""
        return {e.kind for e in self._entries}

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()
