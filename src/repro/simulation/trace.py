"""Structured trace recording for simulations.

A :class:`TraceRecorder` is an append-only log of ``(time, kind, details)``
entries.  The Thrifty runtime uses it to record routing decisions, SLA
violations and scaling actions, and the Figure 7.7 benchmark replays a
recorded trace into a printable excerpt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["TraceEntry", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEntry:
    """One trace record."""

    time: float
    kind: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:12.2f}] {self.kind:<24} {rendered}".rstrip()


class TraceRecorder:
    """Append-only, filterable event trace."""

    def __init__(self) -> None:
        self._entries: list[TraceEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def record(self, time: float, kind: str, **details: Any) -> TraceEntry:
        """Append an entry and return it."""
        entry = TraceEntry(time=time, kind=kind, details=dict(details))
        self._entries.append(entry)
        return entry

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """All entries of the given kind, in time order."""
        return [e for e in self._entries if e.kind == kind]

    def between(self, start: float, end: float) -> list[TraceEntry]:
        """All entries with ``start <= time < end``."""
        return [e for e in self._entries if start <= e.time < end]

    def kinds(self) -> set[str]:
        """The set of kinds recorded so far."""
        return {e.kind for e in self._entries}

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()
