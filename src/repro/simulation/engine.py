"""The discrete-event simulation engine.

:class:`Simulator` owns the clock and the event queue, and exposes the
standard run loop: schedule callbacks at absolute times or after delays,
then :meth:`Simulator.run` until the queue drains (or until a time bound or
an event budget is hit).  Callbacks may schedule further events; scheduling
in the past raises.

The MPPDB execution model additionally needs to *reschedule* in-flight
events (a query's completion moves when the concurrency level changes), so
:meth:`Simulator.schedule` returns a cancellable handle.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import SimulationError
from .clock import Clock
from .events import Event, EventCallback, EventQueue, ScheduledEvent

__all__ = ["Simulator"]


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self._queue = EventQueue()
        self._events_fired = 0
        self._running = False
        self._event_counts: Optional[dict[str, int]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def enable_event_accounting(self) -> None:
        """Start counting fired events by label (for run reports).

        Off by default so the hot loop stays a pop-advance-call sequence.
        The engine stays observability-agnostic: the counts are a plain
        dict that ``repro.obs`` report writers read out after a run.
        """
        if self._event_counts is None:
            self._event_counts = {}

    @property
    def event_counts(self) -> dict[str, int]:
        """Fired-event counts keyed by event label (empty unless enabled)."""
        return dict(self._event_counts or {})

    def schedule(
        self,
        time: float,
        callback: EventCallback,
        label: str = "",
        payload: Any = None,
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated ``time``.

        Returns a handle that can be passed to :meth:`cancel`.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before the current time {self.clock.now!r}"
            )
        return self._queue.push(Event(time=time, callback=callback, label=label, payload=payload))

    def schedule_after(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        payload: Any = None,
    ) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self.clock.now + delay, callback, label=label, payload=payload)

    def cancel(self, handle: ScheduledEvent) -> None:
        """Cancel a scheduled event (idempotent)."""
        self._queue.cancel(handle)

    def step(self) -> Optional[Event]:
        """Fire the single next event; return it, or ``None`` when idle."""
        next_time = self._queue.peek_time()
        if next_time is None:
            return None
        event = self._queue.pop()
        self.clock.advance_to(event.time)
        self._events_fired += 1
        counts = self._event_counts
        if counts is not None:
            label = event.label or "(unlabeled)"
            counts[label] = counts.get(label, 0) + 1
        event.callback(event.time)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.  Returns the number of events
        fired by this call.

        When ``until`` is given the clock is advanced to exactly ``until``
        after the last earlier event, so time-based metrics close cleanly.
        """
        if self._running:
            raise SimulationError("run() re-entered from inside an event callback")
        self._running = True
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and until >= self.clock.now:
            self.clock.advance_to(until)
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.clock.now}, pending={self.pending})"
