"""Time-series metric collection.

Two container flavours:

* :class:`TimeSeries` — irregular samples ``(t, value)`` with summary
  statistics; used for per-query normalized latency (Figure 7.7b/d).
* :class:`StepSeries` — a piecewise-constant signal changed at known times;
  used for concurrency levels and RT-TTP curves, where *time-weighted*
  aggregates (fraction of time above a threshold, time-average) are the
  meaningful statistics.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Iterable, Iterator

from ..errors import SimulationError

__all__ = ["TimeSeries", "StepSeries"]


class TimeSeries:
    """Irregularly sampled ``(time, value)`` series with order enforcement."""

    def __init__(self) -> None:
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def add(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"samples must be time-ordered: {time!r} < last {self._times[-1]!r}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    @property
    def times(self) -> list[float]:
        """Sample times (copy)."""
        return list(self._times)

    @property
    def values(self) -> list[float]:
        """Sample values (copy)."""
        return list(self._values)

    def mean(self) -> float:
        """Arithmetic mean of the sample values."""
        if not self._values:
            raise SimulationError("mean() of an empty series")
        return sum(self._values) / len(self._values)

    def max(self) -> float:
        """Maximum sample value."""
        if not self._values:
            raise SimulationError("max() of an empty series")
        return max(self._values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100] of the sample values.

        Nearest-rank assigns rank ``ceil(q/100 * n)``, which is 0 for
        ``q = 0`` — an undefined rank.  The rank is therefore clamped to
        1, making ``percentile(0)`` the series **minimum** (by symmetry
        with ``percentile(100)``, which is the maximum).  The clamp also
        means every ``q`` small enough that ``ceil(q/100 * n) < 1``
        returns the minimum, not an interpolated sub-minimum value.
        """
        if not self._values:
            raise SimulationError("percentile() of an empty series")
        if not (0 <= q <= 100):
            raise SimulationError(f"percentile must be in [0, 100], got {q!r}")
        ordered = sorted(self._values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold``."""
        if not self._values:
            raise SimulationError("fraction_above() of an empty series")
        return sum(1 for v in self._values if v > threshold) / len(self._values)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end`` as a new series."""
        out = TimeSeries()
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        for i in range(lo, hi):
            out.add(self._times[i], self._values[i])
        return out


class StepSeries:
    """A piecewise-constant signal; value changes take effect at set times."""

    def __init__(self, initial: float = 0.0, start_time: float = 0.0) -> None:
        self._times: list[float] = [float(start_time)]
        self._values: list[float] = [float(initial)]

    def set(self, time: float, value: float) -> None:
        """Change the signal value at ``time`` (non-decreasing times)."""
        if time < self._times[-1]:
            raise SimulationError(
                f"changes must be time-ordered: {time!r} < last {self._times[-1]!r}"
            )
        if time == self._times[-1]:
            # Same-instant update overrides the previous change.
            self._values[-1] = float(value)
            return
        self._times.append(float(time))
        self._values.append(float(value))

    def increment(self, time: float, delta: float = 1.0) -> None:
        """Step the current value by ``delta`` at ``time``."""
        self.set(time, self.value_at_end() + delta)

    def value_at_end(self) -> float:
        """The most recent value."""
        return self._values[-1]

    def value_at(self, time: float) -> float:
        """Signal value at ``time`` (before the first change: the initial value)."""
        if time < self._times[0]:
            raise SimulationError(f"time {time!r} precedes the series start {self._times[0]!r}")
        idx = bisect.bisect_right(self._times, time) - 1
        return self._values[idx]

    def changes(self) -> Iterable[tuple[float, float]]:
        """Iterate the ``(time, value)`` change points."""
        return zip(self._times, self._values)

    def time_weighted_mean(self, start: float, end: float) -> float:
        """Time-average of the signal over ``[start, end)``."""
        return self._integrate(start, end, lambda v: v) / self._length(start, end)

    def fraction_time_above(self, threshold: float, start: float, end: float) -> float:
        """Fraction of ``[start, end)`` the signal spends strictly above ``threshold``."""
        above = self._integrate(start, end, lambda v: 1.0 if v > threshold else 0.0)
        return above / self._length(start, end)

    def fraction_time_at_most(self, threshold: float, start: float, end: float) -> float:
        """Fraction of ``[start, end)`` with the signal ``<= threshold``.

        This is exactly the run-time TTP of Chapter 5.1 when the signal is a
        tenant group's concurrent-active-tenant count and ``threshold = R``.
        """
        return 1.0 - self.fraction_time_above(threshold, start, end)

    def max_over(self, start: float, end: float) -> float:
        """Maximum signal value attained over ``[start, end)``."""
        if end <= start:
            raise SimulationError(f"empty window [{start!r}, {end!r})")
        lo = bisect.bisect_right(self._times, start) - 1
        hi = bisect.bisect_left(self._times, end)
        lo = max(lo, 0)
        return max(self._values[lo:hi] or [self._values[lo]])

    def _length(self, start: float, end: float) -> float:
        if end <= start:
            raise SimulationError(f"empty window [{start!r}, {end!r})")
        return end - start

    def _integrate(self, start: float, end: float, f: Callable[[float], float]) -> float:
        if end <= start:
            raise SimulationError(f"empty window [{start!r}, {end!r})")
        total = 0.0
        times = self._times
        values = self._values
        idx = max(bisect.bisect_right(times, start) - 1, 0)
        t = start
        while t < end:
            seg_end = times[idx + 1] if idx + 1 < len(times) else end
            seg_end = min(seg_end, end)
            if seg_end > t:
                total += f(values[idx]) * (seg_end - t)
            t = seg_end
            idx += 1
            if idx >= len(times):
                break
        if t < end:
            total += f(values[-1]) * (end - t)
        return total
