"""A monotonic simulation clock.

The clock only ever moves forward; attempting to rewind raises
:class:`~repro.errors.SimulationError`.  Keeping the clock as its own object
(rather than a float on the engine) lets model components hold a reference
to it without also being able to advance time.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["Clock"]


class Clock:
    """Monotonically non-decreasing simulated time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t`` (no-op when already there)."""
        if t < self._now:
            raise SimulationError(f"time cannot move backwards: {t!r} < {self._now!r}")
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now})"
