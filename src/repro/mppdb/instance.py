"""An MPPDB instance: a group of nodes running one shared database process.

TDD's cluster design creates one MPPDB per node group (Chapter 4.1); each
instance hosts every tenant of its tenant group (Chapter 4.2) and processes
whatever queries the router sends it, with fair-share interference when
several run concurrently (:mod:`~repro.mppdb.execution`).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from ..errors import InstanceNotReadyError, MPPDBError, TenantNotHostedError
from ..simulation.engine import Simulator
from .catalog import Catalog, TenantData
from .execution import ExecutionEngine, QueryExecution

__all__ = ["InstanceState", "MPPDBInstance"]


class InstanceState(enum.Enum):
    """Lifecycle of an instance.

    ``DEGRADED`` and ``DOWN`` are the fault-tolerance states (Chapter 4.4):
    a degraded instance lost at least one node and stops accepting queries
    until the replacement has loaded; a down instance has no healthy worker
    left (or no replacement could be allocated).  Both recover to ``READY``
    once every failed node has been replaced and re-loaded.
    """

    PROVISIONING = "provisioning"
    READY = "ready"
    DEGRADED = "degraded"
    DOWN = "down"
    RETIRED = "retired"


class MPPDBInstance:
    """One simulated MPPDB.

    Parameters
    ----------
    name:
        Unique instance name, e.g. ``"tg3/mppdb1"``.
    parallelism:
        Number of nodes (degree of parallelism) of this instance.
    simulator:
        The simulation engine queries run on.
    node_ids:
        Optional ids of the machine nodes backing the instance (provided by
        the provisioning layer when a :class:`~repro.cluster.pool.MachinePool`
        is in play; pure-algorithm uses may omit them).
    """

    def __init__(
        self,
        name: str,
        parallelism: int,
        simulator: Simulator,
        node_ids: Optional[Sequence[int]] = None,
        speed_factor: float = 1.0,
    ) -> None:
        if parallelism < 1:
            raise MPPDBError(f"parallelism must be >= 1, got {parallelism!r}")
        if node_ids is not None and len(node_ids) != parallelism:
            raise MPPDBError(
                f"instance {name!r}: {len(node_ids)} nodes supplied for parallelism {parallelism}"
            )
        if speed_factor <= 0:
            raise MPPDBError(f"speed_factor must be positive, got {speed_factor!r}")
        self.name = name
        self.parallelism = int(parallelism)
        #: Hardware-class speedup relative to the baseline node (future-work
        #: heterogeneous clusters): callers divide dedicated work by this.
        self.speed_factor = float(speed_factor)
        self.node_ids: tuple[int, ...] = tuple(node_ids) if node_ids is not None else ()
        self.catalog = Catalog()
        self.engine = ExecutionEngine(simulator)
        self._state = InstanceState.PROVISIONING
        self._ready_time: Optional[float] = None
        self._sim = simulator
        # Fault-tolerance bookkeeping: nodes currently failed (awaiting a
        # replacement) and replacements still loading, keyed by the token
        # the provisioning layer issued for that replacement.
        self._failed_nodes: set[int] = set()
        self._recovering_nodes: dict[int, int] = {}

    @property
    def state(self) -> InstanceState:
        """Current lifecycle state."""
        return self._state

    @property
    def ready_time(self) -> Optional[float]:
        """Simulated time the instance became ready, if it has."""
        return self._ready_time

    @property
    def is_ready(self) -> bool:
        """Whether the instance accepts queries."""
        return self._state == InstanceState.READY

    @property
    def is_free(self) -> bool:
        """Algorithm 1's notion of *free*: ready and serving no query."""
        return self.is_ready and not self.engine.busy

    @property
    def active_tenants(self) -> set[int]:
        """Tenants with queries currently running on this instance."""
        return self.engine.active_tenants

    @property
    def failed_nodes(self) -> set[int]:
        """Nodes that failed and still await a replacement (copy)."""
        return set(self._failed_nodes)

    @property
    def recovering_nodes(self) -> set[int]:
        """Replacement nodes still loading their data shard (copy)."""
        return set(self._recovering_nodes)

    @property
    def impaired_node_count(self) -> int:
        """Nodes currently not serving: failed plus still-loading replacements."""
        return len(self._failed_nodes) + len(self._recovering_nodes)

    def mark_ready(self) -> None:
        """Transition to READY (called by the provisioning layer).

        An instance that lost nodes *while provisioning* comes up DEGRADED
        instead and recovers through the node-replacement path.
        """
        if self._state != InstanceState.PROVISIONING:
            raise MPPDBError(f"instance {self.name!r} cannot become ready from {self._state.value}")
        if self.impaired_node_count:
            self._state = InstanceState.DEGRADED
        else:
            self._state = InstanceState.READY
        self._ready_time = self._sim.now

    def retire(self) -> None:
        """Stop accepting queries; running ones are allowed to drain."""
        if self._state == InstanceState.RETIRED:
            raise MPPDBError(f"instance {self.name!r} is already retired")
        self._state = InstanceState.RETIRED

    def record_node_failure(self, node_id: int) -> None:
        """A node backing this instance failed (Chapter 4.4 notification).

        A READY instance degrades; when *every* node is impaired the
        instance is DOWN.  A failed replacement-in-loading is moved from
        the recovering set back to the failed set so a fresh replacement
        can be issued.  DOWN is absorbing here: losing yet another node
        cannot *promote* a DOWN instance to DEGRADED — only
        :meth:`complete_node_replacement` recovers it.
        """
        if self.node_ids and node_id not in self.node_ids:
            raise MPPDBError(f"node {node_id} does not back instance {self.name!r}")
        self._recovering_nodes.pop(node_id, None)
        self._failed_nodes.add(node_id)
        if self._state in (InstanceState.READY, InstanceState.DEGRADED, InstanceState.DOWN):
            if self.impaired_node_count >= self.parallelism:
                self._state = InstanceState.DOWN
            elif self._state is not InstanceState.DOWN:
                self._state = InstanceState.DEGRADED

    def mark_down(self) -> None:
        """Take the instance out of service (e.g. no replacement capacity)."""
        if self._state in (InstanceState.RETIRED,):
            raise MPPDBError(f"instance {self.name!r} is retired")
        self._state = InstanceState.DOWN

    def begin_node_replacement(self, failed_node_id: int, new_node_id: int, token: int) -> None:
        """Swap a failed node for a freshly allocated one that starts loading.

        The newcomer joins ``node_ids`` immediately but counts as impaired
        until :meth:`complete_node_replacement` is called with the same
        ``token`` (tokens guard against stale completion events when a
        replacement itself fails mid-load).
        """
        if failed_node_id not in self._failed_nodes:
            raise MPPDBError(
                f"node {failed_node_id} of instance {self.name!r} is not marked failed"
            )
        self._failed_nodes.discard(failed_node_id)
        self._recovering_nodes[new_node_id] = token
        if self.node_ids:
            self.node_ids = tuple(
                new_node_id if node_id == failed_node_id else node_id
                for node_id in self.node_ids
            )

    def complete_node_replacement(self, new_node_id: int, token: int) -> bool:
        """A replacement finished loading; returns False for stale events.

        When the last impaired node is replaced, a DEGRADED/DOWN instance
        flips back to READY.
        """
        if self._recovering_nodes.get(new_node_id) != token:
            return False
        del self._recovering_nodes[new_node_id]
        if not self.impaired_node_count and self._state in (
            InstanceState.DEGRADED,
            InstanceState.DOWN,
        ):
            self._state = InstanceState.READY
        return True

    def abort_running(self) -> list[QueryExecution]:
        """Abort all in-flight queries (node failure kills MPP executions)."""
        return self.engine.abort_all()

    def deploy_tenant(self, tenant: TenantData) -> None:
        """Add a tenant's data to the catalog (placement step)."""
        if self._state == InstanceState.RETIRED:
            raise MPPDBError(f"instance {self.name!r} is retired")
        self.catalog.add(tenant)

    def hosts(self, tenant_id: int) -> bool:
        """Whether the tenant's data is deployed here."""
        return tenant_id in self.catalog

    def submit_query(self, tenant_id: int, work_s: float, label: str = "") -> QueryExecution:
        """Run a query for a hosted tenant.

        ``work_s`` is the dedicated (isolation) latency of the query on
        *this* instance's parallelism — callers compute it from the query's
        scale-out curve.  Raises if the instance is not ready or the tenant
        is not hosted.
        """
        if not self.is_ready:
            raise InstanceNotReadyError(
                f"instance {self.name!r} is {self._state.value}, cannot accept queries"
            )
        if tenant_id not in self.catalog:
            raise TenantNotHostedError(
                f"tenant {tenant_id} has no data on instance {self.name!r}"
            )
        return self.engine.submit(tenant_id, work_s, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MPPDBInstance(name={self.name!r}, nodes={self.parallelism}, "
            f"state={self._state.value}, tenants={len(self.catalog)})"
        )
