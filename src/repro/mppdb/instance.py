"""An MPPDB instance: a group of nodes running one shared database process.

TDD's cluster design creates one MPPDB per node group (Chapter 4.1); each
instance hosts every tenant of its tenant group (Chapter 4.2) and processes
whatever queries the router sends it, with fair-share interference when
several run concurrently (:mod:`~repro.mppdb.execution`).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from ..errors import InstanceNotReadyError, MPPDBError, TenantNotHostedError
from ..simulation.engine import Simulator
from .catalog import Catalog, TenantData
from .execution import ExecutionEngine, QueryExecution

__all__ = ["InstanceState", "MPPDBInstance"]


class InstanceState(enum.Enum):
    """Lifecycle of an instance."""

    PROVISIONING = "provisioning"
    READY = "ready"
    RETIRED = "retired"


class MPPDBInstance:
    """One simulated MPPDB.

    Parameters
    ----------
    name:
        Unique instance name, e.g. ``"tg3/mppdb1"``.
    parallelism:
        Number of nodes (degree of parallelism) of this instance.
    simulator:
        The simulation engine queries run on.
    node_ids:
        Optional ids of the machine nodes backing the instance (provided by
        the provisioning layer when a :class:`~repro.cluster.pool.MachinePool`
        is in play; pure-algorithm uses may omit them).
    """

    def __init__(
        self,
        name: str,
        parallelism: int,
        simulator: Simulator,
        node_ids: Optional[Sequence[int]] = None,
        speed_factor: float = 1.0,
    ) -> None:
        if parallelism < 1:
            raise MPPDBError(f"parallelism must be >= 1, got {parallelism!r}")
        if node_ids is not None and len(node_ids) != parallelism:
            raise MPPDBError(
                f"instance {name!r}: {len(node_ids)} nodes supplied for parallelism {parallelism}"
            )
        if speed_factor <= 0:
            raise MPPDBError(f"speed_factor must be positive, got {speed_factor!r}")
        self.name = name
        self.parallelism = int(parallelism)
        #: Hardware-class speedup relative to the baseline node (future-work
        #: heterogeneous clusters): callers divide dedicated work by this.
        self.speed_factor = float(speed_factor)
        self.node_ids: tuple[int, ...] = tuple(node_ids) if node_ids is not None else ()
        self.catalog = Catalog()
        self.engine = ExecutionEngine(simulator)
        self._state = InstanceState.PROVISIONING
        self._ready_time: Optional[float] = None
        self._sim = simulator

    @property
    def state(self) -> InstanceState:
        """Current lifecycle state."""
        return self._state

    @property
    def ready_time(self) -> Optional[float]:
        """Simulated time the instance became ready, if it has."""
        return self._ready_time

    @property
    def is_ready(self) -> bool:
        """Whether the instance accepts queries."""
        return self._state == InstanceState.READY

    @property
    def is_free(self) -> bool:
        """Algorithm 1's notion of *free*: ready and serving no query."""
        return self.is_ready and not self.engine.busy

    @property
    def active_tenants(self) -> set[int]:
        """Tenants with queries currently running on this instance."""
        return self.engine.active_tenants

    def mark_ready(self) -> None:
        """Transition to READY (called by the provisioning layer)."""
        if self._state != InstanceState.PROVISIONING:
            raise MPPDBError(f"instance {self.name!r} cannot become ready from {self._state.value}")
        self._state = InstanceState.READY
        self._ready_time = self._sim.now

    def retire(self) -> None:
        """Stop accepting queries; running ones are allowed to drain."""
        if self._state == InstanceState.RETIRED:
            raise MPPDBError(f"instance {self.name!r} is already retired")
        self._state = InstanceState.RETIRED

    def deploy_tenant(self, tenant: TenantData) -> None:
        """Add a tenant's data to the catalog (placement step)."""
        if self._state == InstanceState.RETIRED:
            raise MPPDBError(f"instance {self.name!r} is retired")
        self.catalog.add(tenant)

    def hosts(self, tenant_id: int) -> bool:
        """Whether the tenant's data is deployed here."""
        return tenant_id in self.catalog

    def submit_query(self, tenant_id: int, work_s: float, label: str = "") -> QueryExecution:
        """Run a query for a hosted tenant.

        ``work_s`` is the dedicated (isolation) latency of the query on
        *this* instance's parallelism — callers compute it from the query's
        scale-out curve.  Raises if the instance is not ready or the tenant
        is not hosted.
        """
        if not self.is_ready:
            raise InstanceNotReadyError(
                f"instance {self.name!r} is {self._state.value}, cannot accept queries"
            )
        if tenant_id not in self.catalog:
            raise TenantNotHostedError(
                f"tenant {tenant_id} has no data on instance {self.name!r}"
            )
        return self.engine.submit(tenant_id, work_s, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MPPDBInstance(name={self.name!r}, nodes={self.parallelism}, "
            f"state={self._state.value}, tenants={len(self.catalog)})"
        )
