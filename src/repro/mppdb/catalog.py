"""Per-instance tenant catalog.

Shared-process multi-tenancy means one database process hosts many tenants,
each owning a *private set of tables* (Chapter 2.1, approach 3).  The
catalog tracks, per instance, which tenants are deployed, their table sets
and data sizes — the query router consults it to check a tenant's data is
actually present before routing (requirement for correctness of TDD's
tenant placement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import MPPDBError, TenantNotHostedError

__all__ = ["TenantData", "Catalog"]


@dataclass(frozen=True)
class TenantData:
    """What one tenant stores on an instance."""

    tenant_id: int
    data_gb: float
    tables: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.data_gb < 0:
            raise MPPDBError(f"data size must be non-negative, got {self.data_gb!r}")


class Catalog:
    """Tenant -> data mapping for one MPPDB instance."""

    def __init__(self) -> None:
        self._tenants: dict[int, TenantData] = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: int) -> bool:
        return tenant_id in self._tenants

    @property
    def tenant_ids(self) -> set[int]:
        """Ids of all hosted tenants."""
        return set(self._tenants)

    @property
    def total_data_gb(self) -> float:
        """Total data stored on the instance across tenants."""
        return sum(t.data_gb for t in self._tenants.values())

    def add(self, tenant: TenantData) -> None:
        """Deploy a tenant's data (id must not already be present)."""
        if tenant.tenant_id in self._tenants:
            raise MPPDBError(f"tenant {tenant.tenant_id} already deployed")
        self._tenants[tenant.tenant_id] = tenant

    def add_all(self, tenants: Iterable[TenantData]) -> None:
        """Deploy several tenants."""
        for tenant in tenants:
            self.add(tenant)

    def get(self, tenant_id: int) -> TenantData:
        """Look up a hosted tenant; raises :class:`TenantNotHostedError`."""
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise TenantNotHostedError(f"tenant {tenant_id} is not hosted here") from None

    def remove(self, tenant_id: int) -> TenantData:
        """Drop a tenant's data (e.g. on de-registration or re-consolidation)."""
        if tenant_id not in self._tenants:
            raise TenantNotHostedError(f"tenant {tenant_id} is not hosted here")
        return self._tenants.pop(tenant_id)
