"""Instance lifecycle: allocate nodes, start, bulk load, retire.

The provisioner is the piece of the Deployment Master that actually touches
hardware: it draws nodes from the :class:`~repro.cluster.pool.MachinePool`,
schedules the startup + bulk-load delay from the
:class:`~repro.mppdb.loading.LoadTimeModel` on the simulator, and flips the
instance to READY when the delay elapses.  Elastic scaling (Chapter 5.1)
uses exactly the same path — which is why the ~5000 s "load only the
over-active tenant" timing of Figure 7.7c falls out of the model for free.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional

from ..cluster.node import NodeState
from ..cluster.pool import MachinePool
from ..errors import MPPDBError
from ..simulation.engine import Simulator
from .catalog import TenantData
from .instance import InstanceState, MPPDBInstance
from .loading import LoadTimeModel

__all__ = ["Provisioner"]


class Provisioner:
    """Creates and retires MPPDB instances on a machine pool."""

    def __init__(
        self,
        simulator: Simulator,
        pool: Optional[MachinePool] = None,
        load_model: Optional[LoadTimeModel] = None,
    ) -> None:
        self._sim = simulator
        self._pool = pool
        self._load_model = load_model if load_model is not None else LoadTimeModel()
        self._counter = itertools.count()
        self._replace_tokens = itertools.count()
        self._instances: dict[str, MPPDBInstance] = {}

    @property
    def load_model(self) -> LoadTimeModel:
        """The startup/bulk-load time model in use."""
        return self._load_model

    @property
    def instances(self) -> list[MPPDBInstance]:
        """All instances ever provisioned (copy, in creation order)."""
        return list(self._instances.values())

    def live_instances(self) -> list[MPPDBInstance]:
        """Instances that are not retired."""
        return [i for i in self._instances.values() if i.state != InstanceState.RETIRED]

    def get(self, name: str) -> MPPDBInstance:
        """Look up an instance by name."""
        try:
            return self._instances[name]
        except KeyError:
            raise MPPDBError(f"unknown instance {name!r}") from None

    def provision(
        self,
        parallelism: int,
        tenants: Iterable[TenantData],
        name: Optional[str] = None,
        instant: bool = False,
        on_ready: Optional[Callable[[MPPDBInstance, float], None]] = None,
        node_class: str = "standard",
    ) -> MPPDBInstance:
        """Create an instance hosting ``tenants``.

        The instance becomes READY after the model's startup + bulk-load
        time; pass ``instant=True`` to skip the delay (useful when a
        deployment is assumed pre-provisioned, e.g. at the start of a
        runtime replay — "the deployment is supposed to be static for
        days", Chapter 3).  ``on_ready`` is invoked with the instance and
        the time it became ready — elastic scaling uses it to wire the
        query router once the new MPPDB is loaded.
        """
        tenant_list = list(tenants)
        if name is None:
            name = f"mppdb{next(self._counter)}"
        if name in self._instances:
            raise MPPDBError(f"instance name {name!r} already in use")
        node_ids: Optional[list[int]] = None
        speed_factor = 1.0
        if self._pool is not None:
            nodes = self._pool.allocate(parallelism, owner=name, node_class=node_class)
            node_ids = [n.node_id for n in nodes]
            speed_factor = self._pool.class_spec(node_class).relative_speed
        instance = MPPDBInstance(
            name, parallelism, self._sim, node_ids=node_ids, speed_factor=speed_factor
        )
        for tenant in tenant_list:
            instance.deploy_tenant(tenant)
        self._instances[name] = instance

        def _started(time: float) -> None:
            if self._pool is not None:
                for node_id in instance.node_ids:
                    node = self._pool.node(node_id)
                    if node.state is NodeState.STARTING:
                        node.mark_running()
            instance.mark_ready()
            if on_ready is not None:
                on_ready(instance, time)

        if instant:
            if self._pool is not None:
                for node_id in instance.node_ids:
                    self._pool.node(node_id).mark_running()
            instance.mark_ready()
            if on_ready is not None:
                on_ready(instance, self._sim.now)
        else:
            total_gb = sum(t.data_gb for t in tenant_list)
            delay = self._load_model.provision_seconds(parallelism, total_gb)
            self._sim.schedule_after(delay, _started, label=f"provision:{name}")
        return instance

    def provision_time_s(self, parallelism: int, tenants: Iterable[TenantData]) -> float:
        """Predicted time-to-ready for a prospective instance."""
        total_gb = sum(t.data_gb for t in tenants)
        return self._load_model.provision_seconds(parallelism, total_gb)

    def replace_node(
        self,
        instance: MPPDBInstance,
        failed_node_id: int,
        on_ready: Optional[Callable[[MPPDBInstance, float], None]] = None,
    ) -> float:
        """Replace a failed node of ``instance``; returns the reload delay.

        "Thrifty will replace a failed node by starting a new node upon
        receiving node failure notification" (Chapter 4.4).  The replacement
        is drawn from the pool (renting when elastic), then pays startup plus
        the bulk-load time of the failed node's data *shard* — one node's
        worth of the instance's catalog.  ``on_ready`` fires when the
        replacement finishes loading; completions are token-guarded so a
        replacement that itself fails mid-load cannot be marked healthy by
        its stale completion event.

        Raises :class:`~repro.errors.CapacityError` when the pool cannot
        supply a replacement (inelastic pool, nothing available).
        """
        if self._pool is None:
            raise MPPDBError("replace_node requires a machine pool")
        if instance.node_ids and failed_node_id not in instance.node_ids:
            raise MPPDBError(
                f"node {failed_node_id} does not back instance {instance.name!r}"
            )
        failed = self._pool.node(failed_node_id)
        replacement = self._pool.replace_failed(failed, owner=instance.name)
        token = next(self._replace_tokens)
        instance.begin_node_replacement(failed_node_id, replacement.node_id, token)
        shard_gb = instance.catalog.total_data_gb / instance.parallelism
        delay = self._load_model.provision_seconds(1, shard_gb)

        def _replaced(time: float) -> None:
            if not instance.complete_node_replacement(replacement.node_id, token):
                return
            if replacement.state is NodeState.STARTING:
                replacement.mark_running()
            if on_ready is not None:
                on_ready(instance, time)

        self._sim.schedule_after(delay, _replaced, label=f"replace:{instance.name}")
        return delay

    def retire(self, instance: MPPDBInstance) -> None:
        """Retire an instance and hibernate its nodes."""
        instance.retire()
        if self._pool is not None:
            self._pool.release_owner(instance.name)
