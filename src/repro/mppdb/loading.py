"""Instance startup and bulk-load time model, calibrated to Table 5.1.

The paper measures (Table 5.1) that starting the machines plus initializing
the MPPDB grows roughly linearly with the node count, and that bulk loading
proceeds at about 1.2 GB/min *independently of the node count* when the
product's parallel-loading option is enabled (the source feed, not the
cluster, is the bottleneck).  Loading dominates: preparing a 10-node / 1 TB
MPPDB takes about 14.5 hours — the number that motivates the *lightweight*
elastic scaling of Chapter 5.1.

:class:`LoadTimeModel` is a least-squares fit of the startup line through
the table's five measurements plus the observed aggregate load rate;
``bench_table5_1_loading.py`` prints model-vs-paper values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MPPDBError

__all__ = ["PAPER_LOAD_TABLE", "LoadTimeModel"]

#: Table 5.1 rows: nodes -> (data_gb, startup_and_init_s, bulk_load_s).
PAPER_LOAD_TABLE: dict[int, tuple[float, float, float]] = {
    2: (200.0, 462.0, 10172.0),
    4: (400.0, 850.0, 20302.0),
    6: (600.0, 1248.0, 30121.0),
    8: (800.0, 1504.0, 40853.0),
    10: (1024.0, 1779.0, 50446.0),
}


def _fit_startup_line() -> tuple[float, float]:
    """Least-squares ``startup = intercept + slope * nodes`` over Table 5.1."""
    xs = list(PAPER_LOAD_TABLE)
    ys = [PAPER_LOAD_TABLE[n][1] for n in xs]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    return intercept, slope


def _fit_load_rate() -> float:
    """Average aggregate load rate (GB/s) over Table 5.1."""
    rates = [data_gb / load_s for data_gb, _, load_s in PAPER_LOAD_TABLE.values()]
    return sum(rates) / len(rates)


_STARTUP_INTERCEPT, _STARTUP_SLOPE = _fit_startup_line()
_PARALLEL_LOAD_RATE_GB_S = _fit_load_rate()


@dataclass(frozen=True)
class LoadTimeModel:
    """Time model for preparing an MPPDB instance.

    Parameters
    ----------
    startup_intercept_s / startup_slope_s:
        Startup + initialization time is
        ``startup_intercept_s + startup_slope_s * nodes``.
    parallel_load_rate_gb_s:
        Aggregate bulk-load rate with parallel loading enabled (~1.2 GB/min,
        node-count independent — the source feed is the bottleneck).
    serial_load_rate_gb_s:
        Aggregate rate with parallel loading disabled (a single loader
        stream; assumption documented in DESIGN.md).
    parallel_loading:
        Whether the product's parallel-loading option is enabled (§7.2
        enables it; the elastic-scaling footnote in Ch. 5.1 does too).
    """

    startup_intercept_s: float = _STARTUP_INTERCEPT
    startup_slope_s: float = _STARTUP_SLOPE
    parallel_load_rate_gb_s: float = _PARALLEL_LOAD_RATE_GB_S
    serial_load_rate_gb_s: float = _PARALLEL_LOAD_RATE_GB_S / 4.0
    parallel_loading: bool = True

    def __post_init__(self) -> None:
        if self.startup_slope_s <= 0:
            raise MPPDBError("startup_slope_s must be positive")
        if self.parallel_load_rate_gb_s <= 0 or self.serial_load_rate_gb_s <= 0:
            raise MPPDBError("load rates must be positive")

    def startup_seconds(self, nodes: int) -> float:
        """Node starting + MPPDB initialization time for an ``nodes``-node instance."""
        if nodes < 1:
            raise MPPDBError(f"node count must be >= 1, got {nodes!r}")
        return self.startup_intercept_s + self.startup_slope_s * nodes

    def load_rate_gb_s(self) -> float:
        """Effective aggregate bulk-load rate in GB/s."""
        if self.parallel_loading:
            return self.parallel_load_rate_gb_s
        return self.serial_load_rate_gb_s

    def bulk_load_seconds(self, data_gb: float) -> float:
        """Time to bulk load ``data_gb`` gigabytes of tenant data."""
        if data_gb < 0:
            raise MPPDBError(f"data size must be non-negative, got {data_gb!r}")
        return data_gb / self.load_rate_gb_s()

    def provision_seconds(self, nodes: int, data_gb: float) -> float:
        """Total time until an instance is ready: startup + bulk load."""
        return self.startup_seconds(nodes) + self.bulk_load_seconds(data_gb)
