"""Scale-out curves for parallel query execution.

A curve maps a query's single-node latency to its latency on an ``n``-node
MPPDB.  The paper distinguishes *linear scale-out* queries (TPC-H Q1,
Figure 1.1a — speedup proportional to nodes) from *non-linear* ones (TPC-H
Q19, Figure 1.1c — speedup flattens), and the distinction matters because
the second consolidation opportunity (serving a tenant on a bigger-than-
requested MPPDB) only fully compensates concurrency for linear queries
(requirement R4).

All curves require latency to be non-increasing in ``n`` and to equal the
single-node latency at ``n = 1``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import MPPDBError

__all__ = [
    "ScaleOutCurve",
    "LinearScaleOut",
    "AmdahlScaleOut",
    "SublinearScaleOut",
]


def _check(base_latency_s: float, nodes: int) -> None:
    if base_latency_s < 0:
        raise MPPDBError(f"base latency must be non-negative, got {base_latency_s!r}")
    if nodes < 1:
        raise MPPDBError(f"node count must be >= 1, got {nodes!r}")


class ScaleOutCurve(abc.ABC):
    """Strategy mapping single-node latency to ``n``-node latency."""

    @abc.abstractmethod
    def latency(self, base_latency_s: float, nodes: int) -> float:
        """Latency on ``nodes`` nodes of a query taking ``base_latency_s`` on one."""

    def speedup(self, nodes: int) -> float:
        """Speedup relative to a single node (``>= 1``)."""
        one = self.latency(1.0, 1)
        many = self.latency(1.0, nodes)
        if many <= 0:
            raise MPPDBError(f"curve produced non-positive latency at n={nodes}")
        return one / many


@dataclass(frozen=True)
class LinearScaleOut(ScaleOutCurve):
    """Perfect linear scale-out: ``latency(n) = latency(1) / n``.

    Matches TPC-H Q1 in the paper's setting ("Q1 scales out linearly with
    the number of nodes", §1.1).
    """

    def latency(self, base_latency_s: float, nodes: int) -> float:
        _check(base_latency_s, nodes)
        return base_latency_s / nodes


@dataclass(frozen=True)
class AmdahlScaleOut(ScaleOutCurve):
    """Amdahl's-law scale-out with a serial fraction.

    ``latency(n) = latency(1) * (serial + (1 - serial) / n)``.  With
    ``serial ~ 0.2`` this reproduces the flattening speedup of TPC-H Q19 in
    Figure 1.1c.
    """

    serial_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not (0 <= self.serial_fraction <= 1):
            raise MPPDBError(
                f"serial_fraction must be in [0, 1], got {self.serial_fraction!r}"
            )

    def latency(self, base_latency_s: float, nodes: int) -> float:
        _check(base_latency_s, nodes)
        return base_latency_s * (self.serial_fraction + (1 - self.serial_fraction) / nodes)


@dataclass(frozen=True)
class SublinearScaleOut(ScaleOutCurve):
    """Power-law scale-out: ``latency(n) = latency(1) / n**alpha``.

    ``alpha = 1`` is linear, ``alpha = 0`` no scale-out; intermediate values
    model repartitioning-heavy queries whose speedup grows but sub-linearly.
    """

    alpha: float = 0.7

    def __post_init__(self) -> None:
        if not (0 <= self.alpha <= 1):
            raise MPPDBError(f"alpha must be in [0, 1], got {self.alpha!r}")

    def latency(self, base_latency_s: float, nodes: int) -> float:
        _check(base_latency_s, nodes)
        return base_latency_s / (nodes ** self.alpha)
