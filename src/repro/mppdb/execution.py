"""Shared-process execution engine with fair-share interference.

Analytical workloads are I/O-bound, so ``k`` queries running concurrently in
the same database process each get a ``1/k`` share of the instance — this is
exactly the behaviour measured in Figure 1.1a, where two (four) tenants
submitting TPC-H Q1 together observe a 2x (4x) slowdown, while sequential
submissions observe none.

The engine is an egalitarian processor-sharing queue simulated exactly on a
:class:`~repro.simulation.engine.Simulator`: each running query carries its
*remaining dedicated work* (seconds of exclusive service); whenever the
concurrency level changes, progress is settled and the next completion event
is rescheduled.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import MPPDBError
from ..simulation.engine import Simulator
from ..simulation.events import ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.observer import Observer

__all__ = ["QueryExecution", "ExecutionEngine"]

_EPS = 1e-9


class QueryExecution:
    """Handle for one query running (or finished) on an engine."""

    def __init__(self, query_id: int, tenant_id: int, work_s: float, submit_time: float, label: str) -> None:
        self.query_id = query_id
        self.tenant_id = tenant_id
        self.work_s = work_s
        self.submit_time = submit_time
        self.label = label
        self.finish_time: Optional[float] = None
        self.abort_time: Optional[float] = None
        self._remaining = work_s

    @property
    def finished(self) -> bool:
        """Whether the query has completed."""
        return self.finish_time is not None

    @property
    def aborted(self) -> bool:
        """Whether the query was aborted (instance failure) before finishing."""
        return self.abort_time is not None

    @property
    def remaining_work_s(self) -> float:
        """Dedicated-service seconds still owed to this query."""
        return max(self._remaining, 0.0)

    @property
    def latency_s(self) -> float:
        """Observed wall-clock latency (only after completion)."""
        if self.finish_time is None:
            raise MPPDBError(f"query {self.query_id} has not finished")
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float:
        """Observed latency divided by dedicated latency (>= 1 up to rounding).

        This is the paper's *normalized performance* (Figure 7.7b/d): 1.0
        means the query ran as fast as in an isolated environment.
        """
        if self.work_s <= 0:
            return 1.0
        return self.latency_s / self.work_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"finished@{self.finish_time}" if self.finished else f"remaining={self._remaining:.3f}"
        return f"QueryExecution(id={self.query_id}, tenant={self.tenant_id}, {state})"


CompletionCallback = Callable[[QueryExecution], None]


class ExecutionEngine:
    """Egalitarian processor-sharing engine for one MPPDB instance."""

    def __init__(self, simulator: Simulator) -> None:
        self._sim = simulator
        self._running: dict[int, QueryExecution] = {}
        self._ids = itertools.count()
        self._last_settle = simulator.now
        self._completion_handle: Optional[ScheduledEvent] = None
        self._on_complete: list[CompletionCallback] = []
        self._on_abort: list[CompletionCallback] = []
        self._completed: list[QueryExecution] = []
        self._observer: Optional["Observer"] = None
        self._instance_name = ""

    def observe_with(self, observer: "Observer", instance_name: str) -> None:
        """Attach an observer; engine metrics are labeled ``instance_name``."""
        self._observer = observer
        self._instance_name = instance_name

    @property
    def concurrency(self) -> int:
        """Number of queries currently running."""
        return len(self._running)

    @property
    def busy(self) -> bool:
        """Whether any query is currently running (Algorithm 1's notion of free)."""
        return bool(self._running)

    @property
    def active_tenants(self) -> set[int]:
        """Tenants with at least one query currently running."""
        return {q.tenant_id for q in self._running.values()}

    @property
    def running(self) -> list[QueryExecution]:
        """Currently running queries (copy)."""
        return list(self._running.values())

    @property
    def completed(self) -> list[QueryExecution]:
        """All finished queries, in completion order (copy)."""
        return list(self._completed)

    def on_complete(self, callback: CompletionCallback) -> None:
        """Register a callback fired for every query completion."""
        self._on_complete.append(callback)

    def on_abort(self, callback: CompletionCallback) -> None:
        """Register a callback fired for every aborted query."""
        self._on_abort.append(callback)

    def abort_all(self) -> list[QueryExecution]:
        """Abort every running query (instance failure).

        MPP queries straddle all of an instance's nodes, so losing a node
        kills whatever is in flight.  Progress is settled first (so
        ``remaining_work_s`` reflects the abort instant), the completion
        event is cancelled, and abort callbacks fire in query-id order —
        the run-time layer uses them to retry on a surviving replica.
        """
        if not self._running:
            return []
        self._settle()
        aborted = sorted(self._running.values(), key=lambda q: q.query_id)
        self._running.clear()
        self._reschedule()
        now = self._sim.now
        for execution in aborted:
            execution.abort_time = now
        for execution in aborted:
            for callback in self._on_abort:
                callback(execution)
        return aborted

    def submit(self, tenant_id: int, work_s: float, label: str = "") -> QueryExecution:
        """Start a query owing ``work_s`` seconds of dedicated service.

        ``work_s`` is the query's latency on this instance when executed in
        isolation (already accounting for the instance's parallelism via a
        scale-out curve); interference with concurrent queries is the
        engine's job.
        """
        if work_s < 0:
            raise MPPDBError(f"work must be non-negative, got {work_s!r}")
        self._settle()
        observer = self._observer
        if observer is not None and observer.enabled:
            now = self._sim.now
            observer.engine_queries.labels(instance=self._instance_name).inc(now)
            # Concurrency as seen on admission, counting this query.
            observer.engine_concurrency.labels(instance=self._instance_name).observe(
                now, float(len(self._running) + 1)
            )
        execution = QueryExecution(
            query_id=next(self._ids),
            tenant_id=tenant_id,
            work_s=work_s,
            submit_time=self._sim.now,
            label=label,
        )
        if work_s <= _EPS:
            # Degenerate instantaneous query: complete immediately without
            # perturbing the processor-sharing state.
            execution.finish_time = self._sim.now
            self._completed.append(execution)
            for callback in self._on_complete:
                callback(execution)
            return execution
        self._running[execution.query_id] = execution
        self._reschedule()
        return execution

    def _settle(self) -> None:
        """Account progress since the last settle at the current share rate."""
        now = self._sim.now
        elapsed = now - self._last_settle
        if elapsed > 0 and self._running:
            rate = 1.0 / len(self._running)
            for q in self._running.values():
                q._remaining -= elapsed * rate
        self._last_settle = now

    def _reschedule(self) -> None:
        """(Re)schedule the next completion event."""
        if self._completion_handle is not None:
            self._sim.cancel(self._completion_handle)
            self._completion_handle = None
        if not self._running:
            return
        k = len(self._running)
        next_remaining = min(q._remaining for q in self._running.values())
        delay = max(next_remaining, 0.0) * k
        self._completion_handle = self._sim.schedule_after(
            delay, self._complete_due, label="engine-completion"
        )

    def _complete_due(self, time: float) -> None:
        self._settle()
        due = [q for q in self._running.values() if q._remaining <= _EPS]
        if not due:
            raise MPPDBError("completion event fired with no query due")
        for q in sorted(due, key=lambda q: q.query_id):
            del self._running[q.query_id]
            q._remaining = 0.0
            q.finish_time = time
            self._completed.append(q)
        self._completion_handle = None
        self._reschedule()
        for q in sorted(due, key=lambda q: q.query_id):
            for callback in self._on_complete:
                callback(q)
