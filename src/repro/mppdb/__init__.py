"""MPPDB simulator substrate.

A calibrated analytical stand-in for the commercial MPPDB the paper runs on
EC2 (see DESIGN.md §2 for the substitution rationale):

* :mod:`~repro.mppdb.scaleout` — per-query scale-out curves: linear
  (TPC-H Q1-like, Figure 1.1a) and Amdahl-style non-linear (Q19-like,
  Figure 1.1c).
* :mod:`~repro.mppdb.execution` — a shared-process execution engine with
  fair-share (processor-sharing) interference: ``k`` concurrently running
  queries each progress at ``1/k`` speed, reproducing the 2x/4x slowdowns of
  Figure 1.1a's xT-CON lines.
* :mod:`~repro.mppdb.loading` — instance startup and bulk-load times fitted
  to Table 5.1 (~1.2 GB/min parallel load).
* :mod:`~repro.mppdb.instance` / :mod:`~repro.mppdb.catalog` /
  :mod:`~repro.mppdb.provisioning` — instance lifecycle, per-tenant private
  table sets, and node allocation.
"""

from .catalog import Catalog, TenantData
from .execution import ExecutionEngine, QueryExecution
from .instance import InstanceState, MPPDBInstance
from .loading import LoadTimeModel, PAPER_LOAD_TABLE
from .provisioning import Provisioner
from .scaleout import (
    AmdahlScaleOut,
    LinearScaleOut,
    ScaleOutCurve,
    SublinearScaleOut,
)

__all__ = [
    "Catalog",
    "TenantData",
    "ExecutionEngine",
    "QueryExecution",
    "InstanceState",
    "MPPDBInstance",
    "LoadTimeModel",
    "PAPER_LOAD_TABLE",
    "Provisioner",
    "ScaleOutCurve",
    "LinearScaleOut",
    "AmdahlScaleOut",
    "SublinearScaleOut",
]
