"""Hardware substrate: machine nodes, the machine pool, and failures.

Thrifty assumes all nodes in the cluster are identical in configuration
(Chapter 3); the pool hands out nodes to MPPDB instances, hibernates the
rest (the Deployment Master "switches off/hibernates nodes that are not
listed in the deployment plan"), and injects node failures for the
availability tests.
"""

from .failures import FailureInjector, NodeFailure
from .health import HealthManager
from .node import Node, NodeSpec, NodeState
from .pool import MachinePool

__all__ = [
    "Node",
    "NodeSpec",
    "NodeState",
    "MachinePool",
    "FailureInjector",
    "NodeFailure",
    "HealthManager",
]
