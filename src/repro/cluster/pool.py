"""The machine pool.

The Deployment Master draws groups of nodes from a single
:class:`MachinePool`, one group per MPPDB instance of the deployment plan,
and hibernates everything else.  The pool also supports growing on demand —
the paper's elastic scaling "makes good use of the elastic nature of cloud
computing" (Chapter 5.1), i.e. new nodes can always be rented — and
replacing failed nodes ("Thrifty will replace a failed node by starting a
new node", Chapter 4.4).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import CapacityError, ClusterError
from .node import DEFAULT_NODE_SPEC, Node, NodeSpec, NodeState

__all__ = ["MachinePool"]


class MachinePool:
    """A pool of machine nodes, homogeneous by default.

    Thrifty's base assumption is a homogeneous cluster (Ch. 3); the pool
    additionally supports *named node classes* (:meth:`add_node_class`) as
    the substrate for the paper's first future-work item, heterogeneous
    clusters.  Every instance still draws all its nodes from a single
    class — MPPDBs want uniform workers — so heterogeneity lives *between*
    tenant groups, not inside an instance.

    Parameters
    ----------
    size:
        Number of ``"standard"``-class nodes initially in the pool.
    spec:
        Hardware spec of the ``"standard"`` class.
    elastic:
        When true (the default), :meth:`allocate` grows the pool instead of
        failing when not enough hibernated nodes remain — modelling a cloud
        provider from which additional nodes can be rented.
    """

    def __init__(self, size: int = 0, spec: NodeSpec = DEFAULT_NODE_SPEC, elastic: bool = True) -> None:
        if size < 0:
            raise ClusterError(f"pool size must be non-negative, got {size!r}")
        self._spec = spec
        self._elastic = bool(elastic)
        self._classes: dict[str, NodeSpec] = {"standard": spec}
        self._nodes: list[Node] = [Node(i, spec) for i in range(size)]
        self._rented = 0
        self._alloc_handlers: list[Callable[[list[Node]], None]] = []

    def on_allocate(self, handler: Callable[[list[Node]], None]) -> None:
        """Register a callback invoked with every batch of granted nodes.

        The failure injector uses this to arm failure schedules on nodes
        allocated *after* :meth:`~repro.cluster.failures.FailureInjector.arm`
        ran (elastic scale-out, node replacement) — without it, late
        arrivals would be immortal.
        """
        self._alloc_handlers.append(handler)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def spec(self) -> NodeSpec:
        """The ``"standard"`` class's node spec."""
        return self._spec

    @property
    def node_classes(self) -> dict[str, NodeSpec]:
        """Known node classes (copy)."""
        return dict(self._classes)

    def add_node_class(self, name: str, spec: NodeSpec, count: int = 0) -> None:
        """Register a hardware class and optionally stock it with nodes."""
        if not name:
            raise ClusterError("node class names must be non-empty")
        if name in self._classes:
            raise ClusterError(f"node class {name!r} already exists")
        if count < 0:
            raise ClusterError("count must be non-negative")
        self._classes[name] = spec
        for __ in range(count):
            self._nodes.append(Node(len(self._nodes), spec, node_class=name))

    def class_spec(self, node_class: str) -> NodeSpec:
        """The spec of a node class."""
        try:
            return self._classes[node_class]
        except KeyError:
            raise ClusterError(f"unknown node class {node_class!r}") from None

    @property
    def elastic(self) -> bool:
        """Whether the pool grows on demand."""
        return self._elastic

    @property
    def rented_nodes(self) -> int:
        """Nodes added beyond the initial stock (rented from the cloud)."""
        return self._rented

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        if not (0 <= node_id < len(self._nodes)):
            raise ClusterError(f"unknown node id {node_id!r}")
        return self._nodes[node_id]

    def nodes_in_state(self, state: NodeState) -> list[Node]:
        """All nodes currently in ``state``."""
        return [n for n in self._nodes if n.state == state]

    def available_count_of(self, node_class: str = "standard") -> int:
        """Number of hibernated, unassigned nodes of one class."""
        self.class_spec(node_class)
        return sum(
            1 for n in self._nodes if n.is_available and n.node_class == node_class
        )

    @property
    def available_count(self) -> int:
        """Number of hibernated, unassigned nodes (all classes)."""
        return sum(1 for n in self._nodes if n.is_available)

    @property
    def in_use_count(self) -> int:
        """Number of nodes currently assigned to an instance."""
        return sum(1 for n in self._nodes if n.assigned_to is not None)

    def allocate(self, count: int, owner: str, node_class: str = "standard") -> list[Node]:
        """Hand out ``count`` same-class nodes to ``owner``.

        Grows the pool (renting nodes of that class) when elastic.  The
        returned nodes are in ``STARTING`` state; the MPPDB provisioning
        layer marks them running once the startup delay elapses.
        """
        if count < 1:
            raise ClusterError(f"allocation count must be >= 1, got {count!r}")
        spec = self.class_spec(node_class)
        available = [
            n for n in self._nodes if n.is_available and n.node_class == node_class
        ]
        if len(available) < count:
            if not self._elastic:
                raise CapacityError(
                    f"pool has {len(available)} available {node_class!r} nodes; "
                    f"{count} requested by {owner!r}"
                )
            missing = count - len(available)
            for _ in range(missing):
                node = Node(len(self._nodes), spec, node_class=node_class)
                self._nodes.append(node)
                available.append(node)
            self._rented += missing
        granted = available[:count]
        for node in granted:
            node.assign(owner)
        for handler in self._alloc_handlers:
            handler(list(granted))
        return granted

    def release(self, nodes: Iterable[Node]) -> None:
        """Return nodes to the pool."""
        for node in nodes:
            node.release()

    def fail_node(self, node_id: int) -> Node:
        """Inject a failure on an in-use node; returns the failed node."""
        node = self.node(node_id)
        node.fail()
        return node

    def replace_failed(self, failed: Node, owner: str) -> Node:
        """Replace a failed node with a fresh one for the same owner.

        The failed node is repaired back into the available pool (its data
        is gone either way — the MPPDB re-replicates onto the newcomer)
        and a newly started replacement is returned.
        """
        if failed.state != NodeState.FAILED:
            raise ClusterError(f"node {failed.node_id} is not failed")
        replacement = self.allocate(1, owner, node_class=failed.node_class)[0]
        failed.repair()
        return replacement

    def utilization_summary(self) -> dict[str, int]:
        """Counts per lifecycle state, for reporting."""
        summary = {state.value: 0 for state in NodeState}
        for node in self._nodes:
            summary[node.state.value] += 1
        return summary

    def owners(self) -> dict[str, list[int]]:
        """Mapping from owner name to the sorted node ids it holds."""
        result: dict[str, list[int]] = {}
        for node in self._nodes:
            if node.assigned_to is not None:
                result.setdefault(node.assigned_to, []).append(node.node_id)
        for ids in result.values():
            ids.sort()
        return result

    def nodes_of(self, owner: str) -> list[Node]:
        """All nodes assigned to ``owner``."""
        return [n for n in self._nodes if n.assigned_to == owner]

    def release_owner(self, owner: str) -> int:
        """Release every node held by ``owner``; returns how many."""
        nodes = self.nodes_of(owner)
        for node in nodes:
            if node.state == NodeState.FAILED:
                node.repair()
            else:
                node.release()
        return len(nodes)
