"""Machine nodes.

The paper's experimental nodes are Amazon EC2 Extra Large instances
("15 GB memory and 8 EC2 Compute Units", §7.2); :data:`DEFAULT_NODE_SPEC`
mirrors that.  Thrifty currently assumes a homogeneous cluster (Chapter 3),
which :class:`~repro.cluster.pool.MachinePool` enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ClusterError

__all__ = ["NodeSpec", "NodeState", "Node", "DEFAULT_NODE_SPEC"]


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware description of one machine node.

    ``relative_speed`` scales query execution on instances built from this
    class (1.0 = the baseline EC2 Extra Large): the hook for the paper's
    first future-work item, heterogeneous clusters.
    """

    cpu_units: int = 8
    ram_gb: float = 15.0
    disk_gb: float = 1690.0
    io_mb_per_s: float = 100.0
    relative_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_units < 1:
            raise ClusterError("cpu_units must be >= 1")
        if self.ram_gb <= 0 or self.disk_gb <= 0 or self.io_mb_per_s <= 0:
            raise ClusterError("ram_gb, disk_gb and io_mb_per_s must be positive")
        if self.relative_speed <= 0:
            raise ClusterError("relative_speed must be positive")


#: EC2 Extra Large, as used in §7.2.
DEFAULT_NODE_SPEC = NodeSpec()


class NodeState(enum.Enum):
    """Lifecycle states of a node."""

    HIBERNATED = "hibernated"
    STARTING = "starting"
    RUNNING = "running"
    FAILED = "failed"


class Node:
    """One machine node: identity, spec, lifecycle state and assignment."""

    def __init__(
        self, node_id: int, spec: NodeSpec = DEFAULT_NODE_SPEC, node_class: str = "standard"
    ) -> None:
        if node_id < 0:
            raise ClusterError(f"node ids must be non-negative, got {node_id!r}")
        self._node_id = int(node_id)
        self._spec = spec
        self._node_class = node_class
        self._state = NodeState.HIBERNATED
        self._assigned_to: str | None = None

    @property
    def node_class(self) -> str:
        """Hardware class name within a heterogeneous pool."""
        return self._node_class

    @property
    def node_id(self) -> int:
        """Stable integer identity within the pool."""
        return self._node_id

    @property
    def spec(self) -> NodeSpec:
        """Hardware description."""
        return self._spec

    @property
    def state(self) -> NodeState:
        """Current lifecycle state."""
        return self._state

    @property
    def assigned_to(self) -> str | None:
        """Name of the MPPDB instance holding this node, if any."""
        return self._assigned_to

    @property
    def is_available(self) -> bool:
        """True when the node can be handed out by the pool."""
        return self._state == NodeState.HIBERNATED and self._assigned_to is None

    def assign(self, owner: str) -> None:
        """Reserve the node for an MPPDB instance and begin starting it."""
        if not self.is_available:
            raise ClusterError(
                f"node {self._node_id} is not available "
                f"(state={self._state.value}, assigned_to={self._assigned_to!r})"
            )
        self._assigned_to = owner
        self._state = NodeState.STARTING

    def mark_running(self) -> None:
        """Transition a starting node to running."""
        if self._state != NodeState.STARTING:
            raise ClusterError(f"node {self._node_id} cannot run from state {self._state.value}")
        self._state = NodeState.RUNNING

    def fail(self) -> None:
        """Mark the node failed (must currently be assigned)."""
        if self._state not in (NodeState.STARTING, NodeState.RUNNING):
            raise ClusterError(f"node {self._node_id} cannot fail from state {self._state.value}")
        self._state = NodeState.FAILED

    def release(self) -> None:
        """Return the node to the pool (hibernate it)."""
        if self._assigned_to is None:
            raise ClusterError(f"node {self._node_id} is not assigned")
        self._assigned_to = None
        self._state = NodeState.HIBERNATED

    def repair(self) -> None:
        """Repair a failed node back into the available pool."""
        if self._state != NodeState.FAILED:
            raise ClusterError(f"node {self._node_id} is not failed")
        self._assigned_to = None
        self._state = NodeState.HIBERNATED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self._node_id}, state={self._state.value}, owner={self._assigned_to!r})"
