"""Node failure injection.

"Node failure is handled directly by the MPPDB.  All major MPPDB products
can still stay online even with (some) node failure.  Thrifty will replace a
failed node by starting a new node upon receiving node failure notification"
(Chapter 4.4).  The injector draws failure times from an exponential
distribution per node and notifies a callback, which the provisioning layer
uses to trigger replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import ClusterError
from ..simulation.engine import Simulator
from .node import Node, NodeState
from .pool import MachinePool

__all__ = ["NodeFailure", "FailureInjector"]


@dataclass(frozen=True)
class NodeFailure:
    """A failure notification: which node failed, when, and its owner."""

    node_id: int
    time: float
    owner: Optional[str]


FailureHandler = Callable[[NodeFailure], None]


class FailureInjector:
    """Schedules random node failures on a simulator.

    Parameters
    ----------
    pool:
        The machine pool whose in-use nodes may fail.
    simulator:
        Engine on which failure events are scheduled.
    mtbf_s:
        Per-node mean time between failures, in seconds.
    rng:
        Source of randomness (a ``numpy`` generator).
    """

    def __init__(
        self,
        pool: MachinePool,
        simulator: Simulator,
        mtbf_s: float,
        rng: np.random.Generator,
    ) -> None:
        if mtbf_s <= 0:
            raise ClusterError(f"mtbf_s must be positive, got {mtbf_s!r}")
        self._pool = pool
        self._sim = simulator
        self._mtbf = float(mtbf_s)
        self._rng = rng
        self._handlers: list[FailureHandler] = []
        self._failures: list[NodeFailure] = []
        self._horizon: Optional[float] = None
        self._hooked = False

    @property
    def failures(self) -> list[NodeFailure]:
        """All failures injected so far (copy)."""
        return list(self._failures)

    @property
    def horizon(self) -> Optional[float]:
        """Time up to which failures are armed (None before :meth:`arm`)."""
        return self._horizon

    def on_failure(self, handler: FailureHandler) -> None:
        """Register a callback invoked on every injected failure."""
        self._handlers.append(handler)

    def arm(self, horizon: float) -> int:
        """Schedule failures for all in-use nodes up to ``horizon``.

        Each in-use (starting or running) node gets independent exponential
        inter-failure times; returns the number of failure events scheduled.
        Nodes allocated *after* arming — elastic scale-out, node
        replacement — are armed up to the same horizon through the pool's
        allocation hook, so no node escapes the chaos schedule.
        """
        self._horizon = float(horizon)
        if not self._hooked:
            self._pool.on_allocate(self._arm_allocated)
            self._hooked = True
        scheduled = 0
        in_use = self._pool.nodes_in_state(NodeState.RUNNING) + self._pool.nodes_in_state(
            NodeState.STARTING
        )
        for node in sorted(in_use, key=lambda n: n.node_id):
            scheduled += self._schedule_node(node, horizon)
        return scheduled

    def _arm_allocated(self, nodes: list[Node]) -> None:
        """Pool allocation hook: arm newly granted nodes up to the horizon."""
        horizon = self._horizon
        if horizon is None:
            return
        for node in nodes:
            self._schedule_node(node, horizon)

    def _schedule_node(self, node: Node, horizon: float) -> int:
        """Draw one node's exponential failure times in ``[now, horizon)``."""
        scheduled = 0
        t = self._sim.now
        while True:
            t += float(self._rng.exponential(self._mtbf))
            if t >= horizon:
                break
            self._sim.schedule(
                t,
                self._make_failure_callback(node.node_id),
                label=f"node-failure:{node.node_id}",
            )
            scheduled += 1
        return scheduled

    def inject_now(self, node_id: int) -> NodeFailure:
        """Deterministically fail a node right now (for tests)."""
        return self._fire(node_id, self._sim.now)

    def _make_failure_callback(self, node_id: int) -> Callable[[float], None]:
        def _cb(time: float) -> None:
            node = self._pool.node(node_id)
            # A node released or already failed since arming cannot fail again.
            if node.assigned_to is None or node.state is NodeState.FAILED:
                return
            self._fire(node_id, time)

        return _cb

    def _fire(self, node_id: int, time: float) -> NodeFailure:
        node = self._pool.node(node_id)
        owner = node.assigned_to
        self._pool.fail_node(node_id)
        failure = NodeFailure(node_id=node_id, time=time, owner=owner)
        self._failures.append(failure)
        for handler in self._handlers:
            handler(failure)
        return failure
