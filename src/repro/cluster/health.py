"""The health manager: node failure -> degrade -> replace -> recover.

"Node failure is handled directly by the MPPDB... Thrifty will replace a
failed node by starting a new node upon receiving node failure notification"
(Chapter 4.4).  The :class:`HealthManager` is that notification path: it
subscribes to a :class:`~repro.cluster.failures.FailureInjector`, marks the
owning :class:`~repro.mppdb.instance.MPPDBInstance` degraded (or down),
aborts its in-flight queries — MPP queries straddle every node, so losing
one kills whatever is running — and drives a replacement node through the
:class:`~repro.mppdb.provisioning.Provisioner`, paying the
:class:`~repro.mppdb.loading.LoadTimeModel` reload delay for the failed
node's data shard.  When the replacement finishes loading, the instance
flips back to READY and recovery handlers fire (the run-time layer uses
them to resubmit queries parked for want of a healthy replica).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..errors import CapacityError, MPPDBError
from ..obs.observer import NULL_OBSERVER, Observer
from ..simulation.engine import Simulator
from .failures import FailureInjector, NodeFailure
from .pool import MachinePool

if TYPE_CHECKING:  # pragma: no cover - typing only (mppdb imports cluster
    # submodules at runtime; importing it back here would close a cycle)
    from ..mppdb.instance import MPPDBInstance
    from ..mppdb.provisioning import Provisioner
    from ..obs.tracing import Span

__all__ = ["HealthManager"]

RecoveryHandler = Callable[["MPPDBInstance", float], None]


class HealthManager:
    """Watches node failures and restores the instances they hit.

    Parameters
    ----------
    pool:
        The machine pool that owns the (failing) nodes.
    provisioner:
        The provisioning layer used to issue replacement nodes.
    simulator:
        The simulation engine (for the clock and scheduled reloads).
    observer:
        Optional observability plane; fault metrics and ``replace`` spans
        are emitted through it.
    """

    def __init__(
        self,
        pool: MachinePool,
        provisioner: Provisioner,
        simulator: Simulator,
        observer: Optional[Observer] = None,
    ) -> None:
        self._pool = pool
        self._provisioner = provisioner
        self._sim = simulator
        self._observer = observer if observer is not None else NULL_OBSERVER
        self._recovery_handlers: list[RecoveryHandler] = []
        #: When each currently-impaired instance left READY, by name.
        self._degraded_since: dict[str, float] = {}
        #: Open ``replace`` spans per instance name (ended on recovery).
        self._replace_spans: dict[str, "Span"] = {}
        self.node_failures_handled = 0
        self.replacements_started = 0
        self.replacements_completed = 0

    @property
    def degraded_instances(self) -> list[str]:
        """Names of instances currently impaired by node failures (sorted)."""
        return sorted(self._degraded_since)

    def watch(self, injector: FailureInjector) -> None:
        """Subscribe to an injector's failure notifications."""
        injector.on_failure(self.handle_failure)

    def on_recover(self, handler: RecoveryHandler) -> None:
        """Register a callback fired when an instance returns to READY."""
        self._recovery_handlers.append(handler)

    def handle_failure(self, failure: NodeFailure) -> None:
        """React to one node failure: degrade, abort, replace.

        Failures on unowned nodes (released before the scheduled failure
        fired) and on retired instances are ignored; failures during
        PROVISIONING replace the node silently — :meth:`~repro.mppdb.
        instance.MPPDBInstance.mark_ready` lands the instance DEGRADED if
        the replacement is still loading when provisioning completes.
        """
        from ..mppdb.instance import InstanceState

        if failure.owner is None:
            return
        try:
            instance = self._provisioner.get(failure.owner)
        except MPPDBError:
            return  # owner is not an MPPDB instance (foreign allocation)
        if instance.state is InstanceState.RETIRED:
            return
        if instance.node_ids and failure.node_id not in instance.node_ids:
            return
        self.node_failures_handled += 1
        observer = self._observer
        now = self._sim.now
        if observer.enabled:
            observer.node_failures.labels(instance=instance.name).inc(now)

        if instance.state is InstanceState.PROVISIONING:
            instance.record_node_failure(failure.node_id)
            self._start_replacement(instance, failure.node_id)
            return

        if instance.name not in self._degraded_since:
            self._degraded_since[instance.name] = now
        instance.record_node_failure(failure.node_id)
        instance.abort_running()
        if observer.enabled and instance.name not in self._replace_spans:
            self._replace_spans[instance.name] = observer.tracer.start_span(
                "replace",
                now,
                kind="fault",
                instance=instance.name,
                node_id=failure.node_id,
            )
        self._start_replacement(instance, failure.node_id)

    def _start_replacement(self, instance: MPPDBInstance, node_id: int) -> None:
        """Issue a replacement; no capacity takes the instance DOWN."""
        observer = self._observer
        now = self._sim.now
        try:
            delay = self._provisioner.replace_node(
                instance, node_id, on_ready=self._on_replaced
            )
        except CapacityError:
            instance.mark_down()
            span = self._replace_spans.pop(instance.name, None)
            if span is not None:
                span.end(now, status="no-capacity")
            return
        self.replacements_started += 1
        if observer.enabled:
            observer.replacement_time.labels(instance=instance.name).observe(now, delay)

    def _on_replaced(self, instance: MPPDBInstance, time: float) -> None:
        """A replacement finished loading; close the episode if healthy."""
        self.replacements_completed += 1
        if not instance.is_ready:
            return  # other nodes still impaired; episode stays open
        span = self._replace_spans.pop(instance.name, None)
        if span is not None:
            span.add_event(time, "recovered")
            span.end(time, status="replaced")
        since = self._degraded_since.pop(instance.name, None)
        if since is not None and self._observer.enabled:
            self._observer.instance_degraded_seconds.labels(
                instance=instance.name
            ).inc(time, time - since)
        for handler in self._recovery_handlers:
            handler(instance, time)

    def finalize(self, time: float) -> None:
        """Account still-open degradation episodes at the replay horizon."""
        observer = self._observer
        for name, since in sorted(self._degraded_since.items()):
            if observer.enabled:
                observer.instance_degraded_seconds.labels(instance=name).inc(
                    time, max(0.0, time - since)
                )
        self._degraded_since.clear()
        for name in sorted(self._replace_spans):
            self._replace_spans.pop(name).end(time, status="inflight")
