"""Plain-text rendering for the benchmark harness.

The benches print the same rows/series the paper's figures plot; these
helpers keep the output aligned and reproducible without any plotting
dependency.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ReproError

__all__ = ["format_table", "ascii_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    if not headers:
        raise ReproError("a table needs headers")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


_BLOCKS = " .:-=+*#%@"


def ascii_series(values: Sequence[float], width: int = 72, label: str = "") -> str:
    """Render a numeric series as a one-line character sparkline.

    Values are min-max normalized onto ten density levels; useful for the
    RT-TTP and normalized-latency excerpts of Figure 7.7.
    """
    if not values:
        raise ReproError("cannot render an empty series")
    data = list(values)
    if len(data) > width:
        # Downsample by taking the worst (max) of each bucket so dips and
        # spikes survive compression.
        bucket = len(data) / width
        data = [
            max(data[int(i * bucket): max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    lo, hi = min(data), max(data)
    if hi == lo:
        body = _BLOCKS[0] * len(data)
    else:
        span = hi - lo
        body = "".join(
            _BLOCKS[min(int((v - lo) / span * (len(_BLOCKS) - 1)), len(_BLOCKS) - 1)]
            for v in data
        )
    prefix = f"{label} " if label else ""
    return f"{prefix}[{body}] min={lo:.4g} max={hi:.4g}"
