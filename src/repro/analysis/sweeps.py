"""The Chapter 7 experiment driver.

Builds workloads at a configurable *bench scale* (the paper's runs use
T = 5000 tenants and 30-day logs on EC2; the default bench scale is
laptop-sized and documented per experiment in EXPERIMENTS.md), runs the
grouping solvers, and produces one :class:`GroupingRow` per parameter
value with the three panels of every §7.3 figure: consolidation
effectiveness, average tenant-group size, and solver execution time.

Workloads are cached per (scale, log-variant) so the five parameter sweeps
that share the default workload do not regenerate it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..config import EvaluationConfig, LogGenerationConfig
from ..errors import ReproError
from ..packing.ffd import ffd_grouping
from ..packing.livbp import LIVBPwFCProblem
from ..packing.two_step import two_step_grouping
from ..workload.activity import ActivityMatrix, active_tenant_ratio
from ..workload.composer import ComposedWorkload, MultiTenantLogComposer
from ..workload.generator import SessionLibrary, SessionLogGenerator

__all__ = [
    "BenchScale",
    "GroupingRow",
    "build_workload",
    "run_grouping_experiment",
    "sweep_parameter",
    "DEFAULT_SCALE",
    "SMOKE_SCALE",
]


@dataclass(frozen=True)
class BenchScale:
    """How much of the paper's scale a bench run uses."""

    num_tenants: int = 800
    horizon_days: int = 14
    holiday_weekdays: int = 1
    sessions_per_size: int = 16
    seed: int = 20130625

    def config(self, **overrides: object) -> EvaluationConfig:
        """An :class:`EvaluationConfig` at this scale (fields overridable)."""
        logs = LogGenerationConfig(
            horizon_days=self.horizon_days, holiday_weekdays=self.holiday_weekdays
        )
        base = EvaluationConfig(num_tenants=self.num_tenants, seed=self.seed, logs=logs)
        if overrides:
            base = replace(base, **overrides)  # type: ignore[arg-type]
        return base


#: Scale used by the committed benchmark harness.
DEFAULT_SCALE = BenchScale()

#: Tiny scale for smoke tests and CI.
SMOKE_SCALE = BenchScale(num_tenants=120, horizon_days=7, holiday_weekdays=0, sessions_per_size=6)

_LIBRARY_CACHE: dict[tuple, SessionLibrary] = {}
_WORKLOAD_CACHE: dict[tuple, ComposedWorkload] = {}


def _library_key(config: EvaluationConfig, sessions_per_size: int) -> tuple:
    return (config.seed, config.node_sizes, config.data_gb_per_node, sessions_per_size,
            config.logs.session_hours, config.logs.max_users, config.logs.max_batch,
            config.logs.min_think_s, config.logs.max_think_s)


def _workload_key(config: EvaluationConfig, sessions_per_size: int) -> tuple:
    logs = config.logs
    return _library_key(config, sessions_per_size) + (
        config.num_tenants,
        config.theta,
        logs.horizon_days,
        logs.workdays_per_week,
        logs.holiday_weekdays,
        logs.tz_offsets_hours,
        logs.include_lunch,
        logs.include_evening_session,
        logs.lunch_hours,
        logs.evening_gap_hours,
    )


def build_workload(config: EvaluationConfig, sessions_per_size: int = 16) -> ComposedWorkload:
    """Generate (or fetch from cache) the composed workload for a config."""
    key = _workload_key(config, sessions_per_size)
    workload = _WORKLOAD_CACHE.get(key)
    if workload is not None:
        return workload
    lib_key = _library_key(config, sessions_per_size)
    library = _LIBRARY_CACHE.get(lib_key)
    if library is None:
        library = SessionLogGenerator(config, sessions_per_size=sessions_per_size).generate()
        _LIBRARY_CACHE[lib_key] = library
    workload = MultiTenantLogComposer(config, library).compose()
    _WORKLOAD_CACHE[key] = workload
    return workload


@dataclass(frozen=True)
class GroupingRow:
    """One parameter point of a §7.3-style sweep."""

    parameter: str
    value: object
    active_ratio: float
    two_step_effectiveness: float
    two_step_group_size: float
    two_step_seconds: float
    ffd_effectiveness: float
    ffd_group_size: float
    ffd_seconds: float
    extras: dict = field(default_factory=dict)

    @property
    def advantage_points(self) -> float:
        """2-step effectiveness minus FFD's, in percentage points."""
        return 100.0 * (self.two_step_effectiveness - self.ffd_effectiveness)

    def identity(self) -> tuple:
        """The deterministic fields of the row — everything except timing.

        Two runs of the same sweep (serial, or parallel at any worker
        count) produce rows with equal identities; the ``*_seconds``
        fields are wall-clock *measurements* and are excluded from the
        determinism contract (docs/PARALLELISM.md).
        """
        return (
            self.parameter,
            self.value,
            self.active_ratio,
            self.two_step_effectiveness,
            self.two_step_group_size,
            self.ffd_effectiveness,
            self.ffd_group_size,
            tuple(sorted(self.extras.items())),
        )

    def as_list(self) -> list:
        """Row form for :func:`~repro.analysis.report.format_table`."""
        return [
            self.value,
            round(self.active_ratio, 4),
            round(self.two_step_effectiveness, 4),
            round(self.ffd_effectiveness, 4),
            round(self.advantage_points, 2),
            round(self.two_step_group_size, 2),
            round(self.ffd_group_size, 2),
            round(self.two_step_seconds, 2),
            round(self.ffd_seconds, 2),
        ]


#: Column headers matching :meth:`GroupingRow.as_list`.
GROUPING_HEADERS = [
    "value",
    "active_ratio",
    "2step_eff",
    "ffd_eff",
    "adv_pts",
    "2step_gsz",
    "ffd_gsz",
    "2step_s",
    "ffd_s",
]
__all__.append("GROUPING_HEADERS")


def run_grouping_experiment(
    workload: ComposedWorkload,
    epoch_size: float,
    replication_factor: int,
    sla_percent: float,
    parameter: str = "",
    value: object = None,
) -> GroupingRow:
    """Solve one instance with both heuristics and collect the panels.

    Solver timings are measured here with :func:`time.perf_counter` —
    i.e. *inside* the shard when the experiment runs under the parallel
    fabric — so aggregated solver time is the cost of the solve itself,
    not the wall time of a worker pool (which would fold queueing and
    scheduling noise into the §7.3 execution-time panels).
    """
    matrix = ActivityMatrix.from_workload(workload, epoch_size)
    problem = LIVBPwFCProblem.from_activity_matrix(matrix, replication_factor, sla_percent)
    started = time.perf_counter()
    two_step = two_step_grouping(problem)
    two_step_s = time.perf_counter() - started
    started = time.perf_counter()
    ffd = ffd_grouping(problem)
    ffd_s = time.perf_counter() - started
    two_step.validate()
    ffd.validate()
    return GroupingRow(
        parameter=parameter,
        value=value,
        active_ratio=active_tenant_ratio(matrix, conditional=False),
        two_step_effectiveness=two_step.consolidation_effectiveness,
        two_step_group_size=two_step.average_group_size,
        two_step_seconds=two_step_s,
        ffd_effectiveness=ffd.consolidation_effectiveness,
        ffd_group_size=ffd.average_group_size,
        ffd_seconds=ffd_s,
        extras={"num_epochs": problem.num_epochs, "num_items": len(problem.items)},
    )


#: Parameters :func:`sweep_parameter` understands.
SWEEP_PARAMETERS = frozenset(
    {"epoch_size_s", "num_tenants", "theta", "replication_factor", "sla_percent"}
)
__all__.append("SWEEP_PARAMETERS")


def sweep_parameter(
    parameter: str,
    values: Sequence[object],
    scale: BenchScale = DEFAULT_SCALE,
    workload_factory: Optional[Callable[[EvaluationConfig], ComposedWorkload]] = None,
    workers: int = 0,
) -> list[GroupingRow]:
    """Run a Table 7.1-style sweep over one parameter.

    ``parameter`` is one of ``"epoch_size_s"``, ``"num_tenants"``,
    ``"theta"``, ``"replication_factor"``, ``"sla_percent"``; every other
    parameter stays at the scale's default.

    With ``workers > 0`` the sweep points — which are embarrassingly
    parallel — run as shards on the :mod:`repro.parallel` fabric, one
    process pool of that size; the rows come back in value order with
    identical deterministic fields (:meth:`GroupingRow.identity`) to the
    serial path.  ``workload_factory`` is a serial-only hook (an arbitrary
    closure cannot be shipped to a spawned worker).
    """
    if parameter not in SWEEP_PARAMETERS:
        raise ReproError(
            f"unknown sweep parameter {parameter!r}; options: {sorted(SWEEP_PARAMETERS)}"
        )
    if workers:
        if workload_factory is not None:
            raise ReproError(
                "workload_factory is serial-only; a parallel sweep builds each "
                "shard's workload from its config inside the worker"
            )
        from ..parallel.runner import ProcessPoolRunner
        from ..parallel.tasks import run_sweep

        merged = run_sweep(parameter, values, scale, ProcessPoolRunner(max_workers=workers))
        return list(merged.values)
    rows: list[GroupingRow] = []
    for value in values:
        config = scale.config(**{parameter: value})
        if workload_factory is not None:
            workload = workload_factory(config)
        else:
            workload = build_workload(config, scale.sessions_per_size)
        rows.append(
            run_grouping_experiment(
                workload,
                epoch_size=config.epoch_size_s,
                replication_factor=config.replication_factor,
                sla_percent=config.sla_percent,
                parameter=parameter,
                value=value,
            )
        )
    return rows
