"""Workload sanity validation.

A generated workload drives every downstream result, so before spending
hours on sweeps it pays to check it is *plausible*: the active-tenant
ratio in the realistic band the paper cites (8.9–12 % for its logs,
[21]'s 10 % for real DaaS), every node-size class populated with a
Zipf-decreasing shape, and per-tenant activity consistent with the
office-hours structure.  :func:`validate_workload` runs those checks and
returns a structured report; `strict=True` raises on hard failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from ..units import DAY
from ..workload.composer import ComposedWorkload

__all__ = ["WorkloadReport", "validate_workload"]


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of workload validation."""

    tenants: int
    active_ratio_unconditional: float
    active_ratio_conditional: float
    class_counts: dict[int, int]
    mean_daily_busy_hours: float
    warnings: tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """Whether no warnings were raised."""
        return not self.warnings


def validate_workload(
    workload: ComposedWorkload,
    epoch_size: float = 60.0,
    ratio_band: tuple[float, float] = (0.005, 0.25),
    sample_tenants: int = 25,
    strict: bool = False,
) -> WorkloadReport:
    """Check a composed workload's plausibility.

    Checks:

    * the unconditional active-tenant ratio lies in ``ratio_band`` (a
      deliberately wide envelope around realistic DaaS ratios — outside
      it, calibration is off and consolidation results are meaningless);
    * every node size of the menu has at least one tenant;
    * tenant counts do not *increase* with node size (the Zipf shape of
      Figure 5.2), tolerating small-sample noise on adjacent classes;
    * sampled tenants are busy a plausible number of hours per day
      (more than ~16 h/day means queries never finish).

    Returns the report; with ``strict=True`` raises
    :class:`~repro.errors.WorkloadError` listing every warning.
    """
    if epoch_size <= 0:
        raise WorkloadError("epoch_size must be positive")
    warnings: list[str] = []

    uncond = workload.active_tenant_ratio(epoch_size, conditional=False)
    cond = workload.active_tenant_ratio(epoch_size, conditional=True)
    low, high = ratio_band
    if not (low <= uncond <= high):
        warnings.append(
            f"unconditional active ratio {uncond:.4f} outside plausible band "
            f"[{low}, {high}]"
        )

    class_counts: dict[int, int] = {}
    for tenant in workload.tenants:
        class_counts[tenant.nodes_requested] = class_counts.get(tenant.nodes_requested, 0) + 1
    sizes = sorted(class_counts)
    for size in sizes:
        if class_counts[size] == 0:
            warnings.append(f"node-size class {size} has no tenants")
    counts = [class_counts[s] for s in sizes]
    # Zipf shape: allow adjacent-class noise, flag a clear inversion.
    for i in range(len(counts) - 1):
        if counts[i + 1] > counts[i] * 1.5 + 2:
            warnings.append(
                f"tenant counts increase from {sizes[i]}-node ({counts[i]}) to "
                f"{sizes[i + 1]}-node ({counts[i + 1]}): not Zipf-shaped"
            )

    sample = workload.tenant_ids[: max(1, sample_tenants)]
    horizon_days = workload.horizon_s / DAY
    busy_hours = []
    for tenant_id in sample:
        log = workload.tenant_log(tenant_id)
        busy_hours.append(log.total_busy_seconds() / 3600.0 / horizon_days)
    mean_busy = float(np.mean(busy_hours))
    if mean_busy > 16.0:
        warnings.append(
            f"sampled tenants busy {mean_busy:.1f} h/day on average: queries "
            "are not completing (check template costs vs think times)"
        )
    if mean_busy <= 0.0:
        warnings.append("sampled tenants are never active")

    report = WorkloadReport(
        tenants=len(workload),
        active_ratio_unconditional=uncond,
        active_ratio_conditional=cond,
        class_counts=class_counts,
        mean_daily_busy_hours=mean_busy,
        warnings=tuple(warnings),
    )
    if strict and warnings:
        raise WorkloadError("workload validation failed: " + "; ".join(warnings))
    return report
