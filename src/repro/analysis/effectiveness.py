"""Consolidation-effectiveness analysis helpers.

Utilities on top of :class:`~repro.packing.livbp.GroupingSolution`: solver
head-to-head comparison (the "2-step saves 3.6–11.1 % more nodes than FFD"
claim of §7.3) and per-size-class breakdowns, which explain *where* the
savings come from (large node classes dominate the node count under Zipf
sizing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PackingError
from ..packing.livbp import GroupingSolution

__all__ = ["SolverComparison", "compare_solutions", "effectiveness_by_size_class"]


@dataclass(frozen=True)
class SolverComparison:
    """Head-to-head of two grouping solutions on the same problem."""

    baseline_solver: str
    challenger_solver: str
    baseline_effectiveness: float
    challenger_effectiveness: float
    baseline_nodes_used: int
    challenger_nodes_used: int
    nodes_requested: int

    @property
    def extra_nodes_saved(self) -> int:
        """Nodes the challenger saves beyond the baseline."""
        return self.baseline_nodes_used - self.challenger_nodes_used

    @property
    def extra_savings_points(self) -> float:
        """Effectiveness gap in percentage points (the §7.3 framing)."""
        return 100.0 * (self.challenger_effectiveness - self.baseline_effectiveness)


def compare_solutions(
    baseline: GroupingSolution, challenger: GroupingSolution
) -> SolverComparison:
    """Compare two solutions of the *same* problem instance."""
    if baseline.problem is not challenger.problem:
        if (
            baseline.problem.num_epochs != challenger.problem.num_epochs
            or len(baseline.problem.items) != len(challenger.problem.items)
        ):
            raise PackingError("solutions solve different problems")
    return SolverComparison(
        baseline_solver=baseline.solver,
        challenger_solver=challenger.solver,
        baseline_effectiveness=baseline.consolidation_effectiveness,
        challenger_effectiveness=challenger.consolidation_effectiveness,
        baseline_nodes_used=baseline.total_nodes_used,
        challenger_nodes_used=challenger.total_nodes_used,
        nodes_requested=baseline.problem.total_nodes_requested(),
    )


def effectiveness_by_size_class(solution: GroupingSolution) -> dict[int, dict[str, float]]:
    """Per-node-size-class consolidation metrics.

    Groups are attributed to the size class of their largest tenant; for a
    homogeneous grouping (the 2-step heuristic) this is exact, for FFD it
    attributes mixed bins to the class that dictates their cost.
    """
    by_id = {item.tenant_id: item for item in solution.problem.items}
    classes: dict[int, dict[str, float]] = {}
    for group in solution.groups:
        cls = classes.setdefault(
            group.largest_nodes,
            {"groups": 0.0, "tenants": 0.0, "nodes_used": 0.0, "nodes_requested": 0.0},
        )
        cls["groups"] += 1
        cls["tenants"] += len(group)
        cls["nodes_used"] += group.nodes_used
        cls["nodes_requested"] += sum(
            by_id[t].nodes_requested for t in group.tenant_ids
        )
    for cls in classes.values():
        requested = cls["nodes_requested"]
        cls["effectiveness"] = 1.0 - cls["nodes_used"] / requested if requested else 0.0
        cls["avg_group_size"] = cls["tenants"] / cls["groups"]
    return classes
