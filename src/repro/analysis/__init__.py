"""Evaluation support: metrics, parameter sweeps, and text reports.

:mod:`~repro.analysis.sweeps` is the Chapter 7 experiment driver — it
builds (and caches) workloads at bench scale, runs the grouping solvers,
and emits one row per parameter value with the three panels every figure
reports: consolidation effectiveness, average tenant-group size, and
solver execution time.  :mod:`~repro.analysis.report` renders the rows the
way the benchmark harness prints them.
"""

from .bursts import (
    BurstProfile,
    daily_activity_fractions,
    detect_bursts,
    predict_next_burst,
)
from .effectiveness import (
    compare_solutions,
    effectiveness_by_size_class,
    SolverComparison,
)
from .report import ascii_series, format_table
from .validation import WorkloadReport, validate_workload
from .sweeps import (
    BenchScale,
    GroupingRow,
    build_workload,
    run_grouping_experiment,
    sweep_parameter,
)

__all__ = [
    "BurstProfile",
    "daily_activity_fractions",
    "detect_bursts",
    "predict_next_burst",
    "compare_solutions",
    "effectiveness_by_size_class",
    "SolverComparison",
    "ascii_series",
    "format_table",
    "WorkloadReport",
    "validate_workload",
    "BenchScale",
    "GroupingRow",
    "build_workload",
    "run_grouping_experiment",
    "sweep_parameter",
]
