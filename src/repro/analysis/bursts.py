"""Regular-burst detection in tenant activity (Chapter 5.1).

"Tenants with regular bursts in tenant activity (e.g., there are usually
bursts near the end of a fiscal year) could be identified by Thrifty's
regular activity monitoring and they would be excluded from consolidation
before the bursts arrive."

A burst day is a day whose active time exceeds the tenant's median busy
day by a configurable factor; bursts are *regular* when their spacing is
consistent, which lets :func:`predict_next_burst` warn the Deployment
Advisor ahead of the next one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError
from ..units import DAY
from ..workload.logs import TenantLog

__all__ = [
    "BurstProfile",
    "daily_activity_fractions",
    "detect_bursts",
    "predict_next_burst",
]


def daily_activity_fractions(log: TenantLog, horizon_days: int) -> np.ndarray:
    """Fraction of each day the tenant spends active."""
    if horizon_days < 1:
        raise ReproError("horizon_days must be >= 1")
    fractions = np.zeros(horizon_days, dtype=np.float64)
    for start, end in log.busy_intervals():
        first = int(start // DAY)
        last = int(end // DAY)
        for day in range(first, min(last, horizon_days - 1) + 1):
            day_start = day * DAY
            day_end = day_start + DAY
            overlap = min(end, day_end) - max(start, day_start)
            if overlap > 0:
                fractions[day] += overlap / DAY
    return fractions


@dataclass(frozen=True)
class BurstProfile:
    """One tenant's burst analysis."""

    tenant_id: int
    daily_fractions: np.ndarray
    burst_days: tuple[int, ...]
    burst_ratio: float
    period_days: Optional[float]

    @property
    def has_bursts(self) -> bool:
        """Whether any burst day was found."""
        return bool(self.burst_days)

    @property
    def is_regular(self) -> bool:
        """Whether the bursts recur with a consistent period."""
        return self.period_days is not None


def detect_bursts(
    log: TenantLog,
    horizon_days: int,
    threshold_ratio: float = 3.0,
    regularity_tolerance: float = 0.2,
) -> BurstProfile:
    """Find burst days and, if they recur regularly, their period.

    A day is a burst when its active fraction exceeds
    ``threshold_ratio x`` the median over the tenant's *busy* days.
    Bursts are regular when the coefficient of variation of the spacings
    is below ``regularity_tolerance`` (needs >= 2 spacings).
    """
    if threshold_ratio <= 1.0:
        raise ReproError("threshold_ratio must exceed 1.0")
    fractions = daily_activity_fractions(log, horizon_days)
    busy = fractions[fractions > 0]
    if busy.size == 0:
        return BurstProfile(
            tenant_id=log.tenant_id,
            daily_fractions=fractions,
            burst_days=(),
            burst_ratio=threshold_ratio,
            period_days=None,
        )
    baseline = float(np.median(busy))
    burst_days = tuple(int(d) for d in np.nonzero(fractions > threshold_ratio * baseline)[0])
    period = _regular_period(burst_days, regularity_tolerance)
    return BurstProfile(
        tenant_id=log.tenant_id,
        daily_fractions=fractions,
        burst_days=burst_days,
        burst_ratio=threshold_ratio,
        period_days=period,
    )


def _regular_period(burst_days: Sequence[int], tolerance: float) -> Optional[float]:
    if len(burst_days) < 3:
        return None
    spacings = np.diff(np.asarray(burst_days, dtype=np.float64))
    mean = float(spacings.mean())
    if mean <= 0:
        return None
    cv = float(spacings.std()) / mean
    return mean if cv <= tolerance else None


def predict_next_burst(profile: BurstProfile, after_day: int) -> Optional[int]:
    """The next expected burst day after ``after_day``, for regular bursts.

    Returns ``None`` for tenants without a regular burst pattern — those
    are handled reactively by elastic scaling instead.
    """
    if not profile.is_regular or not profile.burst_days:
        return None
    last = profile.burst_days[-1]
    period = profile.period_days
    assert period is not None
    if after_day < last:
        # A recorded burst is still ahead.
        upcoming = [d for d in profile.burst_days if d > after_day]
        if upcoming:
            return upcoming[0]
    steps = max(1, int(np.ceil((after_day - last) / period + 1e-9)))
    predicted = last + steps * period
    while predicted <= after_day:
        predicted += period
    return int(round(predicted))
