"""Thrifty — a reproduction of *Parallel Analytics as a Service* (SIGMOD 2013).

Thrifty offers MPPDB-as-a-Service: it consolidates thousands of tenants,
each renting a multi-node massively-parallel database, onto a far smaller
shared cluster while guaranteeing a query-latency performance SLA for P%
of time and a replication factor R for high availability.

Quickstart::

    from repro import (
        EvaluationConfig, LogGenerationConfig,
        SessionLogGenerator, MultiTenantLogComposer,
        ThriftyService,
    )

    config = EvaluationConfig(num_tenants=200,
                              logs=LogGenerationConfig(horizon_days=7))
    library = SessionLogGenerator(config, sessions_per_size=8).generate()
    workload = MultiTenantLogComposer(config, library).compose()

    service = ThriftyService(config)
    advice = service.deploy(workload)
    effectiveness = advice.plan.consolidation_effectiveness
    report = service.replay(until=24 * 3600.0)
    headline = report.summary()  # queries, SLA fraction met, nodes saved

To watch a replay rather than just its outcome, attach an observer and
export a run report (see ``docs/OBSERVABILITY.md``)::

    from repro.obs import MemorySink, Observer, write_run_report

    observer = Observer(MemorySink())
    service = ThriftyService(config, observer=observer)
    service.deploy(workload)
    service.replay(until=24 * 3600.0)
    write_run_report("out/", observer, horizon=24 * 3600.0)

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.simulation` — discrete-event engine.
* :mod:`repro.cluster` — machine nodes, pool, failures.
* :mod:`repro.mppdb` — the simulated MPPDB substrate.
* :mod:`repro.workload` — TPC-H/DS cost models and the §7.1 log generator.
* :mod:`repro.packing` — LIVBPwFC and its solvers (2-step, FFD, MINLP+DIRECT, exact).
* :mod:`repro.core` — TDD, routing, monitoring, elastic scaling, the service facade.
* :mod:`repro.analysis` — the Chapter 7 experiment driver and reports.
"""

from .config import EvaluationConfig, LogGenerationConfig
from .core.advisor import DeploymentAdvisor
from .core.routing import TDDRouter
from .core.service import ServiceReport, ThriftyService
from .core.tdd import design_for_group
from .errors import ReproError
from .packing.ffd import ffd_grouping
from .packing.livbp import GroupingSolution, LIVBPwFCProblem
from .packing.two_step import two_step_grouping
from .workload.activity import ActivityMatrix
from .workload.composer import ComposedWorkload, MultiTenantLogComposer
from .workload.generator import SessionLibrary, SessionLogGenerator

__version__ = "1.0.0"

__all__ = [
    "EvaluationConfig",
    "LogGenerationConfig",
    "DeploymentAdvisor",
    "TDDRouter",
    "ServiceReport",
    "ThriftyService",
    "design_for_group",
    "ReproError",
    "ffd_grouping",
    "GroupingSolution",
    "LIVBPwFCProblem",
    "two_step_grouping",
    "ActivityMatrix",
    "ComposedWorkload",
    "MultiTenantLogComposer",
    "SessionLibrary",
    "SessionLogGenerator",
    "__version__",
]
