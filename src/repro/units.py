"""Unit helpers: data sizes, durations, and epoch arithmetic.

The paper mixes several unit systems — gigabytes and terabytes of tenant
data, seconds of query latency, and fixed-width *epochs* used by the
tenant-grouping algorithm (Chapter 5).  Centralizing the conversions here
keeps the rest of the code free of magic constants.

All public functions validate their inputs and raise
:class:`~repro.errors.ConfigurationError` on nonsense values, because unit
bugs (seconds vs epochs) are the classic failure mode of this kind of
simulator.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

__all__ = [
    "GB",
    "TB",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "gb",
    "tb",
    "minutes",
    "hours",
    "days",
    "seconds_to_epoch",
    "epoch_to_seconds",
    "epoch_span",
    "num_epochs",
    "REL_TOL",
    "approx_eq",
    "approx_ge",
    "format_duration",
    "format_size_gb",
]

#: Default relative tolerance for SLA/latency comparisons.  SLA fractions
#: are ratios of epoch counts and latencies are sums of per-phase float
#: costs; both accumulate rounding at the 1e-12 scale, far below 1e-9.
REL_TOL = 1e-9

#: One gigabyte expressed in gigabytes (the library's canonical data unit).
GB = 1.0
#: One terabyte in gigabytes.
TB = 1024.0

#: Durations, in seconds (the library's canonical time unit).
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY


def gb(value: float) -> float:
    """Return ``value`` gigabytes in canonical data units (GB)."""
    return float(value) * GB


def tb(value: float) -> float:
    """Return ``value`` terabytes in canonical data units (GB)."""
    return float(value) * TB


def minutes(value: float) -> float:
    """Return ``value`` minutes in seconds."""
    return float(value) * MINUTE


def hours(value: float) -> float:
    """Return ``value`` hours in seconds."""
    return float(value) * HOUR


def days(value: float) -> float:
    """Return ``value`` days in seconds."""
    return float(value) * DAY


def _check_epoch_size(epoch_size: float) -> None:
    if not (epoch_size > 0) or not math.isfinite(epoch_size):
        raise ConfigurationError(f"epoch size must be a positive finite number of seconds, got {epoch_size!r}")


def seconds_to_epoch(t: float, epoch_size: float) -> int:
    """Map a timestamp ``t`` (seconds) to its epoch index.

    Epochs are half-open intervals ``[k * epoch_size, (k + 1) * epoch_size)``
    so a query ending exactly on an epoch boundary does not occupy the next
    epoch.
    """
    _check_epoch_size(epoch_size)
    if t < 0:
        raise ConfigurationError(f"timestamps must be non-negative, got {t!r}")
    return int(t // epoch_size)


def epoch_to_seconds(k: int, epoch_size: float) -> float:
    """Return the start timestamp (seconds) of epoch ``k``."""
    _check_epoch_size(epoch_size)
    if k < 0:
        raise ConfigurationError(f"epoch indices must be non-negative, got {k!r}")
    return k * epoch_size


def epoch_span(start: float, end: float, epoch_size: float) -> range:
    """Return the range of epoch indices a time interval ``[start, end)`` touches.

    A zero-length interval touches exactly the epoch containing ``start``;
    this matches the paper's strong notion of activity, where an
    instantaneous query still marks its tenant active for that epoch.
    """
    _check_epoch_size(epoch_size)
    if end < start:
        raise ConfigurationError(f"interval end ({end!r}) precedes start ({start!r})")
    first = seconds_to_epoch(start, epoch_size)
    if end == start:
        return range(first, first + 1)
    # Half-open on the right: an interval ending exactly on a boundary does
    # not touch the following epoch.
    last = int(math.ceil(end / epoch_size))
    return range(first, max(last, first + 1))


def num_epochs(horizon: float, epoch_size: float) -> int:
    """Number of epochs needed to cover ``horizon`` seconds of history."""
    _check_epoch_size(epoch_size)
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon!r}")
    return int(math.ceil(horizon / epoch_size))


def approx_eq(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = 1e-12) -> bool:
    """``a == b`` up to floating-point noise.

    The THR003 lint rule forbids exact ``==``/``!=`` on SLA percentages,
    latencies, and other float-valued quantities; this is the sanctioned
    replacement (a thin wrapper over :func:`math.isclose` with tolerances
    chosen for the library's second/fraction scales).
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def approx_ge(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = 1e-12) -> bool:
    """``a >= b`` allowing ``a`` to fall short of ``b`` by float noise only."""
    return a >= b or approx_eq(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def format_duration(seconds: float) -> str:
    """Human-readable rendering of a duration, e.g. ``'2h 05m'`` or ``'45s'``."""
    if seconds < 0:
        raise ConfigurationError(f"durations must be non-negative, got {seconds!r}")
    if seconds < MINUTE:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        whole_minutes, rem = divmod(seconds, MINUTE)
        return f"{whole_minutes:.0f}m {rem:02.0f}s"
    if seconds < DAY:
        whole_hours, rem = divmod(seconds, HOUR)
        return f"{whole_hours:.0f}h {rem / MINUTE:02.0f}m"
    whole_days, rem = divmod(seconds, DAY)
    return f"{whole_days:.0f}d {rem / HOUR:02.0f}h"


def format_size_gb(size_gb: float) -> str:
    """Human-readable rendering of a data size given in GB."""
    if size_gb < 0:
        raise ConfigurationError(f"data sizes must be non-negative, got {size_gb!r}")
    if size_gb >= TB:
        return f"{size_gb / TB:.1f}TB"
    return f"{size_gb:.0f}GB"
