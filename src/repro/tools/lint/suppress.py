"""Inline suppression comments: ``# thrifty: noqa[THR001]``.

A violation is suppressed when the physical line it is reported on carries a
``thrifty: noqa`` comment naming its code (or a blanket ``thrifty: noqa``
with no bracket, which silences every rule on that line).  Codes may be
comma-separated: ``# thrifty: noqa[THR001,THR003]``.
"""

from __future__ import annotations

import re

from .registry import Violation

__all__ = ["suppressed_codes", "filter_suppressed"]

_NOQA = re.compile(
    r"#\s*thrifty:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?",
    re.IGNORECASE,
)

#: Sentinel meaning "every code is suppressed on this line".
ALL_CODES = "*"


def suppressed_codes(line: str) -> frozenset[str]:
    """Codes suppressed by ``line``'s comment; ``{"*"}`` for a blanket noqa."""
    match = _NOQA.search(line)
    if match is None:
        return frozenset()
    codes = match.group("codes")
    if codes is None:
        return frozenset({ALL_CODES})
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def filter_suppressed(violations: list[Violation], lines: list[str]) -> list[Violation]:
    """Drop violations whose source line carries a matching ``thrifty: noqa``."""
    kept: list[Violation] = []
    for violation in violations:
        index = violation.line - 1
        line = lines[index] if 0 <= index < len(lines) else ""
        codes = suppressed_codes(line)
        if ALL_CODES in codes or violation.code in codes:
            continue
        kept.append(violation)
    return kept
