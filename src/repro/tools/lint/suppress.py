"""Inline suppression comments: ``# thrifty: noqa[THR001]``.

A violation is suppressed when the physical line it is reported on carries a
``thrifty: noqa`` comment naming its code (or a blanket ``thrifty: noqa``
with no bracket, which silences every rule on that line).  Codes may be
comma-separated: ``# thrifty: noqa[THR001,THR003]``.

Suppressions are found by *tokenizing* the source: only real ``COMMENT``
tokens count, so the marker appearing inside a string literal (for example
in this very docstring, or in the lint tool's own test fixtures) does not
silence anything.  When a file cannot be tokenized (it is being linted, so
it may be broken), matching falls back to the original per-line regex.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Sequence, Union

from .registry import Violation

__all__ = [
    "ALL_CODES",
    "NoqaComment",
    "suppressed_codes",
    "line_suppressions",
    "noqa_comments",
    "filter_suppressed",
]

_NOQA = re.compile(
    r"#\s*thrifty:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?",
    re.IGNORECASE,
)

#: Sentinel meaning "every code is suppressed on this line".
ALL_CODES = "*"


@dataclass(frozen=True)
class NoqaComment:
    """One ``thrifty: noqa`` comment: where it is and what it suppresses."""

    line: int
    col: int
    codes: frozenset[str]

    @property
    def is_blanket(self) -> bool:
        return ALL_CODES in self.codes


def suppressed_codes(line: str) -> frozenset[str]:
    """Codes suppressed by ``line``'s comment; ``{"*"}`` for a blanket noqa.

    Pure text matching on one line — used as the tokenizer fallback and
    kept for callers that only have a line in hand.  Prefer
    :func:`line_suppressions`, which is string-literal safe.
    """
    match = _NOQA.search(line)
    if match is None:
        return frozenset()
    return _parse_codes(match)


def _parse_codes(match: "re.Match[str]") -> frozenset[str]:
    codes = match.group("codes")
    if codes is None:
        return frozenset({ALL_CODES})
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def noqa_comments(source: str) -> list[NoqaComment]:
    """Every ``thrifty: noqa`` comment in ``source`` (tokenizer-accurate)."""
    out: list[NoqaComment] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for number, line in enumerate(source.splitlines(), start=1):
            match = _NOQA.search(line)
            if match is not None:
                out.append(
                    NoqaComment(line=number, col=match.start() + 1, codes=_parse_codes(match))
                )
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA.search(token.string)
        if match is None:
            continue
        row, col = token.start
        out.append(NoqaComment(line=row, col=col + match.start() + 1, codes=_parse_codes(match)))
    return out


def line_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed codes, from real comments only."""
    out: dict[int, frozenset[str]] = {}
    for comment in noqa_comments(source):
        out[comment.line] = out.get(comment.line, frozenset()) | comment.codes
    return out


def filter_suppressed(
    violations: list[Violation], source: Union[str, Sequence[str]]
) -> list[Violation]:
    """Drop violations whose source line carries a matching ``thrifty: noqa``.

    ``source`` may be the full file text or its line list (joined back for
    tokenization, so both spellings behave identically).
    """
    text = source if isinstance(source, str) else "\n".join(source)
    suppressions = line_suppressions(text)
    kept: list[Violation] = []
    for violation in violations:
        codes = suppressions.get(violation.line, frozenset())
        if ALL_CODES in codes or violation.code in codes:
            continue
        kept.append(violation)
    return kept
