"""Output formatting for ``thrifty-lint`` (text and JSON)."""

from __future__ import annotations

import json
from collections import Counter
from typing import IO

from .registry import Violation

__all__ = ["render_text", "render_json", "render_statistics", "write_report"]


def render_text(violations: list[Violation]) -> str:
    """One ``path:line:col: CODE message`` line per violation."""
    return "\n".join(v.format_text() for v in violations)


def render_json(violations: list[Violation], *, files_checked: int) -> str:
    """A stable JSON document: summary header plus the violation list."""
    return json.dumps(
        {
            "files_checked": files_checked,
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )


def render_statistics(violations: list[Violation]) -> str:
    """Per-code counts, most frequent first (``--statistics``)."""
    counts = Counter(v.code for v in violations)
    return "\n".join(f"{count:6d}  {code}" for code, count in counts.most_common())


def write_report(
    stream: IO[str],
    violations: list[Violation],
    *,
    fmt: str,
    files_checked: int,
    statistics: bool = False,
) -> None:
    """Write the chosen report shape to ``stream``."""
    if fmt == "json":
        stream.write(render_json(violations, files_checked=files_checked) + "\n")
        return
    if violations:
        stream.write(render_text(violations) + "\n")
    if statistics and violations:
        stream.write(render_statistics(violations) + "\n")
    noun = "file" if files_checked == 1 else "files"
    if violations:
        stream.write(f"{len(violations)} violation(s) in {files_checked} {noun} checked\n")
    else:
        stream.write(f"clean: 0 violations in {files_checked} {noun} checked\n")
