"""``thrifty-lint`` — domain-aware static analysis for the reproduction.

Run as ``python -m repro.tools.lint src/ benchmarks/ examples/`` or via the
``thrifty-lint`` console script.  The THR rules live in
:mod:`repro.tools.lint.rules`; ``docs/STATIC_ANALYSIS.md`` documents the
invariant behind each one and how to suppress a finding with
``# thrifty: noqa[THRxxx]``.
"""

from __future__ import annotations

from .registry import (
    FileContext,
    Rule,
    Violation,
    all_rules,
    get_rule,
    register,
    rule_codes,
    select_rules,
)
from .runner import check_file, check_paths, collect_files, main

__all__ = [
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "register",
    "rule_codes",
    "select_rules",
    "check_file",
    "check_paths",
    "collect_files",
    "main",
]
