"""File discovery, rule execution, and the ``thrifty-lint`` CLI."""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Sequence

from ...errors import LintError
from . import rules as _rules  # noqa: F401  (importing registers the THR rules)
from .registry import FileContext, Rule, Violation, all_rules, select_rules
from .report import write_report
from .suppress import filter_suppressed, noqa_comments

__all__ = ["collect_files", "check_file", "check_paths", "find_unused_noqa", "main"]

_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache", ".ruff_cache"}


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` file list."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.exists():
            if path.suffix != ".py":
                raise LintError(f"not a Python file: {path}")
            found.add(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(found)


def check_file(path: Path, rule_set: Sequence[Rule] | None = None) -> list[Violation]:
    """Run ``rule_set`` (default: all registered rules) over one file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    ctx = FileContext(path=str(path), source=source, tree=tree)
    violations: list[Violation] = []
    for rule in rule_set if rule_set is not None else all_rules():
        violations.extend(rule.check(ctx))
    violations = filter_suppressed(violations, ctx.source)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def check_paths(
    paths: Sequence[str | Path], rule_set: Sequence[Rule] | None = None
) -> tuple[list[Violation], int]:
    """Lint every file under ``paths``; return (violations, files_checked)."""
    files = collect_files(paths)
    violations: list[Violation] = []
    for path in files:
        violations.extend(check_file(path, rule_set))
    return violations, len(files)


def find_unused_noqa(paths: Sequence[str | Path]) -> tuple[list[Violation], int]:
    """``thrifty: noqa`` comments that no longer suppress any violation.

    Runs every registered rule over each file *without* suppression, then
    reports each noqa comment whose line has no violation it could silence
    (for a bracketed noqa, none of its codes fire; for a blanket one,
    nothing fires at all).  Reported with the pseudo-code ``NOQA`` so the
    usual report machinery renders them.
    """
    files = collect_files(paths)
    stale: list[Violation] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        ctx = FileContext(path=str(path), source=source, tree=tree)
        raw: list[Violation] = []
        for rule in all_rules():
            raw.extend(rule.check(ctx))
        fired: dict[int, set[str]] = {}
        for violation in raw:
            fired.setdefault(violation.line, set()).add(violation.code)
        for comment in noqa_comments(source):
            codes_here = fired.get(comment.line, set())
            used = bool(codes_here) if comment.is_blanket else bool(
                codes_here & comment.codes
            )
            if used:
                continue
            if comment.is_blanket:
                detail = "no violation fires on this line"
            else:
                detail = f"none of [{', '.join(sorted(comment.codes))}] fire on this line"
            stale.append(
                Violation(
                    code="NOQA",
                    message=f"unused suppression: {detail}",
                    path=str(path),
                    line=comment.line,
                    col=comment.col,
                )
            )
    stale.sort(key=lambda v: (v.path, v.line, v.col))
    return stale, len(files)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="thrifty-lint",
        description=(
            "Domain-aware static analysis for the Thrifty reproduction: "
            "checks deterministic-replay, error-hierarchy, float-comparison, "
            "and typing invariants (rules THR001..THR007)."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--statistics", action="store_true", help="append per-code violation counts"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )
    parser.add_argument(
        "--unused-noqa",
        action="store_true",
        help="report 'thrifty: noqa' comments that no longer suppress anything",
    )
    return parser


def _parse_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0 clean, 1 findings)."""
    parser = _build_parser()
    opts = parser.parse_args(argv)
    if opts.list_rules:
        for rule in all_rules():
            sys.stdout.write(f"{rule.code}  {rule.summary}\n")
        return 0
    try:
        if opts.unused_noqa:
            violations, files_checked = find_unused_noqa(opts.paths)
        else:
            rule_set = select_rules(_parse_codes(opts.select), _parse_codes(opts.ignore))
            violations, files_checked = check_paths(opts.paths, rule_set)
    except LintError as exc:
        sys.stderr.write(f"thrifty-lint: error: {exc}\n")
        return 2
    write_report(
        sys.stdout,
        violations,
        fmt=opts.format,
        files_checked=files_checked,
        statistics=opts.statistics,
    )
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
