"""Rule registry and core datatypes for ``thrifty-lint``.

A rule is a class with a ``code`` (``THR001``…), a one-line ``summary``, and
a ``check`` method that walks a parsed module and yields
:class:`Violation` records.  Rules register themselves with the
:func:`register` decorator so the runner, ``--list-rules``, the docs, and
the test-suite all share a single source of truth.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Callable, Iterable, Iterator

from ...errors import LintError

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_codes",
]


@dataclass(frozen=True)
class Violation:
    """One finding: a rule ``code`` fired at ``path:line:col``."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def format_text(self) -> str:
        """Render in the conventional ``path:line:col: CODE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (``--format json``)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class FileContext:
    """Everything a rule may want to know about the file being checked.

    ``module_parts`` is the dotted path of the file *inside* the ``repro``
    package (``("core", "routing")`` for ``src/repro/core/routing.py``) and
    is empty for files outside the package (benchmarks, examples), so rules
    can scope themselves to the library layers they protect.
    """

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def module_parts(self) -> tuple[str, ...]:
        parts = PurePosixPath(self.path.replace("\\", "/")).parts
        if "repro" not in parts:
            return ()
        tail = parts[parts.index("repro") + 1 :]
        if not tail:
            return ()
        stem = tail[-1]
        if stem.endswith(".py"):
            stem = stem[:-3]
        return tuple(tail[:-1]) + ((stem,) if stem != "__init__" else ())

    def in_repro(self) -> bool:
        """True when the file lives inside the ``repro`` package."""
        return "repro" in PurePosixPath(self.path.replace("\\", "/")).parts

    def in_layer(self, *layers: str) -> bool:
        """True when the file sits under one of the named ``repro`` sub-packages."""
        parts = self.module_parts
        return bool(parts) and parts[0] in layers


class Rule:
    """Base class for lint rules; subclasses set ``code``/``summary``."""

    code: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            code=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (keyed by its code)."""
    if not cls.code:
        raise LintError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise LintError(f"duplicate rule code {cls.code!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_codes() -> list[str]:
    """Sorted registered rule codes."""
    return sorted(_REGISTRY)


def get_rule(code: str) -> Rule:
    """Instantiate the rule registered under ``code``."""
    try:
        return _REGISTRY[code]()
    except KeyError:
        raise LintError(f"unknown rule code {code!r}") from None


def select_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Resolve ``--select``/``--ignore`` against the registry."""
    codes = set(select) if select else set(rule_codes())
    unknown = codes - set(rule_codes())
    if unknown:
        raise LintError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    if ignore:
        bad = set(ignore) - set(rule_codes())
        if bad:
            raise LintError(f"unknown rule code(s): {', '.join(sorted(bad))}")
        codes -= set(ignore)
    return [get_rule(code) for code in sorted(codes)]


__all__.append("select_rules")

RuleChecker = Callable[[FileContext], Iterator[Violation]]
