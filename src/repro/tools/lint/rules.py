"""The THR rule set: Thrifty's domain invariants, machine-checked.

Each rule protects an invariant the paper's reproduction relies on but the
Python runtime never verifies — see ``docs/STATIC_ANALYSIS.md`` for the
invariant each rule guards and the paper section it traces back to.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import Iterator

from .registry import FileContext, Rule, Violation, register

__all__ = [
    "ReplayDeterminismRule",
    "ReproErrorRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "BroadExceptRule",
    "PublicAnnotationRule",
    "NoBarePrintRule",
    "EnumValueComparisonRule",
    "ParallelImportRule",
]

#: Layers whose behaviour is replayed deterministically (THR001 scope).
_REPLAY_LAYERS = ("simulation", "core", "mppdb", "workload")

#: ``module.attr`` call chains that leak ambient nondeterminism.
_FORBIDDEN_CALLS = {
    ("time", "time"): "wall-clock time.time()",
    ("time", "time_ns"): "wall-clock time.time_ns()",
    ("datetime", "now"): "wall-clock datetime.now()",
    ("datetime", "utcnow"): "wall-clock datetime.utcnow()",
    ("date", "today"): "wall-clock date.today()",
    ("random", "seed"): "process-global random.seed()",
    ("np", "random", "seed"): "process-global numpy.random.seed()",
    ("numpy", "random", "seed"): "process-global numpy.random.seed()",
    ("np", "random", "default_rng"): "ad-hoc numpy.random.default_rng()",
    ("numpy", "random", "default_rng"): "ad-hoc numpy.random.default_rng()",
    ("random", "random"): "process-global random.random()",
}

#: Builtin exception classes library code must not raise directly (THR002).
#: ``NotImplementedError`` stays legal: it marks abstract methods, which is a
#: programming-error signal, not a library failure a caller should catch.
_BUILTIN_RAISES = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "AttributeError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "StopIteration",
        "AssertionError",
    }
)

#: Identifier fragments that mark a quantity as SLA/latency/epoch-valued
#: (THR003); matched case-insensitively against names and attributes.
_FLOAT_DOMAIN = re.compile(
    r"(latenc|sla|percentile|fraction_met|deadline_s|p95|p99)", re.IGNORECASE
)


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``; empty when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@register
class ReplayDeterminismRule(Rule):
    """THR001 — replay layers must draw time and randomness from the framework."""

    code = "THR001"
    summary = (
        "no ambient randomness or wall-clock time in simulation/core/mppdb/workload; "
        "use repro.rng streams and the simulation clock"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_layer(*_REPLAY_LAYERS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.violation(
                            ctx,
                            node,
                            "import of the stdlib `random` module; derive a stream "
                            "from repro.rng.RngFactory instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.violation(
                        ctx,
                        node,
                        "import from the stdlib `random` module; derive a stream "
                        "from repro.rng.RngFactory instead",
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                label = _FORBIDDEN_CALLS.get(chain)
                if label is not None:
                    yield self.violation(
                        ctx,
                        node,
                        f"{label} breaks deterministic replay; route randomness "
                        "through repro.rng and time through the simulation clock",
                    )


@register
class ReproErrorRule(Rule):
    """THR002 — library raises must use the :class:`ReproError` hierarchy."""

    code = "THR002"
    summary = "every `raise` in src/repro uses a ReproError subclass"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call):
                chain = _attr_chain(exc.func)
                name = chain[-1] if chain else None
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BUILTIN_RAISES:
                yield self.violation(
                    ctx,
                    node,
                    f"raises builtin {name}; library failures must derive from "
                    "repro.errors.ReproError so callers can catch them selectively",
                )


@register
class FloatEqualityRule(Rule):
    """THR003 — no exact ``==``/``!=`` on SLA fractions, latencies, or thresholds."""

    code = "THR003"
    summary = (
        "no float ==/!= on SLA percentages, latencies, or float literals; "
        "use math.isclose or an epsilon helper"
    )

    def _is_float_literal(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # -0.5 parses as UnaryOp(USub, Constant(0.5)).
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._is_float_literal(node.operand)
        return False

    def _is_domain_name(self, node: ast.expr) -> bool:
        chain = _attr_chain(node)
        return any(_FLOAT_DOMAIN.search(part) for part in chain)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (left, right)
                if any(self._is_float_literal(o) for o in pair) or all(
                    self._is_domain_name(o) for o in pair
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "exact float comparison; use math.isclose() or "
                        "repro.units.approx_eq() (floating-point SLA/latency "
                        "arithmetic is not exact)",
                    )
                    break


@register
class MutableDefaultRule(Rule):
    """THR004 — no mutable default argument values."""

    code = "THR004"
    summary = "no mutable default arguments (list/dict/set literals or constructors)"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return len(chain) == 1 and chain[0] in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in [*args.defaults, *[d for d in args.kw_defaults if d is not None]]:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and build the object in the body",
                    )


@register
class BroadExceptRule(Rule):
    """THR005 — library code must not swallow ``Exception`` wholesale."""

    code = "THR005"
    summary = "no bare/`except Exception` without re-raise in library code"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name) and node.type.id in ("Exception", "BaseException")
            )
            if not broad:
                continue
            reraises = any(isinstance(inner, ast.Raise) for inner in ast.walk(node))
            if not reraises:
                yield self.violation(
                    ctx,
                    node,
                    "broad except without re-raise swallows programming errors; "
                    "catch a specific ReproError subclass or re-raise",
                )


@register
class PublicAnnotationRule(Rule):
    """THR006 — the optimization core's public surface is fully annotated."""

    code = "THR006"
    summary = "public functions in core/, packing/, simulation/, obs/ have complete type annotations"

    _LAYERS = ("core", "packing", "simulation", "obs", "parallel", "bench")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_layer(*self._LAYERS):
            return
        yield from self._check_body(ctx, ctx.tree.body, is_method=False)

    def _check_body(
        self, ctx: FileContext, body: list[ast.stmt], *, is_method: bool
    ) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                yield from self._check_body(ctx, node.body, is_method=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_") and not (
                    node.name.startswith("__") and node.name.endswith("__")
                ):
                    continue
                yield from self._check_signature(ctx, node, is_method=is_method)

    def _check_signature(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        is_method: bool,
    ) -> Iterator[Violation]:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        if is_method and positional and not self._is_staticmethod(node):
            positional = positional[1:]  # self / cls
        missing = [
            a.arg
            for a in [*positional, *args.kwonlyargs, args.vararg, args.kwarg]
            if a is not None and a.annotation is None
        ]
        if missing:
            yield self.violation(
                ctx,
                node,
                f"public function `{node.name}` is missing parameter annotations: "
                + ", ".join(missing),
            )
        if node.returns is None:
            yield self.violation(
                ctx,
                node,
                f"public function `{node.name}` is missing a return annotation",
            )

    @staticmethod
    def _is_staticmethod(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        return any(
            isinstance(d, ast.Name) and d.id == "staticmethod" for d in node.decorator_list
        )


@register
class NoBarePrintRule(Rule):
    """THR007 — library output flows through ``repro.obs``, not ``print()``.

    A ``print()`` buried in the library is output the observability plane
    cannot see, filter, or export; replays instrumented through a sink
    should produce *no* stdout from ``src/repro`` itself.  The CLI
    (``cli.py``) and module entry points (``__main__.py``) are the
    designated presentation layer and stay exempt.
    """

    code = "THR007"
    summary = "no bare print() in src/repro outside cli.py and __main__ entry points"

    _EXEMPT_BASENAMES = frozenset({"cli.py", "__main__.py"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro():
            return
        basename = PurePosixPath(ctx.path.replace("\\", "/")).name
        if basename in self._EXEMPT_BASENAMES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield self.violation(
                    ctx,
                    node,
                    "bare print() in library code; emit through a repro.obs "
                    "sink (or return the text to the CLI presentation layer)",
                )


@register
class EnumValueComparisonRule(Rule):
    """THR008 — lifecycle states compare as enums, not via ``.value`` strings.

    ``node.state.value == "failed"`` type-checks, survives renames of the
    *member* while silently breaking on renames of the *string*, and
    defeats both mypy's exhaustiveness analysis and grep-for-member
    refactors.  The fault-tolerance plane grew the instance lifecycle by
    two states (DEGRADED, DOWN); every stringly-typed comparison is a
    latent misroute.  Compare identity instead:
    ``node.state is NodeState.FAILED``.
    """

    code = "THR008"
    summary = 'no enum `.value == "literal"` comparisons in library code; compare members'

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_value_vs_string(left, right) or self._is_value_vs_string(
                    right, left
                ):
                    yield self.violation(
                        ctx,
                        node,
                        'enum `.value` compared against a string literal; compare '
                        "the members themselves (e.g. `state is NodeState.FAILED`)",
                    )
                    break

    @staticmethod
    def _is_value_vs_string(value_side: ast.expr, literal_side: ast.expr) -> bool:
        return (
            isinstance(value_side, ast.Attribute)
            and value_side.attr == "value"
            and isinstance(literal_side, ast.Constant)
            and isinstance(literal_side.value, str)
        )


@register
class ParallelImportRule(Rule):
    """THR009 — process pools live only behind the ``repro.parallel`` fabric.

    A raw ``multiprocessing`` / ``concurrent.futures`` pool elsewhere in
    the library bypasses everything the fabric guarantees: per-shard seed
    derivation (bit-identical results at any worker count), spawn-safe
    task references, typed :class:`~repro.errors.ShardFailedError` with
    retry, and ordered merging of per-shard observability output.  Code
    that needs cores submits :class:`~repro.parallel.ShardSpec` work to a
    :class:`~repro.parallel.ProcessPoolRunner` instead.
    """

    code = "THR009"
    summary = (
        "no direct multiprocessing/concurrent.futures imports outside "
        "repro.parallel; submit shards to the execution fabric"
    )

    _FORBIDDEN_ROOTS = frozenset({"multiprocessing", "concurrent"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_repro() or ctx.in_layer("parallel"):
            return
        for node in ast.walk(ctx.tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                if module.split(".")[0] in self._FORBIDDEN_ROOTS:
                    yield self.violation(
                        ctx,
                        node,
                        f"direct import of `{module}`; process-level parallelism "
                        "goes through repro.parallel (ShardPlanner + "
                        "ProcessPoolRunner) so results stay deterministic and "
                        "failures stay typed",
                    )
                    break
