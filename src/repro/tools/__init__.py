"""Developer tooling shipped with the Thrifty reproduction.

Currently this package hosts :mod:`repro.tools.lint`, the domain-aware
static-analysis pass (``thrifty-lint``) that machine-checks the invariants
the library's correctness rests on — deterministic replay, the
:class:`~repro.errors.ReproError` hierarchy, and strict typing of the
optimization core.
"""

from __future__ import annotations

__all__: list[str] = []
