"""Developer tooling shipped with the Thrifty reproduction.

Two static-analysis entry points live here, both machine-checking the
invariants the library's correctness rests on — deterministic replay, the
:class:`~repro.errors.ReproError` hierarchy, declared lifecycle
transitions, and a documented API surface:

* :mod:`repro.tools.lint` (``thrifty-lint``) — fast per-file rules
  THR001..THR008;
* :mod:`repro.tools.analyze` (``thrifty-analyze``) — whole-program
  interprocedural passes THRA101..THRA105 over the import and call
  graphs, with a checked-in baseline for accepted findings.
"""

from __future__ import annotations

__all__: list[str] = []
